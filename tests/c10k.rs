//! Scaled-down C10K stress test of the event-loop server: one reactor
//! thread must hold hundreds of idle connections while serving active
//! sweeps bit-identically, all inside the default test-runner fd budget.
//! The full-scale run (thousands of idle connections, RSS bound) lives in
//! the `c10k_smoke` bench binary and the CI `c10k-smoke` job; this test
//! keeps the same shape small enough for `cargo test`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use marqsim::core::experiment::SweepConfig;
use marqsim::core::TransitionStrategy;
use marqsim::engine::{Engine, EngineConfig};
use marqsim::pauli::Hamiltonian;
use marqsim::serve::{Client, Outcome, Server, ServerHandle};

const IDLE_CONNS: usize = 200;
const ACTIVE_CONNS: usize = 20;

fn ham() -> Hamiltonian {
    Hamiltonian::parse("0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.5 IIZZ").unwrap()
}

fn sweep_config() -> SweepConfig {
    SweepConfig {
        time: 0.4,
        epsilons: vec![0.1],
        repeats: 3,
        base_seed: 41,
        evaluate_fidelity: false,
    }
}

fn spawn_server() -> ServerHandle {
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
    Server::bind("127.0.0.1:0", engine)
        .expect("bind localhost")
        .spawn()
        .expect("spawn event loop")
}

/// Opens a connection, consumes the `hello` line, and parks the socket.
fn idle_conn(addr: std::net::SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect idle");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut hello = String::new();
    reader.read_line(&mut hello).expect("read hello");
    assert!(
        hello.contains("\"event\":\"hello\""),
        "idle connection greeted with {hello:?}"
    );
    reader
}

#[test]
fn hundreds_of_idle_connections_do_not_disturb_active_sweeps() {
    let strategy = TransitionStrategy::marqsim_gc();
    let config = sweep_config();

    // In-process reference for the bit-identity check.
    let reference_engine = Engine::new(EngineConfig::default().with_threads(2));
    let reference = reference_engine
        .run_sweep(&ham(), &strategy, &config)
        .unwrap();

    let server = spawn_server();
    let addr = server.addr();

    // Park a crowd of idle connections. Each one holds a slab slot and an
    // epoll registration on the single reactor thread.
    let idle: Vec<BufReader<TcpStream>> = (0..IDLE_CONNS).map(|_| idle_conn(addr)).collect();

    // Drive active sweeps through the crowd, all submitted before any
    // result is awaited so they overlap on the reactor.
    let mut active: Vec<(Client, u64)> = (0..ACTIVE_CONNS)
        .map(|i| {
            let mut client = Client::connect(addr).expect("connect active");
            let job = client
                .submit_sweep(&format!("c10k/active-{i}"), &ham(), &strategy, &config)
                .expect("submit");
            (client, job)
        })
        .collect();
    for (client, job) in &mut active {
        let result = client.wait(*job).expect("wait");
        let sweep = match result.outcome {
            Outcome::Sweep(sweep) => sweep,
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(sweep.points.len(), reference.points.len());
        for (remote, local) in sweep.points.iter().zip(reference.points.iter()) {
            assert_eq!(remote.epsilon.to_bits(), local.epsilon.to_bits());
            assert_eq!(remote.seed, local.seed);
            assert_eq!(remote.num_samples, local.num_samples);
            assert_eq!(remote.stats, local.stats, "sweep diverged over TCP");
        }
    }

    // The idle crowd must still be alive and answerable after the storm.
    let mut stats_client = Client::connect(addr).expect("connect post-storm");
    let stats = stats_client.stats().expect("stats");
    assert_eq!(stats.active_jobs, 0, "all jobs drained");
    for (i, reader) in idle.into_iter().enumerate().step_by(50) {
        let mut stream = reader.into_inner();
        stream
            .write_all(b"{\"verb\":\"stats\"}\n")
            .unwrap_or_else(|e| panic!("idle conn {i} died: {e}"));
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read stats");
        assert!(
            line.contains("\"event\":\"stats\""),
            "idle conn {i} answered {line:?}"
        );
    }
    server.shutdown();
}

#[test]
fn dropped_connections_release_their_jobs() {
    let server = spawn_server();
    let addr = server.addr();
    let strategy = TransitionStrategy::marqsim_gc();
    // Enough repeats that the job is usually still running at disconnect;
    // the assertion holds either way (finished or cancelled both drain).
    let config = SweepConfig {
        time: 0.4,
        epsilons: vec![0.1, 0.05],
        repeats: 16,
        base_seed: 97,
        evaluate_fidelity: false,
    };

    {
        let mut client = Client::connect(addr).expect("connect");
        client
            .submit_sweep("c10k/abandoned", &ham(), &strategy, &config)
            .expect("submit");
        // Drop without waiting: the server must cancel on disconnect.
    }

    let mut observer = Client::connect(addr).expect("connect observer");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = observer.stats().expect("stats");
        if stats.active_jobs == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "job still active {}s after its connection dropped",
            30
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}
