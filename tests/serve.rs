//! Integration tests of the serve front-end against the in-process engine:
//! the acceptance criteria of the serve PR.
//!
//! * A sweep submitted over TCP returns results **bit-identical** to the
//!   same sweep run through `Engine::run_sweep` in-process (every seed,
//!   every float bit).
//! * Two concurrent clients share one warm cache: the second client's job
//!   reports `flow_solves = 0` in its `cache_delta`.

use std::sync::Arc;

use marqsim::core::experiment::{run_sweep, SweepConfig};
use marqsim::core::TransitionStrategy;
use marqsim::engine::{Engine, EngineConfig};
use marqsim::pauli::Hamiltonian;
use marqsim::serve::{Client, Outcome, Server, ServerHandle};

fn ham() -> Hamiltonian {
    Hamiltonian::parse("0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ + 0.4 XYXY + 0.3 IZIZ")
        .unwrap()
}

fn sweep_config() -> SweepConfig {
    SweepConfig {
        time: 0.5,
        epsilons: vec![0.1, 0.05],
        repeats: 4,
        base_seed: 9,
        evaluate_fidelity: false,
    }
}

fn spawn_server(threads: usize) -> ServerHandle {
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(threads)));
    Server::bind("127.0.0.1:0", engine)
        .expect("bind localhost")
        .spawn()
        .expect("spawn accept loop")
}

#[test]
fn tcp_sweep_is_bit_identical_to_in_process_engine() {
    let strategy = TransitionStrategy::marqsim_gc();
    let config = sweep_config();

    // In-process references: the serial driver and a local engine.
    let serial = run_sweep(&ham(), &strategy, &config).unwrap();
    let local_engine = Engine::new(EngineConfig::default().with_threads(2));
    let local = local_engine.run_sweep(&ham(), &strategy, &config).unwrap();

    // The same sweep through the TCP front-end.
    let server = spawn_server(2);
    let mut client = Client::connect(server.addr()).unwrap();
    let job = client
        .submit_sweep("acceptance/gc", &ham(), &strategy, &config)
        .unwrap();
    let result = client.wait(job).unwrap();
    let remote = match result.outcome {
        Outcome::Sweep(sweep) => sweep,
        other => panic!("unexpected outcome {other:?}"),
    };

    assert_eq!(remote.label, serial.label);
    assert_eq!(remote.points.len(), serial.points.len());
    for ((r, s), l) in remote.points.iter().zip(&serial.points).zip(&local.points) {
        assert_eq!(r.seed, s.seed);
        assert_eq!(r.epsilon.to_bits(), s.epsilon.to_bits(), "epsilon bits");
        assert_eq!(r.num_samples, s.num_samples);
        assert_eq!(r.stats, s.stats, "gate stats must survive the wire");
        assert_eq!(
            r.fidelity.map(f64::to_bits),
            s.fidelity.map(f64::to_bits),
            "fidelity bits"
        );
        assert_eq!(r.stats, l.stats, "engine and serve agree");
    }
    server.shutdown();
}

#[test]
fn tcp_sweep_with_fidelity_is_bit_identical_too() {
    // Fidelity floats are the hardest values to keep bit-stable across a
    // textual wire format; assert them explicitly on a small system.
    let small = Hamiltonian::parse("0.6 XZ + 0.4 ZY + 0.3 XX").unwrap();
    let strategy = TransitionStrategy::QDrift;
    let config = SweepConfig {
        time: 0.4,
        epsilons: vec![0.05],
        repeats: 3,
        base_seed: 5,
        evaluate_fidelity: true,
    };
    let serial = run_sweep(&small, &strategy, &config).unwrap();

    let server = spawn_server(2);
    let mut client = Client::connect(server.addr()).unwrap();
    let job = client
        .submit_sweep("acceptance/fidelity", &small, &strategy, &config)
        .unwrap();
    let remote = match client.wait(job).unwrap().outcome {
        Outcome::Sweep(sweep) => sweep,
        other => panic!("unexpected outcome {other:?}"),
    };
    for (r, s) in remote.points.iter().zip(&serial.points) {
        let (rf, sf) = (r.fidelity.unwrap(), s.fidelity.unwrap());
        assert_eq!(rf.to_bits(), sf.to_bits(), "{rf} vs {sf}");
    }
    server.shutdown();
}

#[test]
fn two_concurrent_clients_share_one_warm_cache() {
    let strategy = TransitionStrategy::marqsim_gc();
    let config = sweep_config();
    let server = spawn_server(2);

    // Both clients connect up front (concurrently live connections).
    let mut first = Client::connect(server.addr()).unwrap();
    let mut second = Client::connect(server.addr()).unwrap();

    // Client 1 runs the sweep cold: exactly one min-cost-flow solve.
    let job1 = first
        .submit_sweep("client1/gc", &ham(), &strategy, &config)
        .unwrap();
    let result1 = first.wait(job1).unwrap();
    assert_eq!(
        result1.cache_delta.flow_solves, 1,
        "cold sweep solves the flow problem once"
    );
    assert_eq!(result1.cache_delta.misses, 1);

    // Client 2 submits the identical sweep on its own connection: the
    // shared engine cache answers it without any flow solve.
    let job2 = second
        .submit_sweep("client2/gc", &ham(), &strategy, &config)
        .unwrap();
    assert_ne!(job1, job2, "engine-unique job ids across connections");
    let result2 = second.wait(job2).unwrap();
    assert_eq!(
        result2.cache_delta.flow_solves, 0,
        "second client's job must be served from the warm cache"
    );
    assert_eq!(result2.cache_delta.misses, 0);
    assert!(result2.cache_delta.hits >= 1);

    // And the warm result is bit-identical to the cold one.
    let (sweep1, sweep2) = match (result1.outcome, result2.outcome) {
        (Outcome::Sweep(a), Outcome::Sweep(b)) => (a, b),
        other => panic!("unexpected outcomes {other:?}"),
    };
    for (a, b) in sweep1.points.iter().zip(&sweep2.points) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.stats, b.stats);
    }

    // The engine-wide stats verb agrees with the deltas.
    let stats = second.stats().unwrap();
    assert_eq!(
        stats.cache.flow_solves, 1,
        "one solve total across both clients"
    );
    assert_eq!(stats.in_flight, 0, "both jobs finished");
    server.shutdown();
}

#[test]
fn interleaved_jobs_from_one_client_resolve_independently() {
    let server = spawn_server(2);
    let mut client = Client::connect(server.addr()).unwrap();
    let config = SweepConfig {
        time: 0.5,
        epsilons: vec![0.1],
        repeats: 2,
        base_seed: 3,
        evaluate_fidelity: false,
    };

    // Submit three jobs before waiting on any; wait out of order.
    let job_a = client
        .submit_sweep("multi/a", &ham(), &TransitionStrategy::QDrift, &config)
        .unwrap();
    let job_b = client
        .submit_sweep(
            "multi/b",
            &ham(),
            &TransitionStrategy::marqsim_gc(),
            &config,
        )
        .unwrap();
    let job_c = client
        .submit_sweep(
            "multi/c",
            &ham(),
            &TransitionStrategy::marqsim_gc_rp(),
            &config,
        )
        .unwrap();

    for (job, label_prefix) in [
        (job_c, "MarQSim-GC-RP"),
        (job_a, "Baseline"),
        (job_b, "MarQSim-GC"),
    ] {
        let result = client.wait(job).unwrap();
        match result.outcome {
            Outcome::Sweep(sweep) => {
                assert!(
                    sweep.label.starts_with(label_prefix),
                    "{} vs {label_prefix}",
                    sweep.label
                );
                assert_eq!(sweep.points.len(), 2);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    server.shutdown();
}

/// Satellite property for the event-loop server's framing layer: a valid
/// request stream decodes to the same request sequence no matter how the
/// transport slices it into reads. The server only ever sees bytes through
/// `marqsim::net::LineAssembler`, so chunk boundaries falling inside a
/// line, on a terminator, or coalescing many lines into one read must all
/// be invisible to the protocol layer.
#[test]
fn request_streams_decode_identically_under_any_byte_chunking() {
    use marqsim::engine::SubmitOptions;
    use marqsim::net::LineAssembler;
    use marqsim::serve::{sweep_params, Request};
    use quickprop::{check, Config, Gen};

    fn arbitrary_request(g: &mut Gen) -> Request {
        match g.usize_in(0..5) {
            0 => Request::Submit {
                label: format!("prop/chunk-{}", g.u64_in(0..=9999)),
                kind: "sweep".to_string(),
                params: sweep_params(
                    &ham().to_string(),
                    &TransitionStrategy::marqsim_gc(),
                    &sweep_config(),
                ),
                options: SubmitOptions::default(),
            },
            1 => Request::Status { job: g.u64() },
            2 => Request::Cancel { job: g.u64() },
            3 => Request::Stats,
            _ => Request::Metrics,
        }
    }

    check(
        "byte-chunked request streams decode identically",
        Config::default()
            .with_cases(64)
            .with_seed(0x0066_7261_6d69_6e67),
        |g| {
            let requests = g.vec_of(1..8, arbitrary_request);
            let mut stream: Vec<u8> = Vec::new();
            for request in &requests {
                stream.extend_from_slice(request.encode().as_bytes());
                // The assembler accepts both terminators; mix them.
                if g.bool(0.25) {
                    stream.push(b'\r');
                }
                stream.push(b'\n');
            }
            // Random cut points; 0 cuts = one coalesced read, many cuts
            // shatter lines mid-escape-sequence.
            let cuts = g.vec_of(0..24, |g| g.usize_in(0..stream.len()));
            (requests, stream, cuts)
        },
        |(requests, stream, cuts)| {
            let mut boundaries = cuts.clone();
            boundaries.push(0);
            boundaries.push(stream.len());
            boundaries.sort_unstable();
            boundaries.dedup();
            let mut assembler = LineAssembler::new(8 * 1024 * 1024);
            let mut decoded = Vec::new();
            for window in boundaries.windows(2) {
                assembler.push(&stream[window[0]..window[1]]);
                loop {
                    match assembler.next_line() {
                        Ok(Some(line)) => decoded
                            .push(Request::decode(&line).map_err(|e| format!("decode: {e}"))?),
                        Ok(None) => break,
                        Err(e) => return Err(format!("framing: {e}")),
                    }
                }
            }
            if assembler.buffered() != 0 {
                return Err(format!("{} bytes left unframed", assembler.buffered()));
            }
            if decoded == *requests {
                Ok(())
            } else {
                Err(format!(
                    "decoded {} requests from {} chunks, expected {}",
                    decoded.len(),
                    boundaries.len() - 1,
                    requests.len()
                ))
            }
        },
    );
}
