//! End-to-end integration tests: Hamiltonian text → MarQSim compilation →
//! circuit → simulated unitary → fidelity against the exact evolution.

use marqsim::circuit::qasm;
use marqsim::core::{metrics, Compiler, CompilerConfig, TransitionStrategy};
use marqsim::pauli::Hamiltonian;
use marqsim::sim::{exact, fidelity, UnitaryAccumulator};

fn example_hamiltonian() -> Hamiltonian {
    Hamiltonian::parse("0.8 XZI + 0.6 ZYI + 0.5 XXZ + 0.4 IZZ + 0.2 YIY").unwrap()
}

#[test]
fn every_strategy_compiles_and_approximates_the_exact_evolution() {
    let ham = example_hamiltonian();
    let time = 0.5;
    for strategy in [
        TransitionStrategy::baseline(),
        TransitionStrategy::marqsim_gc(),
        TransitionStrategy::marqsim_gc_rp(),
    ] {
        let config = CompilerConfig::new(time, 0.01)
            .with_strategy(strategy.clone())
            .with_seed(3)
            .without_circuit();
        let result = Compiler::new(config).compile(&ham).unwrap();
        let f = metrics::evaluate_fidelity(&result.hamiltonian, time, &result.sequence);
        assert!(
            f > 0.97,
            "{}: fidelity {f} below expectation for epsilon=0.01",
            strategy.label()
        );
    }
}

#[test]
fn synthesized_circuit_and_fast_path_agree_end_to_end() {
    let ham = example_hamiltonian();
    let time = 0.4;
    let config = CompilerConfig::new(time, 0.1)
        .with_strategy(TransitionStrategy::marqsim_gc())
        .with_seed(9);
    let result = Compiler::new(config).compile(&ham).unwrap();

    // Gate-level unitary.
    let mut gate_acc = UnitaryAccumulator::new(ham.num_qubits());
    gate_acc.apply_circuit(&result.circuit);
    // Rotation-level unitary.
    let mut rot_acc = UnitaryAccumulator::new(ham.num_qubits());
    rot_acc.apply_sequence(&result.rotation_sequence());
    let agreement = fidelity::fidelity(&gate_acc.to_matrix(), &rot_acc.to_matrix());
    assert!(
        agreement > 1.0 - 1e-9,
        "gate vs rotation agreement {agreement}"
    );

    // And both approximate the exact evolution equally well.
    let exact_u = exact::exact_unitary(&ham, time);
    let f_gate = fidelity::fidelity(&gate_acc.to_matrix(), &exact_u);
    let f_rot = fidelity::fidelity_with_matrix(&rot_acc, &exact_u);
    assert!((f_gate - f_rot).abs() < 1e-9);
}

#[test]
fn gate_cancellation_strategy_reduces_cnots_without_losing_accuracy() {
    let ham = Hamiltonian::parse(
        "0.9 ZZZZI + 0.8 ZZIZI + 0.7 XXIII + 0.6 IYYII + 0.5 IIZZZ + 0.4 XYXYI + 0.3 IZIZZ + 0.2 YYIII",
    )
    .unwrap();
    let time = 0.4;
    let samples = 3000;
    let compile = |strategy: TransitionStrategy| {
        let cfg = CompilerConfig::new(time, 0.05)
            .with_strategy(strategy)
            .with_seed(17)
            .with_sample_count(samples)
            .without_circuit();
        Compiler::new(cfg).compile(&ham).unwrap()
    };
    let baseline = compile(TransitionStrategy::baseline());
    let gc = compile(TransitionStrategy::marqsim_gc());

    assert!(
        (gc.stats.cnot as f64) < 0.95 * baseline.stats.cnot as f64,
        "expected at least 5% CNOT reduction: {} vs {}",
        gc.stats.cnot,
        baseline.stats.cnot
    );

    let f_base = metrics::evaluate_fidelity(&baseline.hamiltonian, time, &baseline.sequence);
    let f_gc = metrics::evaluate_fidelity(&gc.hamiltonian, time, &gc.sequence);
    assert!(f_base > 0.99);
    assert!(
        f_gc > 0.98,
        "GC accuracy {f_gc} dropped too far below baseline {f_base}"
    );
}

#[test]
fn qdrift_error_bound_is_respected_on_average() {
    // Theorem 4.1: the error is bounded by roughly epsilon = 2 lambda^2 t^2 / N.
    // The trace-fidelity deficit should therefore shrink as N grows.
    let ham = Hamiltonian::parse("0.5 XZ + 0.4 ZY + 0.3 XX + 0.2 YZ").unwrap();
    let time = 0.6;
    let deficit = |epsilon: f64| {
        let mut total = 0.0;
        let repeats = 5;
        for seed in 0..repeats {
            let cfg = CompilerConfig::new(time, epsilon)
                .with_strategy(TransitionStrategy::baseline())
                .with_seed(seed)
                .without_circuit();
            let result = Compiler::new(cfg).compile(&ham).unwrap();
            let f = metrics::evaluate_fidelity(&result.hamiltonian, time, &result.sequence);
            total += 1.0 - f;
        }
        total / repeats as f64
    };
    let coarse = deficit(0.2);
    let fine = deficit(0.02);
    assert!(
        fine < coarse,
        "higher sample count should reduce the average error ({fine} vs {coarse})"
    );
    assert!(
        fine < 0.02,
        "fine-grained compilation error too large: {fine}"
    );
}

#[test]
fn compiled_circuit_exports_to_qasm() {
    let ham = example_hamiltonian();
    let config = CompilerConfig::new(0.3, 0.2)
        .with_strategy(TransitionStrategy::marqsim_gc())
        .with_seed(1);
    let result = Compiler::new(config).compile(&ham).unwrap();
    let text = qasm::to_qasm(&result.circuit);
    assert!(text.contains("OPENQASM 2.0"));
    assert!(text.contains("qreg q[3];"));
    assert!(text.contains("cx "));
    assert!(text.contains("rz("));
}

#[test]
fn sequence_statistics_are_consistent_with_the_synthesized_circuit() {
    // The analytic sequence model and the gate-level circuit agree exactly on
    // the Rz count, and the circuit (whose peephole pass is conservative
    // about ladder ordering) never has fewer CNOTs than twice the analytic
    // junction model nor more than the unoptimized synthesis.
    let ham = example_hamiltonian();
    let config = CompilerConfig::new(0.4, 0.05)
        .with_strategy(TransitionStrategy::marqsim_gc())
        .with_seed(5);
    let result = Compiler::new(config).compile(&ham).unwrap();
    assert_eq!(result.stats.rz, result.circuit.rz_count());
    let unoptimized_cnots: usize = result
        .merged_sequence
        .iter()
        .map(|&(idx, _)| {
            2 * result
                .hamiltonian
                .term(idx)
                .string
                .weight()
                .saturating_sub(1)
        })
        .sum();
    assert!(result.circuit.cnot_count() <= unoptimized_cnots);
    assert!(result.stats.cnot <= unoptimized_cnots);
}
