//! The open job API's acceptance tests: a workload type defined entirely
//! outside `crates/engine` and `crates/serve` (the `FibWorkload` below)
//! runs end-to-end through both `Engine::submit` and a live
//! `marqsim-served` daemon — registry-registered kind, streamed progress,
//! cooperative cancellation mid-run, throttled progress — plus the
//! progress-monotonicity property over randomly generated workloads and the
//! thousand-point-sweep event-coalescing bound.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use marqsim::engine::{
    Engine, EngineConfig, EngineError, Priority, Progress, ProgressCadence, SubmitOptions,
    SweepRequest, SweepWorkload, Workload, WorkloadCtx, WorkloadOutput,
};
use marqsim::pauli::Hamiltonian;
use marqsim::serve::{Client, ClientError, Json, Outcome, Server, ServerHandle, WorkloadRegistry};
use quickprop::{check, Config};

/// A workload the engine has never heard of: computes the first `units`
/// Fibonacci numbers, one per progress unit, optionally sleeping per unit
/// (so cancellation tests have a window) and optionally failing at a given
/// unit (exercising the workload-error path).
#[derive(Debug, Clone)]
struct FibWorkload {
    label: String,
    units: usize,
    delay: Duration,
    fail_at: Option<usize>,
}

impl FibWorkload {
    fn new(label: &str, units: usize) -> Self {
        FibWorkload {
            label: label.to_string(),
            units,
            delay: Duration::ZERO,
            fail_at: None,
        }
    }

    fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    fn with_failure_at(mut self, unit: usize) -> Self {
        self.fail_at = Some(unit);
        self
    }
}

/// The reference sequence.
fn fib(units: usize) -> Vec<u64> {
    let mut values = Vec::with_capacity(units);
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..units {
        values.push(a);
        let next = a.wrapping_add(b);
        a = b;
        b = next;
    }
    values
}

impl Workload for FibWorkload {
    fn label(&self) -> &str {
        &self.label
    }

    fn total_units(&self) -> usize {
        self.units
    }

    fn run(&self, ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError> {
        let mut values = Vec::with_capacity(self.units);
        let (mut a, mut b) = (0u64, 1u64);
        for unit in 0..self.units {
            ctx.ensure_active()?;
            if self.fail_at == Some(unit) {
                return Err(EngineError::workload(
                    &self.label,
                    format!("configured to fail at unit {unit}"),
                ));
            }
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            values.push(a);
            let next = a.wrapping_add(b);
            a = b;
            b = next;
            ctx.report(unit + 1, self.units);
        }
        Ok(WorkloadOutput::new(values))
    }
}

/// Registers the `fib` kind on top of the built-ins — the full "new
/// workload, no protocol surgery" path: params decoder in, outcome encoder
/// out.
fn registry_with_fib() -> WorkloadRegistry {
    let mut registry = WorkloadRegistry::builtin();
    registry.register(
        "fib",
        |label, params| {
            let units = params
                .get("units")
                .and_then(Json::as_usize)
                .ok_or_else(|| "field 'units' must be an unsigned integer".to_string())?;
            let delay_ms = params.get("delay_ms").and_then(Json::as_u64).unwrap_or(0);
            Ok(
                Box::new(FibWorkload::new(label, units).with_delay(Duration::from_millis(delay_ms)))
                    as Box<dyn Workload>,
            )
        },
        |output| {
            let values = output
                .downcast_ref::<Vec<u64>>()
                .ok_or_else(|| "fib jobs produce Vec<u64> outputs".to_string())?;
            Ok(Json::obj([
                ("kind", "fib".into()),
                (
                    "values",
                    Json::Arr(values.iter().map(|&v| v.into()).collect()),
                ),
            ]))
        },
    );
    registry
}

fn spawn_fib_server(threads: usize) -> ServerHandle {
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(threads)));
    Server::bind("127.0.0.1:0", engine)
        .expect("bind")
        .with_registry(registry_with_fib())
        .spawn()
        .expect("spawn")
}

#[test]
fn external_workload_runs_through_engine_submit_with_progress() {
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
    let events = Arc::new(Mutex::new(Vec::<Progress>::new()));
    let sink = Arc::clone(&events);
    let handle = engine.submit_with_progress(FibWorkload::new("fib/engine", 25), move |p| {
        sink.lock().unwrap().push(p)
    });
    assert_eq!(handle.label(), "fib/engine");
    let values: Vec<u64> = handle
        .collect()
        .expect("fib succeeds")
        .downcast()
        .expect("Vec<u64> output");
    assert_eq!(values, fib(25));

    let events = events.lock().unwrap();
    assert_eq!(events.len(), 25, "default cadence: one event per unit");
    for (i, event) in events.iter().enumerate() {
        assert_eq!((event.completed, event.total), (i + 1, 25));
    }
}

#[test]
fn external_workload_runs_synchronously_and_at_high_priority() {
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
    let sync: Vec<u64> = engine
        .run_workload(&FibWorkload::new("fib/sync", 10))
        .unwrap()
        .downcast()
        .unwrap();
    assert_eq!(sync, fib(10));

    let handle = engine.submit_with_options(
        FibWorkload::new("fib/high", 10),
        SubmitOptions::new().with_priority(Priority::High),
        |_| {},
    );
    let high: Vec<u64> = handle.collect().unwrap().downcast().unwrap();
    assert_eq!(high, sync, "priority cannot change results");
}

#[test]
fn external_workload_cancels_mid_run() {
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(1)));
    let handle =
        engine.submit(FibWorkload::new("fib/cancel", 2000).with_delay(Duration::from_millis(1)));
    // Wait until the workload is demonstrably mid-run, then cancel.
    while handle.progress().completed < 3 {
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.cancel();
    match handle.collect() {
        Err(EngineError::Cancelled { label }) => assert_eq!(label, "fib/cancel"),
        other => panic!("expected cancellation, got {other:?}"),
    }
}

#[test]
fn external_workload_errors_carry_the_label() {
    let engine = Engine::new(EngineConfig::default().with_threads(1));
    match engine.run_workload(&FibWorkload::new("fib/fails", 10).with_failure_at(4)) {
        Err(EngineError::Workload { label, message }) => {
            assert_eq!(label, "fib/fails");
            assert!(message.contains("unit 4"));
        }
        other => panic!("expected a workload error, got {other:?}"),
    }
}

#[test]
fn external_workload_runs_through_a_live_daemon() {
    let server = spawn_fib_server(2);
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(
        client.workloads().contains(&"fib".to_string()),
        "hello advertises the registered kind: {:?}",
        client.workloads()
    );

    let job = client
        .submit("fib/tcp", "fib", Json::obj([("units", 30usize.into())]))
        .unwrap();
    let mut progress_events = 0usize;
    let result = client
        .wait_with_progress(job, |completed, total| {
            progress_events += 1;
            assert!(completed <= total);
            assert_eq!(total, 30);
        })
        .unwrap();
    match result.outcome {
        Outcome::Other { kind, value } => {
            assert_eq!(kind, "fib");
            let values: Vec<u64> = value
                .get("values")
                .and_then(Json::as_arr)
                .expect("values array")
                .iter()
                .map(|v| v.as_u64().expect("u64 values"))
                .collect();
            assert_eq!(values, fib(30));
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    assert_eq!(progress_events, 30, "default cadence streams every unit");
    server.shutdown();
}

#[test]
fn external_workload_cancels_over_tcp_and_throttles_progress() {
    let server = spawn_fib_server(2);

    // Cancellation mid-run over the wire.
    let mut client = Client::connect(server.addr()).unwrap();
    let job = client
        .submit(
            "fib/tcp-cancel",
            "fib",
            Json::obj([("units", 5000usize.into()), ("delay_ms", 1u64.into())]),
        )
        .unwrap();
    // Let it demonstrably start (first progress events arrive), then cancel.
    let started = client
        .status(job)
        .map(|_| ())
        .and_then(|_| client.cancel(job));
    started.unwrap();
    match client.wait(job) {
        Err(ClientError::JobFailed { kind, .. }) => assert_eq!(kind, "cancelled"),
        Ok(_) => panic!("a 5000-unit delayed workload cannot finish before the cancel"),
        Err(other) => panic!("unexpected error {other:?}"),
    }

    // Throttled progress over the wire: 600 units at cadence 100 → a
    // bounded event stream that still ends on completed == total.
    let options = SubmitOptions::new().with_progress_every(ProgressCadence::every(100));
    let job = client
        .submit_with_options(
            "fib/tcp-throttled",
            "fib",
            Json::obj([("units", 600usize.into())]),
            options,
        )
        .unwrap();
    let mut events = Vec::new();
    let result = client
        .wait_with_progress(job, |completed, total| events.push((completed, total)))
        .unwrap();
    assert!(matches!(result.outcome, Outcome::Other { .. }));
    assert!(
        events.len() <= 8,
        "600 units at cadence 100 must coalesce, got {} events",
        events.len()
    );
    assert_eq!(events.last(), Some(&(600, 600)));
    for pair in events.windows(2) {
        assert!(pair[0].0 < pair[1].0, "monotone progress on the wire");
    }
    server.shutdown();
}

#[test]
fn multi_phase_workloads_report_one_cumulative_progress_stream() {
    // A workload that fans out twice: progress from the second map must
    // continue where the first left off (not restart at 1 and get dropped
    // by the monotonicity floor), and the final event must land exactly on
    // total_units.
    struct TwoPhase;
    impl Workload for TwoPhase {
        fn label(&self) -> &str {
            "two-phase"
        }
        fn total_units(&self) -> usize {
            15
        }
        fn run(&self, ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError> {
            let first: Vec<u64> = ctx
                .map((0..10u64).collect(), |_, x| Ok(x * 2))
                .into_iter()
                .collect::<Result<_, _>>()?;
            let second: Vec<u64> = ctx
                .map((0..5u64).collect(), |_, x| Ok(x + 100))
                .into_iter()
                .collect::<Result<_, _>>()?;
            Ok(WorkloadOutput::new((first, second)))
        }
    }

    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
    let events = Arc::new(Mutex::new(Vec::<Progress>::new()));
    let sink = Arc::clone(&events);
    let handle = engine.submit_with_progress(TwoPhase, move |p| sink.lock().unwrap().push(p));
    let (first, second): (Vec<u64>, Vec<u64>) =
        handle.collect().unwrap().downcast().expect("tuple output");
    assert_eq!(first, (0..10).map(|x| x * 2).collect::<Vec<u64>>());
    assert_eq!(second, (100..105).collect::<Vec<u64>>());

    let events = events.lock().unwrap();
    assert_eq!(events.len(), 15, "both phases stream, nothing suppressed");
    for (i, event) in events.iter().enumerate() {
        assert_eq!(
            (event.completed, event.total),
            (i + 1, 15),
            "cumulative across phases"
        );
    }
}

#[test]
fn thousand_point_sweep_coalesces_progress_events() {
    // The ROADMAP item this closes: one progress line per point is fine at
    // evaluation scale, but a 1000-point sweep must coalesce. Cheap
    // two-qubit points keep this fast.
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(4)));
    let ham = Hamiltonian::parse("1.0 ZZ + 0.5 XX + 0.3 YY").unwrap();
    let config = marqsim::core::experiment::SweepConfig {
        time: 0.3,
        epsilons: vec![0.1; 10],
        repeats: 100,
        base_seed: 3,
        evaluate_fidelity: false,
    };
    let workload = SweepWorkload::new(SweepRequest::new(
        "sweep/1000",
        ham,
        marqsim::core::TransitionStrategy::QDrift,
        config,
    ));
    assert_eq!(workload.total_units(), 1000);

    let events = Arc::new(AtomicUsize::new(0));
    let last = Arc::new(Mutex::new(Progress {
        completed: 0,
        total: 0,
    }));
    let (events_sink, last_sink) = (Arc::clone(&events), Arc::clone(&last));
    let handle = engine.submit_with_options(
        workload,
        SubmitOptions::new().with_progress_every(
            ProgressCadence::every(100).with_interval(Duration::from_millis(100)),
        ),
        move |p| {
            events_sink.fetch_add(1, Ordering::Relaxed);
            *last_sink.lock().unwrap() = p;
        },
    );
    let sweep = handle.collect().unwrap().into_swept();
    assert_eq!(sweep.points.len(), 1000);

    let emitted = events.load(Ordering::Relaxed);
    // 10 unit-threshold events plus however many 100 ms ticks elapse while
    // the sweep runs — a multi-second stall would need dozens of ticks, so
    // 40 is a generous bound that still proves coalescing (the unthrottled
    // stream would be 1000 events).
    assert!(
        (1..=40).contains(&emitted),
        "1000 points must coalesce to a bounded event count, got {emitted}"
    );
    let last = *last.lock().unwrap();
    assert_eq!(
        (last.completed, last.total),
        (1000, 1000),
        "the final event is always delivered"
    );
}

#[test]
fn reported_progress_is_monotone_and_bounded_by_total_units() {
    // Property: for ANY workload (random unit counts) under ANY cadence
    // (random coalescing), the emitted progress stream is strictly
    // increasing, never exceeds total_units, and ends exactly at
    // total_units.
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
    check(
        "workload progress is monotone and ≤ total_units",
        Config::default().with_seed(0xF1B).with_cases(24),
        |g| {
            let units = g.usize_in(1..80);
            let cadence = g.usize_in(1..20);
            let with_interval = g.bool(0.3);
            (units, cadence, with_interval)
        },
        |&(units, cadence, with_interval)| {
            let mut progress_cadence = ProgressCadence::every(cadence);
            if with_interval {
                progress_cadence = progress_cadence.with_interval(Duration::from_millis(50));
            }
            let events = Arc::new(Mutex::new(Vec::<Progress>::new()));
            let sink = Arc::clone(&events);
            let handle = engine.submit_with_options(
                FibWorkload::new("fib/property", units),
                SubmitOptions::new().with_progress_every(progress_cadence),
                move |p| sink.lock().unwrap().push(p),
            );
            let values: Vec<u64> = handle
                .collect()
                .map_err(|e| e.to_string())?
                .downcast()
                .map_err(|_| "output was not Vec<u64>".to_string())?;
            if values != fib(units) {
                return Err("wrong fibonacci values".to_string());
            }
            let events = events.lock().unwrap();
            let mut previous = 0usize;
            for event in events.iter() {
                if event.total != units {
                    return Err(format!("total {} != units {units}", event.total));
                }
                if event.completed > units {
                    return Err(format!("completed {} > total {units}", event.completed));
                }
                if event.completed <= previous {
                    return Err(format!(
                        "non-monotone progress: {} after {previous}",
                        event.completed
                    ));
                }
                previous = event.completed;
            }
            if previous != units {
                return Err(format!("final event at {previous}, expected {units}"));
            }
            Ok(())
        },
    );
}
