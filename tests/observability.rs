//! Property-based tests of the telemetry layer: histogram bucket
//! placement, merge semantics, and quantile bounds over random inputs,
//! plus the span invariants the tracing docs promise — child spans nest
//! arithmetically inside their parent's interval, and a job's queue-wait
//! plus run time never exceeds its wall time.
//!
//! The histogram properties run on isolated `Histogram` values, so they
//! parallelize freely. The span properties share the process-global trace
//! sink, so they serialize on one mutex (the same discipline the obs
//! crate's own unit tests use).

use std::sync::{Mutex, PoisonError};

use quickprop::{check, Config, Gen};

use std::sync::Arc;

use marqsim::core::experiment::SweepConfig;
use marqsim::core::TransitionStrategy;
use marqsim::engine::{Engine, EngineConfig, SweepRequest, SweepWorkload};
use marqsim::obs::metrics::Histogram;
use marqsim::obs::trace;
use marqsim::pauli::Hamiltonian;

/// Random strictly increasing finite edges (1 to 8 of them) spanning a
/// few orders of magnitude, plus values chosen to land below, between,
/// and beyond them.
fn edges_and_values(g: &mut Gen) -> (Vec<f64>, Vec<f64>) {
    let mut edges = Vec::new();
    let mut edge = g.f64_in(1e-6, 1e-3);
    for _ in 0..g.usize_in(1..9) {
        edges.push(edge);
        edge *= g.f64_in(1.5, 20.0);
    }
    let top = *edges.last().expect("at least one edge");
    let values = g.vec_of(0..40, |g| {
        if g.bool(0.15) {
            // Past the last edge: must land in the overflow bucket.
            top * g.f64_in(1.0 + 1e-9, 100.0)
        } else {
            g.f64_in(0.0, top)
        }
    });
    (edges, values)
}

/// The bucket `v` belongs in per the documented rule: the first edge
/// `>= v`, else the overflow bucket.
fn expected_bucket(edges: &[f64], v: f64) -> usize {
    edges
        .iter()
        .position(|&edge| v <= edge)
        .unwrap_or(edges.len())
}

#[test]
fn recorded_values_land_in_the_documented_bucket() {
    check(
        "histogram bucket placement",
        Config::default().with_seed(0x0B51),
        edges_and_values,
        |(edges, values)| {
            let h = Histogram::new(edges);
            let mut expected = vec![0u64; edges.len() + 1];
            for &v in values {
                h.record(v);
                expected[expected_bucket(edges, v)] += 1;
            }
            let snapshot = h.snapshot();
            if snapshot.counts != expected {
                return Err(format!(
                    "bucket counts {:?} differ from the documented placement {:?}",
                    snapshot.counts, expected
                ));
            }
            if snapshot.count != values.len() as u64 {
                return Err(format!(
                    "total count {} != {} recorded values",
                    snapshot.count,
                    values.len()
                ));
            }
            let sum: f64 = values.iter().sum();
            if (snapshot.sum - sum).abs() > 1e-9 * sum.abs().max(1.0) {
                return Err(format!("sum {} != recorded sum {sum}", snapshot.sum));
            }
            Ok(())
        },
    );
}

#[test]
fn merging_two_histograms_equals_recording_the_union() {
    check(
        "histogram merge == union",
        Config::default().with_seed(0x0B52),
        |g| {
            let (edges, values) = edges_and_values(g);
            let split = g.usize_in(0..values.len() + 1);
            (edges, values, split)
        },
        |(edges, values, split)| {
            let (left_values, right_values) = values.split_at(*split);
            let left = Histogram::new(edges);
            let right = Histogram::new(edges);
            let union = Histogram::new(edges);
            for &v in left_values {
                left.record(v);
                union.record(v);
            }
            for &v in right_values {
                right.record(v);
                union.record(v);
            }
            left.merge(&right);
            let merged = left.snapshot();
            let expected = union.snapshot();
            if merged.counts != expected.counts || merged.count != expected.count {
                return Err(format!("merged {merged:?} != union {expected:?}"));
            }
            if (merged.sum - expected.sum).abs() > 1e-9 * expected.sum.abs().max(1.0) {
                return Err(format!(
                    "merged sum {} != union sum {}",
                    merged.sum, expected.sum
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn quantile_estimates_are_bucket_edges_bounding_the_true_quantile() {
    check(
        "histogram quantile bounds",
        Config::default().with_seed(0x0B53),
        |g| {
            let (edges, mut values) = edges_and_values(g);
            if values.is_empty() {
                values.push(g.f64_in(0.0, edges[edges.len() - 1]));
            }
            let q = g.f64_in(0.01, 1.0);
            (edges, values, q)
        },
        |(edges, values, q)| {
            let h = Histogram::new(edges);
            for &v in values {
                h.record(v);
            }
            let estimate = h.quantile(*q).expect("non-empty histogram");
            // The estimate is always one of the bucket upper edges (or
            // +Inf for the overflow bucket) — never an interpolation.
            if estimate.is_finite() && !edges.contains(&estimate) {
                return Err(format!("estimate {estimate} is not a bucket edge"));
            }
            // And it upper-bounds the true q-quantile: the rank-th
            // smallest recorded value sits in the estimate's bucket, so
            // it cannot exceed the bucket's upper edge.
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
            let true_quantile = sorted[rank - 1];
            if estimate < true_quantile {
                return Err(format!(
                    "estimate {estimate} below the true {q}-quantile {true_quantile}"
                ));
            }
            // Quantiles are monotone in q.
            let p50 = h.quantile(0.5).expect("non-empty");
            let p99 = h.quantile(0.99).expect("non-empty");
            if p50 > p99 {
                return Err(format!("p50 {p50} > p99 {p99}"));
            }
            Ok(())
        },
    );
}

/// All span tests share the process-global trace sink; serialize them.
static SINK_GUARD: Mutex<()> = Mutex::new(());

/// Extracts a top-level field value from a JSONL span record.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tagged = format!("\"{key}\":");
    let rest = &line[line.find(&tagged)? + tagged.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim_matches('"'))
}

fn num(line: &str, key: &str) -> u64 {
    field(line, key)
        .unwrap_or_else(|| panic!("record without {key}: {line}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key}: {line}"))
}

#[test]
fn child_spans_nest_within_their_parent_interval() {
    let _guard = SINK_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
    check(
        "span nesting",
        Config::default().with_cases(12).with_seed(0x0B54),
        |g| g.vec_of(1..5, |g| g.usize_in(0..3)),
        |tree| {
            let buffer = trace::install_memory_sink();
            {
                let _root = trace::Span::enter("root");
                for &grandchildren in tree {
                    let _child = trace::Span::enter("child");
                    for _ in 0..grandchildren {
                        let _leaf = trace::Span::enter("leaf").field("kind", "work");
                        std::hint::black_box(());
                    }
                }
            }
            let lines = buffer.lock().unwrap_or_else(PoisonError::into_inner);
            // Index records by id, then check every parent link's
            // arithmetic containment: child ⊆ parent in [start, start+dur].
            let by_id: Vec<&String> = lines.iter().collect();
            let find = |id: u64| {
                by_id
                    .iter()
                    .find(|l| num(l, "id") == id)
                    .unwrap_or_else(|| panic!("no record with id {id}"))
            };
            // `start_us` and `dur_us` are truncated to whole microseconds
            // independently, so a child's truncated end may exceed its
            // parent's truncated end by up to 2µs even though the real
            // intervals nest exactly.
            const ROUNDING_US: u64 = 2;
            for line in lines.iter() {
                let Some(parent) = field(line, "parent") else {
                    continue;
                };
                let parent = find(parent.parse().expect("numeric parent"));
                let (cs, cd) = (num(line, "start_us"), num(line, "dur_us"));
                let (ps, pd) = (num(parent, "start_us"), num(parent, "dur_us"));
                if cs + ROUNDING_US < ps || cs + cd > ps + pd + ROUNDING_US {
                    return Err(format!(
                        "child [{cs}, {}] outside parent [{ps}, {}]:\n{line}\n{parent}",
                        cs + cd,
                        ps + pd
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn queue_wait_plus_run_stays_within_the_job_wall_time() {
    let _guard = SINK_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
    let buffer = trace::install_memory_sink();

    // One real engine job, through the submitting path (the coordinator
    // thread opens the job span; every pool task records its queue wait
    // from enqueue to dequeue plus its run span).
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
    let ham = Hamiltonian::parse("0.9 ZZZZ + 0.7 XXII + 0.5 IYYI + 0.3 IIZZ").unwrap();
    let handle = engine.submit(SweepWorkload::new(SweepRequest::new(
        "obs/queue-wait",
        ham,
        TransitionStrategy::marqsim_gc(),
        SweepConfig::quick(0.5),
    )));
    handle.collect().unwrap();
    drop(engine);

    let lines = buffer.lock().unwrap_or_else(PoisonError::into_inner);
    let jobs: Vec<&String> = lines
        .iter()
        .filter(|l| field(l, "span") == Some("job"))
        .collect();
    assert_eq!(jobs.len(), 1, "exactly one job span: {lines:?}");
    let job = jobs[0];
    let job_id = num(job, "id");
    let job_end = num(job, "start_us") + num(job, "dur_us");

    // Allowance for worker-thread bookkeeping that trails the
    // coordinator's result collection (microseconds in practice; generous
    // here so a loaded CI machine cannot flake the causal invariant).
    const SLACK_US: u64 = 50_000;

    // Every queue_wait and pool_task whose parent chain reaches the job
    // closes inside (or within slack of) the job's interval, and the
    // wait + run totals cannot exceed workers × the job's wall time.
    let parent_of = |id: u64| -> Option<u64> {
        lines
            .iter()
            .find(|l| num(l, "id") == id)
            .and_then(|l| field(l, "parent"))
            .and_then(|p| p.parse().ok())
    };
    let descends_from_job = |line: &str| -> bool {
        let mut cursor = field(line, "parent").and_then(|p| p.parse::<u64>().ok());
        while let Some(id) = cursor {
            if id == job_id {
                return true;
            }
            cursor = parent_of(id);
        }
        false
    };
    let mut waits = 0u64;
    let mut runs = 0u64;
    let mut wait_total = 0u64;
    let mut run_total = 0u64;
    for line in lines.iter() {
        if !descends_from_job(line) {
            continue;
        }
        match field(line, "span") {
            Some("queue_wait") => {
                waits += 1;
                wait_total += num(line, "dur_us");
                assert!(
                    num(line, "start_us") + num(line, "dur_us") <= job_end,
                    "queue wait ends after the job: {line}\njob: {job}"
                );
            }
            Some("pool_task") => {
                runs += 1;
                run_total += num(line, "dur_us");
                // A task must start inside the job interval (it cannot be
                // dequeued before the job opened). Its close can trail the
                // job close by worker-thread bookkeeping — the coordinator
                // collects the result before the worker drops the span —
                // so the end is only bounded up to scheduling slack.
                assert!(
                    num(line, "start_us") >= num(job, "start_us"),
                    "pool task starts before the job: {line}\njob: {job}"
                );
                assert!(
                    num(line, "start_us") + num(line, "dur_us") <= job_end + SLACK_US,
                    "pool task ends far after the job: {line}\njob: {job}"
                );
            }
            _ => {}
        }
    }
    assert!(waits > 0, "the job's tasks recorded queue waits: {lines:?}");
    assert!(runs > 0, "the job's tasks recorded run spans: {lines:?}");
    // With 2 workers, per-lane wait+run of any single task is bounded by
    // the job wall; the aggregate across tasks is bounded by workers ×
    // wall. The single-task bound is the invariant the ISSUE names.
    let workers = 2;
    assert!(
        wait_total + run_total <= workers * (num(job, "dur_us") + SLACK_US),
        "waits {wait_total}µs + runs {run_total}µs exceed {workers}× the job wall {}µs",
        num(job, "dur_us")
    );
}
