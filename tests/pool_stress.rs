//! Stress tests for the engine thread pool: 10k mixed panicking/normal
//! jobs across worker counts, asserting no wedge, no lost result, and
//! consistent accounting — locking in the PR 2 `catch_unwind` fix (before
//! it, enough panicking tasks unwound every worker and later submissions
//! blocked forever).
//!
//! Worker counts honor `MARQSIM_THREADS` when set (the CI matrix runs the
//! suite under 1 and 4); otherwise the sweep covers 2..=8.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;

use marqsim::engine::{Engine, EngineConfig, ThreadPool};

/// The thread counts to stress. `MARQSIM_THREADS` (as set by the CI
/// matrix) pins the sweep to that single count; otherwise 2..=8.
fn thread_counts() -> Vec<usize> {
    if let Ok(value) = std::env::var("MARQSIM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return vec![n];
            }
        }
    }
    (2..=8).collect()
}

const JOBS: usize = 10_000;

/// Every 7th job panics.
fn is_panicker(i: usize) -> bool {
    i % 7 == 3
}

#[test]
fn ten_thousand_mixed_jobs_lose_nothing_and_never_wedge() {
    for threads in thread_counts() {
        let pool = ThreadPool::new(threads);
        let ran = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&ran);
        let out = pool.map(
            (0..JOBS).collect::<Vec<usize>>(),
            Arc::new(move |_idx, i: usize| {
                counter.fetch_add(1, Ordering::Relaxed);
                if is_panicker(i) {
                    panic!("stress boom {i}");
                }
                i * 2
            }),
            |_| {},
        );

        // No lost result: exactly one slot per job, each in input order
        // with the right Ok/Err shape.
        assert_eq!(out.len(), JOBS, "{threads} threads");
        let mut panics = 0usize;
        for (i, result) in out.iter().enumerate() {
            if is_panicker(i) {
                let message = result.as_ref().unwrap_err();
                assert!(
                    message.contains(&format!("stress boom {i}")),
                    "{threads} threads, job {i}: {message}"
                );
                panics += 1;
            } else {
                assert_eq!(*result.as_ref().unwrap(), i * 2, "{threads} threads");
            }
        }
        // Stats consistency: every job ran exactly once (the panicking ones
        // too — they count before unwinding).
        assert_eq!(ran.load(Ordering::Relaxed), JOBS, "{threads} threads");
        assert_eq!(panics, (0..JOBS).filter(|&i| is_panicker(i)).count());

        // No wedge: the same pool still completes a follow-up batch.
        let after = pool.map(vec![1u32, 2, 3], Arc::new(|_idx, x: u32| x + 1), |_| {});
        assert!(after.iter().all(|r| r.is_ok()), "{threads} threads wedged");
    }
}

#[test]
fn raw_execute_panics_interleaved_with_maps_keep_the_pool_alive() {
    // Fire-and-forget panickers racing a map on the same pool: the map's
    // results must be complete and correct regardless.
    for threads in thread_counts() {
        let pool = ThreadPool::new(threads);
        let (done_tx, done_rx) = channel::<()>();
        for i in 0..64 {
            let done_tx = done_tx.clone();
            pool.execute(Box::new(move || {
                let _guard = done_tx;
                if i % 2 == 0 {
                    panic!("raw boom {i}");
                }
            }));
        }
        drop(done_tx);
        let out = pool.map(
            (0..500u64).collect::<Vec<u64>>(),
            Arc::new(|_idx, x: u64| x * x),
            |_| {},
        );
        for (i, result) in out.into_iter().enumerate() {
            assert_eq!(result.unwrap(), (i * i) as u64, "{threads} threads");
        }
        // All raw tasks ran (every sender clone dropped).
        assert!(done_rx.recv().is_err(), "{threads} threads");
    }
}

#[test]
fn engine_map_under_stress_reports_every_panic_with_its_label() {
    for threads in thread_counts() {
        let engine = Engine::new(EngineConfig::default().with_threads(threads));
        let out = engine.map("stress", (0..2_000usize).collect(), |_idx, i| {
            if is_panicker(i) {
                panic!("engine boom {i}");
            }
            i
        });
        assert_eq!(out.len(), 2_000);
        for (i, result) in out.into_iter().enumerate() {
            if is_panicker(i) {
                let error = result.unwrap_err();
                assert_eq!(error.label(), "stress");
                assert!(error.to_string().contains("engine boom"));
            } else {
                assert_eq!(result.unwrap(), i);
            }
        }
    }
}

#[test]
fn submitted_job_stress_every_handle_resolves_exactly_once() {
    // Async submission stress: a burst of small sweep jobs, a third of
    // them cancelled immediately. Every handle must resolve (done or
    // cancelled), ids must be unique, and the engine must stay usable.
    use marqsim::core::experiment::SweepConfig;
    use marqsim::core::TransitionStrategy;
    use marqsim::engine::{EngineError, SweepRequest, SweepWorkload};
    use marqsim::pauli::Hamiltonian;

    let ham = Hamiltonian::parse("0.9 ZZ + 0.7 XX + 0.5 YY").unwrap();
    for threads in [2usize, 4] {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(threads)));
        let config = SweepConfig {
            time: 0.5,
            epsilons: vec![0.1],
            repeats: 2,
            base_seed: 1,
            evaluate_fidelity: false,
        };
        let handles: Vec<_> = (0..60)
            .map(|i| {
                engine.submit(SweepWorkload::new(SweepRequest::new(
                    format!("stress/{i}"),
                    ham.clone(),
                    TransitionStrategy::QDrift,
                    config.clone(),
                )))
            })
            .collect();
        let mut ids: Vec<u64> = handles.iter().map(|h| h.id().0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 60, "ids must be unique");

        let mut done = 0usize;
        let mut cancelled = 0usize;
        for (i, handle) in handles.into_iter().enumerate() {
            if i % 3 == 0 {
                handle.cancel();
            }
            match handle.collect() {
                Ok(outcome) => {
                    assert_eq!(outcome.into_swept().points.len(), 2);
                    done += 1;
                }
                Err(EngineError::Cancelled { label }) => {
                    assert_eq!(label, format!("stress/{i}"));
                    cancelled += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!(done + cancelled, 60, "{threads} threads: lost outcomes");
        // Non-cancelled jobs must all have completed.
        assert!(
            done >= 40,
            "{threads} threads: {done} done, {cancelled} cancelled"
        );
    }
}
