//! Cross-crate pipeline tests: second quantization → Jordan–Wigner →
//! benchmark suite → MarQSim compilation → baselines, exercising every crate
//! of the workspace together.

use marqsim::core::{baselines, metrics, Compiler, CompilerConfig, TransitionStrategy};
use marqsim::fermion::hubbard::{hubbard_hamiltonian, HubbardParams};
use marqsim::fermion::syk::{syk_hamiltonian, SykParams};
use marqsim::hamlib::spin::{heisenberg_xxz, transverse_field_ising};
use marqsim::hamlib::suite::{table1_suite, SuiteScale};
use marqsim::markov::spectra::spectrum;

#[test]
fn hubbard_model_compiles_and_simulates_accurately() {
    let ham = hubbard_hamiltonian(&HubbardParams {
        sites: 2,
        hopping: 1.0,
        interaction: 2.0,
        periodic: false,
    })
    .unwrap();
    let time = 0.3;
    let config = CompilerConfig::new(time, 0.01)
        .with_strategy(TransitionStrategy::marqsim_gc())
        .with_seed(2)
        .without_circuit();
    let result = Compiler::new(config).compile(&ham).unwrap();
    let f = metrics::evaluate_fidelity(&result.hamiltonian, time, &result.sequence);
    assert!(f > 0.99, "Hubbard fidelity {f}");
}

#[test]
fn syk_instance_compiles_with_every_strategy() {
    let ham = syk_hamiltonian(
        &SykParams {
            majoranas: 10,
            coupling: 1.0,
            seed: 4,
        },
        Some(60),
    );
    for strategy in [
        TransitionStrategy::baseline(),
        TransitionStrategy::marqsim_gc(),
        TransitionStrategy::marqsim_gc_rp(),
    ] {
        let config = CompilerConfig::new(0.15, 0.05)
            .with_strategy(strategy)
            .with_seed(6)
            .without_circuit();
        let result = Compiler::new(config).compile(&ham).unwrap();
        assert!(result.stats.cnot > 0);
        assert_eq!(result.sequence.len(), result.num_samples);
    }
}

#[test]
fn reduced_benchmark_suite_compiles_under_all_configurations() {
    for bench in table1_suite(SuiteScale::Reduced) {
        let config = CompilerConfig::new(bench.time, 0.1)
            .with_strategy(TransitionStrategy::marqsim_gc())
            .with_seed(8)
            .without_circuit();
        let result = Compiler::new(config)
            .compile(&bench.hamiltonian)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", bench.name));
        assert!(result.num_samples > 0, "{}", bench.name);
        assert!(
            result.transition.is_strongly_connected(),
            "{} transition graph not strongly connected",
            bench.name
        );
    }
}

#[test]
fn marqsim_beats_baseline_on_spin_chains_at_equal_budget() {
    let ham = heisenberg_xxz(5, 1.0, 0.5, false);
    let budget = 2000;
    let compile = |strategy: TransitionStrategy| {
        let cfg = CompilerConfig::new(0.5, 0.05)
            .with_strategy(strategy)
            .with_seed(13)
            .with_sample_count(budget)
            .without_circuit();
        Compiler::new(cfg).compile(&ham).unwrap()
    };
    let baseline = compile(TransitionStrategy::baseline());
    let marqsim = compile(TransitionStrategy::marqsim_gc());
    assert!(
        marqsim.stats.cnot < baseline.stats.cnot,
        "{} vs {}",
        marqsim.stats.cnot,
        baseline.stats.cnot
    );
}

#[test]
fn trotter_and_marqsim_both_converge_on_the_ising_chain() {
    let ham = transverse_field_ising(4, 1.0, 0.6, false);
    let time = 0.5;
    // Trotter baseline.
    let trotter = baselines::trotter_sequence_natural(&ham, time, 30);
    let f_trotter = baselines::evaluate_baseline_fidelity(&ham, time, &trotter);
    // MarQSim.
    let cfg = CompilerConfig::new(time, 0.005)
        .with_strategy(TransitionStrategy::marqsim_gc_rp())
        .with_seed(5)
        .without_circuit();
    let result = Compiler::new(cfg).compile(&ham).unwrap();
    let f_marqsim = metrics::evaluate_fidelity(&result.hamiltonian, time, &result.sequence);
    assert!(f_trotter > 0.999, "Trotter fidelity {f_trotter}");
    assert!(f_marqsim > 0.99, "MarQSim fidelity {f_marqsim}");
}

#[test]
fn spectra_of_suite_transition_matrices_are_stochastic() {
    // Leading eigenvalue 1, everything inside the unit disk — for the actual
    // benchmark-suite chains, not just toy examples.
    let bench = &table1_suite(SuiteScale::Reduced)[0];
    let config = CompilerConfig::new(bench.time, 0.1)
        .with_strategy(TransitionStrategy::marqsim_gc())
        .with_seed(1)
        .without_circuit();
    let result = Compiler::new(config).compile(&bench.hamiltonian).unwrap();
    let s = spectrum(&result.transition);
    assert!((s.values[0] - 1.0).abs() < 1e-6);
    for v in &s.values {
        assert!(*v <= 1.0 + 1e-6);
    }
}
