//! Golden regression tests: table1/table2/fig12-shaped outputs rendered on
//! tiny fixed Hamiltonians and compared against committed golden files, so
//! refactors of the compiler, the flow solver, or the engine cannot
//! silently drift numeric results.
//!
//! The comparison is token-wise: non-numeric tokens must match exactly,
//! integer tokens must match exactly, and float tokens use a tolerant
//! compare (relative 1e-9) so benign formatting or summation-order changes
//! do not fail the suite while real numeric drift does. Everything rendered
//! here is deterministic by construction — seeded RNG streams and the
//! engine's bit-identical parallel execution — so in practice the files
//! match byte for byte.
//!
//! To bless new goldens after an *intentional* change:
//!
//! ```text
//! MARQSIM_GOLDEN_REGEN=1 cargo test --test golden
//! git diff tests/golden/   # review the numeric drift before committing
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use marqsim::core::experiment::SweepConfig;
use marqsim::core::fitting::fit_exponential;
use marqsim::core::{CompilerConfig, SolverKind, TransitionStrategy};
use marqsim::engine::{CompileRequest, Engine, EngineConfig};
use marqsim::pauli::Hamiltonian;

/// Relative tolerance of the float compare.
const FLOAT_TOL: f64 = 1e-9;

/// The tiny, fast, fixed benchmark set the goldens are rendered on —
/// defined once in `marqsim_hamlib::suite` and shared with the serve
/// smoke's over-TCP replay.
fn tiny_benchmarks() -> Vec<(&'static str, Hamiltonian, f64)> {
    marqsim::hamlib::suite::golden_tiny_benchmarks()
}

/// Engines honor the environment (most importantly `MARQSIM_FLOW_SOLVER`,
/// so the CI test-matrix leg exercises the non-default backend end to end)
/// with the thread count pinned per render.
fn engine(threads: usize) -> Engine {
    let config = EngineConfig::from_env().expect("engine environment");
    Engine::new(config.with_threads(threads))
}

/// The min-cost-flow backend the environment selects (the default when
/// unset — exactly what `engine()` resolves).
fn env_solver() -> SolverKind {
    EngineConfig::from_env()
        .expect("engine environment")
        .cache
        .flow_solver
}

/// Resolves the golden file for an output. `table1` is solver-independent;
/// flow-derived outputs (`table2`, `fig12`) are pinned **per backend**:
/// backends guarantee equal optimal cost, but a degenerate optimum (e.g.
/// `tiny-ising`'s symmetric states) lets each backend deterministically
/// pick a different optimal flow, so each backend's numbers get their own
/// committed file (`<stem>.<backend>.txt` for anything but `ssp`). The
/// engine default is `auto`; its files are bit-identical to the bare ones
/// today (every golden instance is small enough to resolve to ssp) but
/// stay separate so a future threshold change shows up as a diff, not a
/// silent reroute.
fn golden_file(base: &str, solver_dependent: bool) -> String {
    let solver = env_solver();
    if !solver_dependent || solver == SolverKind::default() {
        return base.to_string();
    }
    let stem = base.strip_suffix(".txt").unwrap_or(base);
    format!("{stem}.{}.txt", solver.as_str())
}

/// Table 1 shape: the benchmark inventory columns (name, qubits, string
/// count, time, λ) plus the stationary-distribution extremes that drive
/// the qDRIFT sampling.
fn render_table1() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:>7} {:>14} {:>10} {:>12} {:>12} {:>12}",
        "benchmark", "qubits", "strings", "time", "lambda", "pi_max", "pi_min"
    )
    .unwrap();
    for (name, ham, time) in tiny_benchmarks() {
        let pi = ham.stationary_distribution();
        let pi_max = pi.iter().cloned().fold(f64::MIN, f64::max);
        let pi_min = pi.iter().cloned().fold(f64::MAX, f64::min);
        writeln!(
            out,
            "{:<16} {:>7} {:>14} {:>10.6} {:>12.8} {:>12.8} {:>12.8}",
            name,
            ham.num_qubits(),
            ham.num_terms(),
            time,
            ham.lambda(),
            pi_max,
            pi_min
        )
        .unwrap();
    }
    out
}

/// Table 2 shape: per-strategy compile metrics at a fixed (ε, seed) — the
/// numeric columns the paper's gate-count comparison is built from.
fn render_table2(threads: usize) -> String {
    let engine = engine(threads);
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:<12} {:>12} {:>8} {:>14} {:>8} {:>8} {:>10}",
        "benchmark", "strategy", "samples", "cnot", "single_qubit", "rz", "total", "segments"
    )
    .unwrap();
    for (name, ham, time) in tiny_benchmarks() {
        for (tag, strategy) in [
            ("baseline", TransitionStrategy::QDrift),
            ("gc", TransitionStrategy::marqsim_gc()),
            ("gc-rp", TransitionStrategy::marqsim_gc_rp()),
        ] {
            let outcome = engine
                .compile(CompileRequest::new(
                    format!("golden/{name}/{tag}"),
                    ham.clone(),
                    CompilerConfig::new(time, 0.05)
                        .with_strategy(strategy)
                        .with_seed(7)
                        .without_circuit(),
                ))
                .expect("golden compile");
            let stats = outcome.result.stats;
            writeln!(
                out,
                "{:<16} {:<12} {:>12} {:>8} {:>14} {:>8} {:>8} {:>10}",
                name,
                tag,
                outcome.result.num_samples,
                stats.cnot,
                stats.single_qubit,
                stats.rz,
                stats.total,
                stats.segments
            )
            .unwrap();
        }
    }
    out
}

/// Fig. 12 shape: the cluster-average pipeline on one small benchmark —
/// per-ε means/deviations of CNOT count and fidelity, plus the exponential
/// fit parameters used to compare configurations at matched accuracy.
fn render_fig12(threads: usize) -> String {
    let engine = engine(threads);
    let (_, ham, time) = tiny_benchmarks().remove(0);
    let config = SweepConfig {
        time,
        epsilons: vec![0.1, 0.067, 0.05],
        repeats: 3,
        base_seed: 12,
        evaluate_fidelity: true,
    };
    let sweep = engine
        .run_sweep(&ham, &TransitionStrategy::marqsim_gc(), &config)
        .expect("golden sweep");

    let mut out = String::new();
    writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>14} {:>14}",
        "epsilon", "mean_cnot", "std_cnot", "mean_fidelity", "std_fidelity"
    )
    .unwrap();
    let clusters = sweep.cluster_summaries();
    for c in &clusters {
        writeln!(
            out,
            "{:>10.6} {:>12.6} {:>12.6} {:>14.10} {:>14.10}",
            c.epsilon, c.mean_cnot, c.std_cnot, c.mean_fidelity, c.std_fidelity
        )
        .unwrap();
    }
    let curve: Vec<(f64, f64)> = clusters
        .iter()
        .filter(|c| c.mean_fidelity > 0.0)
        .map(|c| (c.mean_fidelity, c.mean_cnot))
        .collect();
    match fit_exponential(&curve) {
        Some(fit) => writeln!(out, "fit a {:.8} b {:.8} c {:.8}", fit.a, fit.b, fit.c).unwrap(),
        None => writeln!(out, "fit none").unwrap(),
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `rendered` against the committed golden file, or rewrites the
/// file when `MARQSIM_GOLDEN_REGEN=1`.
fn assert_matches_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("MARQSIM_GOLDEN_REGEN").map(|v| v == "1") == Ok(true) {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run MARQSIM_GOLDEN_REGEN=1 cargo test --test golden",
            path.display()
        )
    });

    // Fast path: byte-stable output matches exactly.
    if golden == rendered {
        return;
    }

    // Tolerant path: line/token-wise with float tolerance.
    let golden_lines: Vec<&str> = golden.lines().collect();
    let rendered_lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(
        golden_lines.len(),
        rendered_lines.len(),
        "{name}: line count changed"
    );
    for (line_no, (golden_line, rendered_line)) in
        golden_lines.iter().zip(&rendered_lines).enumerate()
    {
        let golden_tokens: Vec<&str> = golden_line.split_whitespace().collect();
        let rendered_tokens: Vec<&str> = rendered_line.split_whitespace().collect();
        assert_eq!(
            golden_tokens.len(),
            rendered_tokens.len(),
            "{name}:{}: column count changed\n  golden:   {golden_line}\n  rendered: {rendered_line}",
            line_no + 1
        );
        for (golden_token, rendered_token) in golden_tokens.iter().zip(&rendered_tokens) {
            if golden_token == rendered_token {
                continue;
            }
            // Integer tokens must match exactly; floats get the tolerance.
            let ints = (
                golden_token.parse::<i64>().ok(),
                rendered_token.parse::<i64>().ok(),
            );
            if let (Some(a), Some(b)) = ints {
                assert_eq!(
                    a, b,
                    "{name}:{}: integer column drifted\n  golden:   {golden_line}\n  rendered: {rendered_line}",
                    line_no + 1
                );
                continue;
            }
            let floats = (
                golden_token.parse::<f64>().ok(),
                rendered_token.parse::<f64>().ok(),
            );
            match floats {
                (Some(a), Some(b)) => {
                    let scale = 1.0f64.max(a.abs()).max(b.abs());
                    assert!(
                        (a - b).abs() <= FLOAT_TOL * scale,
                        "{name}:{}: float column drifted beyond {FLOAT_TOL:e}\n  golden:   {golden_line}\n  rendered: {rendered_line}",
                        line_no + 1
                    );
                }
                _ => panic!(
                    "{name}:{}: token changed ('{golden_token}' vs '{rendered_token}')\n  golden:   {golden_line}\n  rendered: {rendered_line}",
                    line_no + 1
                ),
            }
        }
    }
}

#[test]
fn table1_numeric_columns_are_stable() {
    assert_matches_golden(&golden_file("table1.txt", false), &render_table1());
}

#[test]
fn table2_numeric_columns_are_stable() {
    assert_matches_golden(&golden_file("table2.txt", true), &render_table2(2));
}

#[test]
fn fig12_numeric_columns_are_stable() {
    assert_matches_golden(&golden_file("fig12.txt", true), &render_fig12(2));
}

#[test]
fn golden_rendering_is_deterministic_across_thread_counts() {
    // The same render on fresh engines with *different* worker counts must
    // be byte-identical — the premise that makes the goldens meaningful
    // (and the exact class of nondeterminism they exist to catch).
    let serial = render_table2(1);
    let parallel = render_table2(4);
    assert_eq!(serial, parallel);
    let fig_serial = render_fig12(1);
    let fig_parallel = render_fig12(4);
    assert_eq!(fig_serial, fig_parallel);
}
