//! End-to-end tests of the parallel compilation engine through the facade:
//! determinism of parallel sweeps against the serial driver, transition-cache
//! behaviour, and a multi-benchmark batch across all three strategies.

use std::sync::Arc;

use marqsim::core::experiment::{run_sweep, SweepConfig};
use marqsim::core::TransitionStrategy;
use marqsim::engine::{Engine, EngineConfig, SweepRequest};
use marqsim::hamlib::suite::{table1_names, table1_suite, SuiteScale};
use marqsim::pauli::Hamiltonian;

fn benchmark_hamiltonian() -> Hamiltonian {
    Hamiltonian::parse(
        "0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ + 0.4 XYXY + 0.3 IZIZ + 0.2 YYII",
    )
    .unwrap()
}

#[test]
fn parallel_sweep_reproduces_the_serial_sweep_bit_for_bit() {
    let ham = benchmark_hamiltonian();
    let config = SweepConfig {
        time: 0.5,
        epsilons: vec![0.1, 0.05, 0.033],
        repeats: 3,
        base_seed: 17,
        evaluate_fidelity: true,
    };
    let strategy = TransitionStrategy::marqsim_gc();
    let serial = run_sweep(&ham, &strategy, &config).unwrap();
    let engine = Engine::new(EngineConfig::default().with_threads(4));
    let parallel = engine.run_sweep(&ham, &strategy, &config).unwrap();

    assert_eq!(parallel.label, serial.label);
    assert_eq!(parallel.points.len(), serial.points.len());
    for (p, s) in parallel.points.iter().zip(&serial.points) {
        assert_eq!(p.epsilon.to_bits(), s.epsilon.to_bits());
        assert_eq!(p.seed, s.seed);
        assert_eq!(p.num_samples, s.num_samples);
        assert_eq!(p.stats, s.stats);
        assert_eq!(p.fidelity.map(f64::to_bits), s.fidelity.map(f64::to_bits));
    }
    // Derived aggregates therefore agree exactly as well.
    let (serial_clusters, parallel_clusters) =
        (serial.cluster_summaries(), parallel.cluster_summaries());
    assert_eq!(serial_clusters, parallel_clusters);
}

#[test]
fn repeated_compiles_of_one_benchmark_hit_the_cache() {
    let ham = benchmark_hamiltonian();
    let strategy = TransitionStrategy::marqsim_gc();
    let engine = Engine::new(EngineConfig::default().with_threads(2));

    let first = engine.cache().get_or_build(&ham, &strategy).unwrap();
    let second = engine.cache().get_or_build(&ham, &strategy).unwrap();
    assert!(Arc::ptr_eq(&first, &second), "hit returns the cached graph");
    assert_eq!(
        first.transition_matrix().rows(),
        second.transition_matrix().rows(),
        "and therefore the identical transition matrix"
    );
    let stats = engine.cache().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // A whole sweep over the same benchmark adds no further builds.
    engine
        .run_sweep(&ham, &strategy, &SweepConfig::quick(0.5))
        .unwrap();
    assert_eq!(engine.cache().stats().misses, 1);
}

#[test]
fn multi_benchmark_batch_across_all_three_strategies() {
    let engine = Engine::new(EngineConfig::default().with_threads(4));
    let names = &table1_names()[..2];
    let strategies = [
        TransitionStrategy::QDrift,
        TransitionStrategy::marqsim_gc(),
        TransitionStrategy::marqsim_gc_rp(),
    ];
    let suite: Vec<_> = table1_suite(SuiteScale::Reduced)
        .into_iter()
        .filter(|b| names.contains(&b.name))
        .collect();
    assert_eq!(suite.len(), 2);

    let config = SweepConfig {
        time: 0.5,
        epsilons: vec![0.1],
        repeats: 2,
        base_seed: 5,
        evaluate_fidelity: false,
    };
    let mut requests = Vec::new();
    for bench in &suite {
        for strategy in &strategies {
            requests.push(SweepRequest::new(
                format!("{}/{}", bench.name, strategy.label()),
                bench.hamiltonian.clone(),
                strategy.clone(),
                config.clone(),
            ));
        }
    }
    let outcomes = engine.run_sweeps(requests);
    assert_eq!(outcomes.len(), suite.len() * strategies.len());
    for outcome in &outcomes {
        let sweep = outcome.as_ref().expect("sweep succeeds");
        assert_eq!(sweep.points.len(), 2);
        for point in &sweep.points {
            assert!(point.num_samples > 0);
            assert!(point.stats.cnot > 0);
        }
    }

    let stats = engine.cache().stats();
    assert_eq!(stats.graphs, 6, "one graph per (benchmark, strategy)");
    assert_eq!(
        stats.components, 2,
        "one P_gc per benchmark, shared by GC and GC-RP"
    );
    assert_eq!(stats.component_hits, 2);
}

#[test]
fn bounded_persistent_engine_matches_serial_and_skips_resolves_on_reload() {
    // The full cache subsystem through the facade: a sharded one-entry
    // cache with persistence produces serial-identical sweeps, honours the
    // per-shard cap, and a second engine on the same directory (a simulated
    // new process) performs zero min-cost-flow solves.
    use marqsim::engine::CacheConfig;

    let dir = std::env::temp_dir().join(format!("marqsim-it-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ham = benchmark_hamiltonian();
    let config = SweepConfig {
        time: 0.5,
        epsilons: vec![0.1, 0.05],
        repeats: 2,
        base_seed: 3,
        evaluate_fidelity: false,
    };
    let strategy = TransitionStrategy::marqsim_gc();
    let serial = run_sweep(&ham, &strategy, &config).unwrap();

    let make_engine = || {
        Engine::new(
            EngineConfig::default().with_threads(3).with_cache_config(
                CacheConfig::default()
                    .with_shards(2)
                    .with_cap(1)
                    .with_persist_dir(&dir),
            ),
        )
    };
    let first = make_engine();
    let swept = first.run_sweep(&ham, &strategy, &config).unwrap();
    for (p, s) in swept.points.iter().zip(&serial.points) {
        assert_eq!(p.seed, s.seed);
        assert_eq!(p.stats, s.stats);
    }
    assert!(first.cache().graph_shard_lens().iter().all(|&len| len <= 1));
    let stats = first.cache().stats();
    assert_eq!(stats.flow_solves, 1);
    assert_eq!(stats.disk_writes, 1);

    let second = make_engine();
    let reloaded = second.run_sweep(&ham, &strategy, &config).unwrap();
    for (p, s) in reloaded.points.iter().zip(&serial.points) {
        assert_eq!(p.stats, s.stats, "disk-reloaded sweep is serial-identical");
    }
    let stats = second.cache().stats();
    assert_eq!(stats.flow_solves, 0, "P_gc served from MARQSIM_CACHE_DIR");
    assert_eq!(stats.disk_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
