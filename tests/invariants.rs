//! Property-based tests of the core invariants: Theorem 4.1 conditions,
//! Theorem 5.1/5.2 stationarity, Proposition 5.1 cost accounting, and
//! Pauli-algebra laws — over randomly generated Hamiltonians.
//!
//! The original version of this file used `proptest`; the offline build
//! environment has no registry access, so the properties are exercised with
//! seeded random generation instead — every case is reproducible from the
//! fixed seeds below, and each property is checked over the same number of
//! cases (24) the proptest configuration used.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use marqsim::core::gate_cancel::{cnot_cost_matrix, gate_cancellation_matrix_with_cost};
use marqsim::core::qdrift::qdrift_matrix;
use marqsim::core::transition::build_transition_matrix;
use marqsim::core::{metrics, TransitionStrategy};
use marqsim::markov::combine::combine;
use marqsim::pauli::algebra::cnot_count_between;
use marqsim::pauli::{Hamiltonian, PauliOp, PauliString, Term};

const CASES: usize = 24;

/// Generates a random Pauli string on `n` qubits with at least one
/// non-identity operator.
fn pauli_string(rng: &mut StdRng, n: usize) -> PauliString {
    loop {
        let ops: Vec<PauliOp> = (0..n)
            .map(|_| match rng.gen_range(0..4) {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        let s = PauliString::from_ops(ops);
        if !s.is_identity() {
            return s;
        }
    }
}

/// Generates a small random Hamiltonian (4 qubits, 3–8 distinct terms,
/// coefficients in (0.05, 1.0]).
fn hamiltonian(rng: &mut StdRng) -> Hamiltonian {
    loop {
        let num_terms = rng.gen_range(3..8);
        let terms: Vec<Term> = (0..num_terms)
            .map(|_| {
                let c = 0.05 + rng.gen::<f64>() * 0.95;
                Term::new(c, pauli_string(rng, 4))
            })
            .collect();
        if let Some(h) = Hamiltonian::new(terms).ok().filter(|h| h.num_terms() >= 3) {
            return h;
        }
    }
}

#[test]
fn qdrift_matrix_always_satisfies_theorem_4_1() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let ham = hamiltonian(&mut rng);
        let p = qdrift_matrix(&ham);
        let pi = ham.stationary_distribution();
        assert!(p.is_strongly_connected());
        assert!(p.preserves_distribution(&pi, 1e-9));
    }
}

#[test]
fn gc_matrix_preserves_pi_and_its_cost_is_the_expected_cnot_count() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let ham = hamiltonian(&mut rng).split_if_dominant();
        let pi = ham.stationary_distribution();
        let (p, cost) = gate_cancellation_matrix_with_cost(&ham).unwrap();
        assert!(p.preserves_distribution(&pi, 1e-7));
        // Proposition 5.1.
        let costs = cnot_cost_matrix(&ham);
        let mut expectation = 0.0;
        for i in 0..ham.num_terms() {
            for j in 0..ham.num_terms() {
                expectation += pi[i] * p.prob(i, j) * costs[i][j];
            }
        }
        assert!((expectation - cost).abs() < 1e-6);
    }
}

#[test]
fn convex_combinations_preserve_stationarity() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let ham = hamiltonian(&mut rng).split_if_dominant();
        let theta: f64 = rng.gen();
        let pi = ham.stationary_distribution();
        let p_qd = qdrift_matrix(&ham);
        let (p_gc, _) = gate_cancellation_matrix_with_cost(&ham).unwrap();
        let blended = combine(&[p_qd, p_gc], &[theta, 1.0 - theta]).unwrap();
        assert!(blended.preserves_distribution(&pi, 1e-7));
        if theta > 1e-6 {
            assert!(blended.is_strongly_connected());
        }
    }
}

#[test]
fn marqsim_gc_strategy_always_builds_a_valid_chain() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let ham = hamiltonian(&mut rng).split_if_dominant();
        let p = build_transition_matrix(&ham, &TransitionStrategy::marqsim_gc()).unwrap();
        assert!(p.is_strongly_connected());
    }
}

#[test]
fn cnot_count_between_is_symmetric_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let a = pauli_string(&mut rng, 5);
        let b = pauli_string(&mut rng, 5);
        let ab = cnot_count_between(&a, &b);
        let ba = cnot_count_between(&b, &a);
        assert_eq!(ab, ba);
        assert!(ab <= (a.weight() - 1) + (b.weight() - 1));
        assert_eq!(cnot_count_between(&a, &a), 0);
    }
}

#[test]
fn pauli_products_preserve_commutation_structure() {
    let mut rng = StdRng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let a = pauli_string(&mut rng, 4);
        let b = pauli_string(&mut rng, 4);
        // (phase, c) = a*b implies b*a = conj-phase-consistent result: strings
        // commute iff their products in both orders have equal phases.
        let (phase_ab, c_ab) = a.mul(&b);
        let (phase_ba, c_ba) = b.mul(&a);
        assert_eq!(c_ab, c_ba);
        if a.commutes_with(&b) {
            assert!(phase_ab.approx_eq(phase_ba, 1e-12));
        } else {
            assert!(phase_ab.approx_eq(-phase_ba, 1e-12));
        }
    }
}

#[test]
fn sequence_stats_never_exceed_the_unmerged_upper_bound() {
    let mut rng = StdRng::seed_from_u64(0xA7);
    for _ in 0..CASES {
        let ham = hamiltonian(&mut rng);
        let len = rng.gen_range(1..40);
        let sequence: Vec<usize> = (0..len)
            .map(|_| rng.gen_range(0..ham.num_terms()))
            .collect();
        let stats = metrics::sequence_stats(&ham, &sequence);
        let upper: usize = sequence
            .iter()
            .map(|&i| 2 * ham.term(i).string.weight().saturating_sub(1))
            .sum();
        assert!(stats.cnot <= upper);
        assert!(stats.rz <= sequence.len());
        assert_eq!(stats.total, stats.cnot + stats.single_qubit);
    }
}
