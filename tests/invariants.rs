//! Property-based tests of the core invariants: Theorem 4.1 conditions,
//! Theorem 5.1/5.2 stationarity, Proposition 5.1 cost accounting,
//! Pauli-algebra laws, row-stochasticity of every transition-matrix
//! builder, and min-cost-flow conservation/optimality — over randomly
//! generated inputs.
//!
//! The original version of this file used `proptest`; the offline build
//! environment has no registry access, so the properties now run on the
//! vendored `quickprop` stand-in: seeded generation with a replayable
//! per-case seed (a failure report names the exact `QUICKPROP_REPLAY`
//! value that reproduces it) over the same default case count (24) the
//! proptest configuration used.

use quickprop::{check, Config, Gen};
use rand::Rng;

use marqsim::core::gate_cancel::{cnot_cost_matrix, gate_cancellation_matrix_with_cost};
use marqsim::core::qdrift::qdrift_matrix;
use marqsim::core::transition::build_transition_matrix;
use marqsim::core::{metrics, TransitionStrategy};
use marqsim::flow::bipartite;
use marqsim::flow::SolverKind;
use marqsim::markov::combine::combine;
use marqsim::pauli::algebra::cnot_count_between;
use marqsim::pauli::{Hamiltonian, PauliOp, PauliString, Term};

/// Generates a random Pauli string on `n` qubits with at least one
/// non-identity operator.
fn pauli_string(g: &mut Gen, n: usize) -> PauliString {
    loop {
        let ops: Vec<PauliOp> = (0..n)
            .map(|_| match g.usize_in(0..4) {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        let s = PauliString::from_ops(ops);
        if !s.is_identity() {
            return s;
        }
    }
}

/// Generates a small random Hamiltonian (4 qubits, 3–8 distinct terms,
/// coefficients in (0.05, 1.0]).
fn hamiltonian(g: &mut Gen) -> Hamiltonian {
    loop {
        let num_terms = g.usize_in(3..8);
        let terms: Vec<Term> = (0..num_terms)
            .map(|_| {
                let c = 0.05 + g.unit_f64() * 0.95;
                Term::new(c, pauli_string(g, 4))
            })
            .collect();
        if let Some(h) = Hamiltonian::new(terms).ok().filter(|h| h.num_terms() >= 3) {
            return h;
        }
    }
}

fn ok_if(condition: bool, reason: impl FnOnce() -> String) -> Result<(), String> {
    if condition {
        Ok(())
    } else {
        Err(reason())
    }
}

#[test]
fn qdrift_matrix_always_satisfies_theorem_4_1() {
    check(
        "qdrift theorem 4.1",
        Config::default().with_seed(0xA1),
        hamiltonian,
        |ham| {
            let p = qdrift_matrix(ham);
            let pi = ham.stationary_distribution();
            ok_if(p.is_strongly_connected(), || {
                "qdrift matrix not strongly connected".to_string()
            })?;
            ok_if(p.preserves_distribution(&pi, 1e-9), || {
                "qdrift matrix does not preserve pi".to_string()
            })
        },
    );
}

#[test]
fn gc_matrix_preserves_pi_and_its_cost_is_the_expected_cnot_count() {
    check(
        "gc cost accounting (prop. 5.1)",
        Config::default().with_seed(0xA2),
        |g| hamiltonian(g).split_if_dominant(),
        |ham| {
            let pi = ham.stationary_distribution();
            let (p, cost) = gate_cancellation_matrix_with_cost(ham).map_err(|e| e.to_string())?;
            ok_if(p.preserves_distribution(&pi, 1e-7), || {
                "P_gc does not preserve pi".to_string()
            })?;
            // Proposition 5.1.
            let costs = cnot_cost_matrix(ham);
            let mut expectation = 0.0;
            for i in 0..ham.num_terms() {
                for j in 0..ham.num_terms() {
                    expectation += pi[i] * p.prob(i, j) * costs[i][j];
                }
            }
            ok_if((expectation - cost).abs() < 1e-6, || {
                format!("expected CNOT cost {expectation} vs reported {cost}")
            })
        },
    );
}

#[test]
fn convex_combinations_preserve_stationarity() {
    check(
        "convex combination stationarity (thm. 5.2)",
        Config::default().with_seed(0xA3),
        |g| (hamiltonian(g).split_if_dominant(), g.unit_f64()),
        |(ham, theta)| {
            let pi = ham.stationary_distribution();
            let p_qd = qdrift_matrix(ham);
            let (p_gc, _) = gate_cancellation_matrix_with_cost(ham).map_err(|e| e.to_string())?;
            let blended =
                combine(&[p_qd, p_gc], &[*theta, 1.0 - theta]).map_err(|e| e.to_string())?;
            ok_if(blended.preserves_distribution(&pi, 1e-7), || {
                format!("theta={theta}: blend does not preserve pi")
            })?;
            if *theta > 1e-6 {
                ok_if(blended.is_strongly_connected(), || {
                    format!("theta={theta}: blend lost strong connectivity")
                })?;
            }
            Ok(())
        },
    );
}

#[test]
fn every_strategy_builds_a_row_stochastic_valid_chain() {
    // Row-stochasticity of `build_transition_matrix` for every strategy
    // variant: rows are probability distributions (non-negative, summing to
    // one) and the Theorem 4.1 conditions hold.
    check(
        "build_transition_matrix row-stochasticity",
        Config::default().with_seed(0xA4),
        |g| {
            let ham = hamiltonian(g).split_if_dominant();
            let strategy = match g.usize_in(0..4) {
                0 => TransitionStrategy::QDrift,
                1 => TransitionStrategy::GateCancellation {
                    qdrift_weight: 0.2 + 0.6 * g.unit_f64(),
                },
                2 => TransitionStrategy::marqsim_gc_rp(),
                _ => {
                    let qd = 0.2 + 0.4 * g.unit_f64();
                    let gc = (1.0 - qd) * g.unit_f64();
                    TransitionStrategy::Combined {
                        qdrift_weight: qd,
                        gc_weight: gc,
                        rp_weight: 1.0 - qd - gc,
                        perturbation: Default::default(),
                    }
                }
            };
            (ham, strategy)
        },
        |(ham, strategy)| {
            let p = build_transition_matrix(ham, strategy).map_err(|e| e.to_string())?;
            let n = p.num_states();
            ok_if(n == ham.num_terms(), || {
                format!("{n} states vs {} terms", ham.num_terms())
            })?;
            for i in 0..n {
                let mut sum = 0.0;
                for j in 0..n {
                    let x = p.prob(i, j);
                    ok_if(x >= -1e-12 && x.is_finite(), || {
                        format!("{strategy:?}: p[{i}][{j}] = {x} is not a probability")
                    })?;
                    sum += x;
                }
                ok_if((sum - 1.0).abs() < 1e-9, || {
                    format!("{strategy:?}: row {i} sums to {sum}")
                })?;
            }
            ok_if(p.is_strongly_connected(), || {
                format!("{strategy:?}: not strongly connected")
            })
        },
    );
}

#[test]
fn cnot_count_between_is_symmetric_and_bounded() {
    check(
        "cnot_count_between symmetry",
        Config::default().with_seed(0xA5),
        |g| (pauli_string(g, 5), pauli_string(g, 5)),
        |(a, b)| {
            let ab = cnot_count_between(a, b);
            let ba = cnot_count_between(b, a);
            ok_if(ab == ba, || format!("{ab} != {ba}"))?;
            ok_if(ab <= (a.weight() - 1) + (b.weight() - 1), || {
                format!("count {ab} above weight bound")
            })?;
            ok_if(cnot_count_between(a, a) == 0, || {
                "self-transition should cancel all CNOTs".to_string()
            })
        },
    );
}

#[test]
fn pauli_products_preserve_commutation_structure() {
    check(
        "pauli product phases",
        Config::default().with_seed(0xA6),
        |g| (pauli_string(g, 4), pauli_string(g, 4)),
        |(a, b)| {
            // Strings commute iff their products in both orders have equal
            // phases (anticommute: opposite phases).
            let (phase_ab, c_ab) = a.mul(b);
            let (phase_ba, c_ba) = b.mul(a);
            ok_if(c_ab == c_ba, || "product strings differ".to_string())?;
            if a.commutes_with(b) {
                ok_if(phase_ab.approx_eq(phase_ba, 1e-12), || {
                    "commuting pair with unequal phases".to_string()
                })
            } else {
                ok_if(phase_ab.approx_eq(-phase_ba, 1e-12), || {
                    "anticommuting pair without opposite phases".to_string()
                })
            }
        },
    );
}

#[test]
fn sequence_stats_never_exceed_the_unmerged_upper_bound() {
    check(
        "sequence stats upper bound",
        Config::default().with_seed(0xA7),
        |g| {
            let ham = hamiltonian(g);
            let len = g.usize_in(1..40);
            let sequence: Vec<usize> = (0..len).map(|_| g.usize_in(0..ham.num_terms())).collect();
            (ham, sequence)
        },
        |(ham, sequence)| {
            let stats = metrics::sequence_stats(ham, sequence);
            let upper: usize = sequence
                .iter()
                .map(|&i| 2 * ham.term(i).string.weight().saturating_sub(1))
                .sum();
            ok_if(stats.cnot <= upper, || {
                format!("cnot {} above bound {upper}", stats.cnot)
            })?;
            ok_if(stats.rz <= sequence.len(), || "rz above len".to_string())?;
            ok_if(stats.total == stats.cnot + stats.single_qubit, || {
                "total != cnot + single_qubit".to_string()
            })
        },
    );
}

// ---------------------------------------------------------------------------
// Min-cost-flow properties (cross-checked against brute force)
// ---------------------------------------------------------------------------

/// A random transportation instance: a normalized marginal over `n` states
/// and an `n × n` non-negative cost matrix. Non-uniform marginals are
/// conditioned on `max π_i < 1/2` — with the diagonal excluded, a state
/// holding more than half the mass makes the problem infeasible (each row
/// must route its mass through the *other* columns), which is exactly why
/// the compiler splits dominant terms before building `P_gc`.
fn transport_instance(g: &mut Gen, n: usize, uniform: bool) -> (Vec<f64>, Vec<Vec<f64>>) {
    let marginal = if uniform {
        vec![1.0 / n as f64; n]
    } else {
        loop {
            let raw: Vec<f64> = (0..n).map(|_| 0.05 + g.unit_f64()).collect();
            let total: f64 = raw.iter().sum();
            let normalized: Vec<f64> = raw.into_iter().map(|x| x / total).collect();
            if normalized.iter().all(|&p| p < 0.5) {
                break normalized;
            }
        }
    };
    let costs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| g.rng().gen_range(0..10) as f64).collect())
        .collect();
    (marginal, costs)
}

#[test]
fn bipartite_flow_conserves_the_marginals() {
    check(
        "bipartite marginal conservation",
        Config::default().with_seed(0xB1),
        |g| {
            let n = g.usize_in(3..8);
            transport_instance(g, n, false)
        },
        |(marginal, costs)| {
            let n = marginal.len();
            let sol =
                bipartite::solve(marginal, costs, |i, j| i != j).map_err(|e| e.to_string())?;
            for i in 0..n {
                let row: f64 = sol.flows[i].iter().sum();
                let col: f64 = (0..n).map(|k| sol.flows[k][i]).sum();
                ok_if((row - marginal[i]).abs() < 1e-7, || {
                    format!("row {i}: {row} vs pi {}", marginal[i])
                })?;
                ok_if((col - marginal[i]).abs() < 1e-7, || {
                    format!("col {i}: {col} vs pi {}", marginal[i])
                })?;
                ok_if(sol.flows[i][i].abs() < 1e-12, || {
                    format!("diagonal flow at {i}")
                })?;
                for j in 0..n {
                    ok_if(sol.flows[i][j] >= -1e-12, || {
                        format!("negative flow at ({i},{j})")
                    })?;
                }
            }
            // The reported cost is the flow-weighted cost sum.
            let recomputed: f64 = (0..n)
                .flat_map(|i| (0..n).map(move |j| (i, j)))
                .map(|(i, j)| sol.flows[i][j] * costs[i][j])
                .sum();
            ok_if((recomputed - sol.cost).abs() < 1e-7, || {
                format!("cost {} vs recomputed {recomputed}", sol.cost)
            })
        },
    );
}

/// Enumerates permutations of `0..n`, invoking `visit` on each.
fn permutations(n: usize, visit: &mut impl FnMut(&[usize])) {
    fn recurse(current: &mut Vec<usize>, used: &mut [bool], visit: &mut impl FnMut(&[usize])) {
        let n = used.len();
        if current.len() == n {
            visit(current);
            return;
        }
        for candidate in 0..n {
            if !used[candidate] {
                used[candidate] = true;
                current.push(candidate);
                recurse(current, used, visit);
                current.pop();
                used[candidate] = false;
            }
        }
    }
    recurse(&mut Vec::with_capacity(n), &mut vec![false; n], visit);
}

#[test]
fn bipartite_flow_is_optimal_against_brute_force_matching() {
    // With a uniform marginal the transportation polytope (diagonal
    // excluded) is the Birkhoff polytope of K_n minus a perfect matching:
    // its vertices are derangement permutation matrices scaled by 1/n, so
    // the LP optimum equals the cheapest derangement's mean cost. The
    // successive-shortest-path solver must match that brute force exactly.
    check(
        "bipartite optimality vs derangement brute force",
        Config::default().with_seed(0xB2),
        |g| {
            let n = g.usize_in(2..7);
            transport_instance(g, n, true)
        },
        |(marginal, costs)| {
            let n = marginal.len();
            let sol =
                bipartite::solve(marginal, costs, |i, j| i != j).map_err(|e| e.to_string())?;
            let mut best = f64::INFINITY;
            permutations(n, &mut |perm| {
                if perm.iter().enumerate().all(|(i, &j)| i != j) {
                    let cost: f64 = perm
                        .iter()
                        .enumerate()
                        .map(|(i, &j)| costs[i][j] / n as f64)
                        .sum();
                    best = best.min(cost);
                }
            });
            ok_if(best.is_finite(), || "no derangement found".to_string())?;
            ok_if((sol.cost - best).abs() < 1e-7, || {
                format!(
                    "solver cost {} vs brute-force derangement optimum {best}",
                    sol.cost
                )
            })
        },
    );
}

#[test]
fn every_backend_solves_the_transportation_problem_to_the_same_optimum() {
    // The cross-backend headline guarantee: on random bipartite instances
    // every registered solver reports the same optimal cost (to 1e-9) and a
    // flow that conserves the marginals. Optimal *flows* may differ when
    // the optimum is degenerate; the objective may not.
    check(
        "cross-backend cost equality + marginal conservation",
        Config::default().with_seed(0xB4),
        |g| {
            let n = g.usize_in(3..8);
            transport_instance(g, n, false)
        },
        |(marginal, costs)| {
            let n = marginal.len();
            let mut optima: Vec<(SolverKind, f64)> = Vec::new();
            for kind in SolverKind::ALL {
                let sol = bipartite::solve_with(kind, marginal, costs, |i, j| i != j)
                    .map_err(|e| format!("{kind}: {e}"))?;
                for i in 0..n {
                    let row: f64 = sol.flows[i].iter().sum();
                    let col: f64 = (0..n).map(|k| sol.flows[k][i]).sum();
                    ok_if((row - marginal[i]).abs() < 1e-7, || {
                        format!("{kind}: row {i}: {row} vs pi {}", marginal[i])
                    })?;
                    ok_if((col - marginal[i]).abs() < 1e-7, || {
                        format!("{kind}: col {i}: {col} vs pi {}", marginal[i])
                    })?;
                }
                optima.push((kind, sol.cost));
            }
            let (reference_kind, reference) = optima[0];
            for &(kind, cost) in &optima[1..] {
                ok_if((cost - reference).abs() < 1e-9, || {
                    format!("{reference_kind} found {reference} but {kind} found {cost}")
                })?;
            }
            Ok(())
        },
    );
}

#[test]
fn network_simplex_is_optimal_against_brute_force_matching() {
    // Same brute-force cross-check the default backend gets: with a uniform
    // marginal the LP optimum is the cheapest derangement's mean cost.
    check(
        "network-simplex optimality vs derangement brute force",
        Config::default().with_seed(0xB5),
        |g| {
            let n = g.usize_in(2..7);
            transport_instance(g, n, true)
        },
        |(marginal, costs)| {
            let n = marginal.len();
            let sol =
                bipartite::solve_with(SolverKind::NetworkSimplex, marginal, costs, |i, j| i != j)
                    .map_err(|e| e.to_string())?;
            let mut best = f64::INFINITY;
            permutations(n, &mut |perm| {
                if perm.iter().enumerate().all(|(i, &j)| i != j) {
                    let cost: f64 = perm
                        .iter()
                        .enumerate()
                        .map(|(i, &j)| costs[i][j] / n as f64)
                        .sum();
                    best = best.min(cost);
                }
            });
            ok_if(best.is_finite(), || "no derangement found".to_string())?;
            ok_if((sol.cost - best).abs() < 1e-7, || {
                format!(
                    "simplex cost {} vs brute-force derangement optimum {best}",
                    sol.cost
                )
            })
        },
    );
}

#[test]
fn gc_transition_matrix_agrees_with_the_flow_it_came_from() {
    // End-to-end: the P_gc rows are the bipartite flow rows divided by pi,
    // so rebuilding the expected cost from the matrix must reproduce the
    // flow cost (this is how Proposition 5.1 connects §5.1.2 to §5.1.1).
    check(
        "P_gc rows are normalized flow rows",
        Config::default().with_seed(0xB3).with_cases(12),
        |g| hamiltonian(g).split_if_dominant(),
        |ham| {
            let pi = ham.stationary_distribution();
            let costs = cnot_cost_matrix(ham);
            let flow_sol =
                bipartite::solve(&pi, &costs, |i, j| i != j).map_err(|e| e.to_string())?;
            let (_, cost) = gate_cancellation_matrix_with_cost(ham).map_err(|e| e.to_string())?;
            ok_if((flow_sol.cost - cost).abs() < 1e-6, || {
                format!("flow cost {} vs matrix cost {cost}", flow_sol.cost)
            })
        },
    );
}
