//! Property-based tests of the core invariants: Theorem 4.1 conditions,
//! Theorem 5.1/5.2 stationarity, Proposition 5.1 cost accounting, and
//! Pauli-algebra laws — over randomly generated Hamiltonians.

use proptest::prelude::*;

use marqsim::core::gate_cancel::{cnot_cost_matrix, gate_cancellation_matrix_with_cost};
use marqsim::core::qdrift::qdrift_matrix;
use marqsim::core::transition::build_transition_matrix;
use marqsim::core::{metrics, TransitionStrategy};
use marqsim::markov::combine::combine;
use marqsim::pauli::algebra::cnot_count_between;
use marqsim::pauli::{Hamiltonian, PauliOp, PauliString, Term};

/// Strategy generating a random Pauli string on `n` qubits with at least one
/// non-identity operator.
fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0u8..4, n).prop_filter_map("identity string", |codes| {
        let ops: Vec<PauliOp> = codes
            .iter()
            .map(|c| match c {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        let s = PauliString::from_ops(ops);
        if s.is_identity() {
            None
        } else {
            Some(s)
        }
    })
}

/// Strategy generating a small random Hamiltonian (4 qubits, 3–8 distinct
/// terms, coefficients in (0.05, 1.0]).
fn hamiltonian() -> impl Strategy<Value = Hamiltonian> {
    proptest::collection::vec((pauli_string(4), 0.05f64..1.0), 3..8).prop_filter_map(
        "degenerate hamiltonian",
        |pairs| {
            let terms: Vec<Term> = pairs
                .into_iter()
                .map(|(s, c)| Term::new(c, s))
                .collect();
            Hamiltonian::new(terms).ok().filter(|h| h.num_terms() >= 3)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qdrift_matrix_always_satisfies_theorem_4_1(ham in hamiltonian()) {
        let p = qdrift_matrix(&ham);
        let pi = ham.stationary_distribution();
        prop_assert!(p.is_strongly_connected());
        prop_assert!(p.preserves_distribution(&pi, 1e-9));
    }

    #[test]
    fn gc_matrix_preserves_pi_and_its_cost_is_the_expected_cnot_count(ham in hamiltonian()) {
        let ham = if ham.has_dominant_term() { ham.split_dominant_terms() } else { ham };
        let pi = ham.stationary_distribution();
        let (p, cost) = gate_cancellation_matrix_with_cost(&ham).unwrap();
        prop_assert!(p.preserves_distribution(&pi, 1e-7));
        // Proposition 5.1.
        let costs = cnot_cost_matrix(&ham);
        let mut expectation = 0.0;
        for i in 0..ham.num_terms() {
            for j in 0..ham.num_terms() {
                expectation += pi[i] * p.prob(i, j) * costs[i][j];
            }
        }
        prop_assert!((expectation - cost).abs() < 1e-6);
    }

    #[test]
    fn convex_combinations_preserve_stationarity(ham in hamiltonian(), theta in 0.0f64..1.0) {
        let ham = if ham.has_dominant_term() { ham.split_dominant_terms() } else { ham };
        let pi = ham.stationary_distribution();
        let p_qd = qdrift_matrix(&ham);
        let (p_gc, _) = gate_cancellation_matrix_with_cost(&ham).unwrap();
        let blended = combine(&[p_qd, p_gc], &[theta, 1.0 - theta]).unwrap();
        prop_assert!(blended.preserves_distribution(&pi, 1e-7));
        if theta > 1e-6 {
            prop_assert!(blended.is_strongly_connected());
        }
    }

    #[test]
    fn marqsim_gc_strategy_always_builds_a_valid_chain(ham in hamiltonian()) {
        let p = build_transition_matrix(
            &if ham.has_dominant_term() { ham.split_dominant_terms() } else { ham.clone() },
            &TransitionStrategy::marqsim_gc(),
        )
        .unwrap();
        prop_assert!(p.is_strongly_connected());
    }

    #[test]
    fn cnot_count_between_is_symmetric_and_bounded(a in pauli_string(5), b in pauli_string(5)) {
        let ab = cnot_count_between(&a, &b);
        let ba = cnot_count_between(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= (a.weight() - 1) + (b.weight() - 1));
        prop_assert_eq!(cnot_count_between(&a, &a), 0);
    }

    #[test]
    fn pauli_products_preserve_commutation_structure(a in pauli_string(4), b in pauli_string(4)) {
        // (phase, c) = a*b implies b*a = conj-phase-consistent result: strings
        // commute iff their products in both orders have equal phases.
        let (phase_ab, c_ab) = a.mul(&b);
        let (phase_ba, c_ba) = b.mul(&a);
        prop_assert_eq!(c_ab, c_ba);
        if a.commutes_with(&b) {
            prop_assert!(phase_ab.approx_eq(phase_ba, 1e-12));
        } else {
            prop_assert!(phase_ab.approx_eq(-phase_ba, 1e-12));
        }
    }

    #[test]
    fn sequence_stats_never_exceed_the_unmerged_upper_bound(
        ham in hamiltonian(),
        seq in proptest::collection::vec(0usize..3, 1..40),
    ) {
        let sequence: Vec<usize> = seq.into_iter().map(|i| i % ham.num_terms()).collect();
        let stats = metrics::sequence_stats(&ham, &sequence);
        let upper: usize = sequence
            .iter()
            .map(|&i| 2 * ham.term(i).string.weight().saturating_sub(1))
            .sum();
        prop_assert!(stats.cnot <= upper);
        prop_assert!(stats.rz <= sequence.len());
        prop_assert_eq!(stats.total, stats.cnot + stats.single_qubit);
    }
}
