//! # quickprop — an offline property-based-testing stand-in
//!
//! The workspace's invariants suite was originally written with
//! `proptest`; the build environment has no registry access, so this crate
//! provides the small slice of property-based testing the suite needs,
//! built on the vendored `rand`:
//!
//! * [`Gen`] — a seeded generator handle with uniform primitives
//!   (`u64`, ranges, unit floats, choices) from which test-specific
//!   generators are composed as plain functions.
//! * [`Config`] — case count and base seed. `QUICKPROP_CASES` and
//!   `QUICKPROP_SEED` override both without recompiling (the env wins
//!   over a [`Config::with_seed`] baked into the test, so one export
//!   re-seeds a whole suite for a soak run).
//! * [`check`] — the runner: generates `cases` values, asserts the
//!   property on each, and on failure panics with the **case seed**.
//!   `QUICKPROP_REPLAY=<case seed>` reruns exactly that generated input —
//!   `check` then runs the single case whose generator is seeded with the
//!   given value, regardless of case count or base seed.
//!
//! There is no shrinking: generators here build small values by
//! construction (the properties run on 3–8-term Hamiltonians and ≤ 7-state
//! flow networks), where a failing case is already readable. What is kept
//! from proptest is the part that matters for regression hunting —
//! deterministic replay of any failure.
//!
//! ```
//! use quickprop::{check, Config};
//!
//! check(
//!     "addition commutes",
//!     Config::default(),
//!     |g| (g.u64_in(0..=1000), g.u64_in(0..=1000)),
//!     |&(a, b)| {
//!         if a + b == b + a {
//!             Ok(())
//!         } else {
//!             Err(format!("{a} + {b} != {b} + {a}"))
//!         }
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 — derives statistically independent per-case seeds from the
/// base seed, so case `i` is reproducible without replaying cases `0..i`.
fn split_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded generator handle passed to value generators.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// A generator for one case, seeded with that case's replay seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// A uniform `u64` in an inclusive range.
    pub fn u64_in(&mut self, range: RangeInclusive<u64>) -> u64 {
        self.rng.gen_range(range)
    }

    /// A uniform `usize` in a half-open range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.rng.gen_range(range)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from an empty slice");
        &items[self.rng.gen_range(0..items.len())]
    }

    /// A vector with a length drawn from `len` and elements from `f`.
    pub fn vec_of<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// Direct access to the underlying RNG for generators that need the
    /// full `rand` API.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases (default 24, the count the original
    /// proptest configuration used; override with `QUICKPROP_CASES`).
    pub cases: usize,
    /// Base seed (default `0x5EED`; tests usually pin their own with
    /// [`with_seed`](Self::with_seed), and `QUICKPROP_SEED` overrides
    /// both).
    pub seed: u64,
    /// Whether `seed` came from `QUICKPROP_SEED` — an explicit env seed
    /// wins over the test's baked-in `with_seed`, otherwise the env var
    /// would be silently ignored by every test that pins a seed.
    seed_from_env: bool,
    /// `QUICKPROP_REPLAY`: run exactly one case, generated from this
    /// literal case seed (the value a failure report names).
    replay: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("QUICKPROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(24);
        let env_seed: Option<u64> = std::env::var("QUICKPROP_SEED")
            .ok()
            .and_then(|v| v.parse().ok());
        let replay = std::env::var("QUICKPROP_REPLAY")
            .ok()
            .and_then(|v| v.parse().ok());
        Config {
            cases,
            seed: env_seed.unwrap_or(0x5EED),
            seed_from_env: env_seed.is_some(),
            replay,
        }
    }
}

impl Config {
    /// Overrides the case count.
    #[must_use]
    pub fn with_cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the test's base seed — unless `QUICKPROP_SEED` is set, which
    /// takes precedence (so exporting it re-seeds suites whose tests pin
    /// their own defaults).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        if !self.seed_from_env {
            self.seed = seed;
        }
        self
    }
}

/// Checks a property over generated inputs.
///
/// Generates `config.cases` values with `generate` and applies `property`
/// to each; `Err(reason)` (or a panic inside `property`) fails the run.
/// When `QUICKPROP_REPLAY=<case seed>` is set, exactly one case is run —
/// the one generated from that literal seed — reproducing a reported
/// failure independent of base seed and case count.
///
/// # Panics
///
/// Panics on the first failing case with the property name, the case
/// index, the **case seed** (`QUICKPROP_REPLAY=<seed>` reruns it), the
/// generated value's `Debug` form, and the reason.
pub fn check<T: Debug>(
    name: &str,
    config: Config,
    generate: impl Fn(&mut Gen) -> T,
    property: impl Fn(&T) -> Result<(), String>,
) {
    let run_case = |case: usize, total: usize, case_seed: u64| {
        let mut gen = Gen::new(case_seed);
        let value = generate(&mut gen);
        if let Err(reason) = property(&value) {
            panic!(
                "property '{name}' failed at case {case}/{total} (replay with \
                 QUICKPROP_REPLAY={case_seed})\n\
                 value: {value:?}\n\
                 reason: {reason}"
            );
        }
    };
    if let Some(case_seed) = config.replay {
        run_case(0, 1, case_seed);
        return;
    }
    for case in 0..config.cases {
        run_case(case, config.cases, split_seed(config.seed, case as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_properties_run_all_cases() {
        let seen = std::cell::Cell::new(0usize);
        check(
            "counting",
            Config::default().with_cases(17),
            |g| g.u64_in(0..=10),
            |&v| {
                seen.set(seen.get() + 1);
                if v <= 10 {
                    Ok(())
                } else {
                    Err("out of range".to_string())
                }
            },
        );
        assert_eq!(seen.get(), 17);
    }

    #[test]
    fn cases_are_reproducible_from_their_seed() {
        let seed = split_seed(0x5EED, 7);
        let a = Gen::new(seed).u64();
        let b = Gen::new(seed).u64();
        assert_eq!(a, b);
        // The per-case seeds differ from one another.
        assert_ne!(split_seed(0x5EED, 0), split_seed(0x5EED, 1));
    }

    #[test]
    #[should_panic(expected = "replay with QUICKPROP_REPLAY=")]
    fn failures_report_the_replay_seed() {
        check(
            "always fails",
            Config::default().with_cases(3),
            |g| g.u64(),
            |_| Err("intentional".to_string()),
        );
    }

    #[test]
    fn replay_reruns_exactly_the_named_case() {
        // The seed a failure report would name for case 7.
        let failing_seed = split_seed(0x5EED, 7);
        let expected = Gen::new(failing_seed).u64();
        // Simulate QUICKPROP_REPLAY=<failing_seed> (env vars are
        // process-global, so the field is set directly here).
        let mut config = Config::default().with_cases(24);
        config.replay = Some(failing_seed);
        let seen = std::cell::Cell::new(None);
        check(
            "replay",
            config,
            |g| g.u64(),
            |&v| {
                assert!(seen.get().is_none(), "replay must run exactly one case");
                seen.set(Some(v));
                Ok(())
            },
        );
        assert_eq!(seen.get(), Some(expected), "replay regenerates the input");
    }

    #[test]
    fn baked_in_seeds_yield_to_the_environment() {
        // Without QUICKPROP_SEED in the env, with_seed applies...
        let config = Config {
            seed_from_env: false,
            ..Config::default()
        };
        assert_eq!(config.with_seed(42).seed, 42);
        // ...but an env-provided seed wins over the baked-in one.
        let config = Config {
            seed: 7,
            seed_from_env: true,
            ..Config::default()
        };
        assert_eq!(config.with_seed(42).seed, 7);
    }

    #[test]
    fn generator_primitives_respect_their_ranges() {
        let mut g = Gen::new(42);
        for _ in 0..1000 {
            assert!(g.usize_in(3..8) >= 3);
            assert!(g.usize_in(3..8) < 8);
            let x = g.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let u = g.unit_f64();
            assert!((0.0..1.0).contains(&u));
            assert!(*g.choose(&[1, 2, 3]) <= 3);
            let v = g.vec_of(0..5, |g| g.bool(0.5));
            assert!(v.len() < 5);
        }
    }
}
