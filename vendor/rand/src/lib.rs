//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so this
//! crate re-implements exactly the subset of the `rand 0.8` API that the
//! MarQSim crates use:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()` and `gen_range(a..b)`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`],
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — a small, well-studied PRNG with excellent statistical
//! quality for simulation workloads. It is **not** the ChaCha12 generator of
//! the real `rand` crate, so seeded streams differ from upstream `rand`;
//! every consumer in this workspace only relies on *reproducibility* (same
//! seed, same stream, on every platform and in every run), which this
//! implementation guarantees.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] ("standard"
/// distribution in `rand` terms).
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, bound)` without modulo bias (Lemire's
/// widening-multiply method: accept iff the low word clears the constant
/// threshold `(2^64 - bound) mod bound`, which rejects exactly the
/// `2^64 mod bound` overrepresented low values).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(i32, u32, i64, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform in
    /// `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range; `gen_range(0..3)` yields 0, 1 or 2.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_range(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator seeded from operating-system entropy. This offline
    /// stand-in derives the seed from the system clock and a monotonically
    /// increasing counter instead (no `getrandom` available); do not use it
    /// where reproducibility matters.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_all_values_without_bias() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let mut w: Vec<u32> = (0..50).collect();
        let mut rng2 = StdRng::seed_from_u64(5);
        w.shuffle(&mut rng2);
        assert_eq!(v, w, "same seed must give the same permutation");
    }
}
