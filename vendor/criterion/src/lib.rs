//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this crate implements the
//! subset of the criterion 0.5 API the `marqsim-bench` benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — on top of a simple
//! wall-clock measurement loop (warm-up, then a fixed number of timed
//! samples; median and spread are reported to stdout).
//!
//! It intentionally has none of criterion's statistics, plotting, or
//! command-line machinery: `cargo bench` builds and runs, prints one line per
//! benchmark, and exits.

use std::time::{Duration, Instant};

/// How batches are sized in [`Bencher::iter_batched`]. Only a hint here; the
/// stand-in always runs one routine call per setup call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch in real criterion.
    SmallInput,
    /// Large inputs: one iteration per batch.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement state handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // One warm-up call, then timed samples.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; the setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.durations.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        self.durations.sort_unstable();
        let median = self.durations[self.durations.len() / 2];
        let min = self.durations[0];
        let max = self.durations[self.durations.len() - 1];
        println!(
            "{name:<48} median {:>12?}   [{:?} .. {:?}]   ({} samples)",
            median,
            min,
            max,
            self.durations.len()
        );
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (kept for API compatibility; reporting is
    /// per-benchmark).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 20,
        }
    }
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    b.report(name);
}

impl Criterion {
    /// Runs one stand-alone benchmark with the default sample count.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into(), self.default_samples, f);
        self
    }

    /// Opens a named group whose sample size can be tuned.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Final configuration hook (kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0usize;
        b.iter(|| calls += 1);
        assert_eq!(b.durations.len(), 5);
        assert_eq!(calls, 6, "one warm-up plus five timed samples");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(3);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.durations.len(), 3);
    }

    #[test]
    fn groups_inherit_and_override_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
    }
}
