//! The unitary fidelity metric of §6.1.
//!
//! The paper scores compiled circuits by `tr(U_app · U†) / 2^n` where
//! `U = exp(iHt)` is the exact evolution. We report the magnitude of that
//! (complex) trace ratio, which is `1` exactly when `U_app` equals `U` up to
//! a global phase and strictly smaller otherwise.

use marqsim_linalg::{Complex, Matrix};

use crate::UnitaryAccumulator;

/// Normalized trace fidelity `|tr(A · B†)| / dim` between two unitaries given
/// as dense matrices.
///
/// # Panics
///
/// Panics if the matrices are not square with identical dimensions.
pub fn fidelity(a: &Matrix, b: &Matrix) -> f64 {
    assert!(
        a.is_square() && b.is_square(),
        "fidelity requires square matrices"
    );
    assert_eq!(a.rows(), b.rows(), "fidelity requires equal dimensions");
    let dim = a.rows();
    let mut tr = Complex::ZERO;
    for i in 0..dim {
        for k in 0..dim {
            tr += a[(i, k)] * b[(i, k)].conj();
        }
    }
    tr.abs() / dim as f64
}

/// Fidelity between an accumulated circuit unitary and a dense reference,
/// computed directly from the accumulator's columns (no dense conversion of
/// the accumulated unitary).
///
/// # Panics
///
/// Panics if the dimensions disagree.
pub fn fidelity_with_matrix(acc: &UnitaryAccumulator, reference: &Matrix) -> f64 {
    let dim = 1usize << acc.num_qubits();
    assert_eq!(reference.rows(), dim, "reference dimension mismatch");
    assert!(reference.is_square(), "reference must be square");
    // tr(A B†) = Σ_j ⟨b_j | a_j⟩ where a_j, b_j are the j-th columns.
    let mut tr = Complex::ZERO;
    for (j, col) in acc.columns().iter().enumerate() {
        for (i, &aij) in col.amplitudes().iter().enumerate() {
            tr += aij * reference[(i, j)].conj();
        }
    }
    tr.abs() / dim as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_unitary;
    use marqsim_pauli::{Hamiltonian, PauliString};

    #[test]
    fn identical_unitaries_have_fidelity_one() {
        let ham = Hamiltonian::parse("0.4 XZ + 0.2 ZY").unwrap();
        let u = exact_unitary(&ham, 0.7);
        assert!((fidelity(&u, &u) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn global_phase_does_not_reduce_fidelity() {
        let ham = Hamiltonian::parse("0.4 XZ + 0.2 ZY").unwrap();
        let u = exact_unitary(&ham, 0.7);
        let phased = u.scale(Complex::cis(1.234));
        assert!((fidelity(&u, &phased) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn orthogonal_unitaries_have_low_fidelity() {
        let x: PauliString = "X".parse().unwrap();
        let z: PauliString = "Z".parse().unwrap();
        assert!(fidelity(&x.to_matrix(), &z.to_matrix()) < 1e-10);
    }

    #[test]
    fn accumulator_fidelity_matches_dense_fidelity() {
        let ham = Hamiltonian::parse("0.5 XI + 0.3 ZZ + 0.2 YX").unwrap();
        let t = 0.5;
        let exact = exact_unitary(&ham, t);
        let mut acc = UnitaryAccumulator::new(2);
        // Crude single Trotter step.
        for term in ham.terms() {
            acc.apply_pauli_rotation(&term.string, term.coefficient * t);
        }
        let via_columns = fidelity_with_matrix(&acc, &exact);
        let via_dense = fidelity(&acc.to_matrix(), &exact);
        assert!((via_columns - via_dense).abs() < 1e-12);
        assert!(via_columns > 0.95 && via_columns < 1.0 + 1e-12);
    }

    #[test]
    fn finer_trotterization_improves_fidelity() {
        let ham = Hamiltonian::parse("0.8 XX + 0.6 ZI + 0.4 YZ").unwrap();
        let t = 1.0;
        let exact = exact_unitary(&ham, t);
        let mut coarse = UnitaryAccumulator::new(2);
        for term in ham.terms() {
            coarse.apply_pauli_rotation(&term.string, term.coefficient * t);
        }
        let mut fine = UnitaryAccumulator::new(2);
        let steps = 20;
        for _ in 0..steps {
            for term in ham.terms() {
                fine.apply_pauli_rotation(&term.string, term.coefficient * t / steps as f64);
            }
        }
        let f_coarse = fidelity_with_matrix(&coarse, &exact);
        let f_fine = fidelity_with_matrix(&fine, &exact);
        assert!(f_fine > f_coarse);
        assert!(f_fine > 0.999);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn mismatched_dimensions_panic() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(4);
        let _ = fidelity(&a, &b);
    }
}
