//! Column-wise accumulation of a circuit's full unitary.

use marqsim_circuit::{Circuit, Gate};
use marqsim_linalg::Matrix;
use marqsim_pauli::PauliString;

use crate::StateVector;

/// Accumulates the full `2^n × 2^n` unitary of a gate/rotation sequence by
/// evolving every computational basis state (one [`StateVector`] per column).
///
/// This is the workhorse of the algorithmic-accuracy evaluation: the cost of
/// applying one Pauli rotation is `O(4^n)` (one `O(2^n)` pass per column),
/// which is what makes sweeping thousands of sampled terms feasible without
/// synthesizing and multiplying dense gate matrices.
///
/// # Example
///
/// ```
/// use marqsim_pauli::PauliString;
/// use marqsim_sim::UnitaryAccumulator;
///
/// let p: PauliString = "ZZ".parse().unwrap();
/// let mut acc = UnitaryAccumulator::new(2);
/// acc.apply_pauli_rotation(&p, 0.3);
/// let u = acc.to_matrix();
/// assert!(u.is_unitary(1e-10));
/// ```
#[derive(Debug, Clone)]
pub struct UnitaryAccumulator {
    num_qubits: usize,
    columns: Vec<StateVector>,
}

impl UnitaryAccumulator {
    /// Starts from the identity on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let columns = (0..dim)
            .map(|k| StateVector::basis_state(num_qubits, k))
            .collect();
        UnitaryAccumulator {
            num_qubits,
            columns,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The accumulated columns (`columns[j] = U |j⟩`).
    pub fn columns(&self) -> &[StateVector] {
        &self.columns
    }

    /// Applies a single gate to the accumulated unitary (`U ← G · U`).
    pub fn apply_gate(&mut self, gate: &Gate) {
        for col in self.columns.iter_mut() {
            col.apply_gate(gate);
        }
    }

    /// Applies a whole circuit (`U ← U_circuit · U`).
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        for gate in circuit.gates() {
            self.apply_gate(gate);
        }
    }

    /// Applies `exp(i · angle · P)` to the accumulated unitary.
    pub fn apply_pauli_rotation(&mut self, pauli: &PauliString, angle: f64) {
        for col in self.columns.iter_mut() {
            col.apply_pauli_rotation(pauli, angle);
        }
    }

    /// Applies a sequence of Pauli rotations in order.
    pub fn apply_sequence(&mut self, sequence: &[(PauliString, f64)]) {
        for (p, angle) in sequence {
            self.apply_pauli_rotation(p, *angle);
        }
    }

    /// Exports the accumulated unitary as a dense matrix.
    pub fn to_matrix(&self) -> Matrix {
        let dim = self.columns.len();
        Matrix::from_fn(dim, dim, |i, j| self.columns[j].amplitudes()[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_circuit::synthesis;
    use marqsim_linalg::{expm, Complex};

    #[test]
    fn identity_on_construction() {
        let acc = UnitaryAccumulator::new(3);
        assert!(acc.to_matrix().approx_eq(&Matrix::identity(8), 1e-15));
    }

    #[test]
    fn single_rotation_matches_exponential() {
        let p: PauliString = "XY".parse().unwrap();
        let angle = 0.37;
        let mut acc = UnitaryAccumulator::new(2);
        acc.apply_pauli_rotation(&p, angle);
        let expected = expm::expm(&p.to_matrix().scale(Complex::new(0.0, angle)));
        assert!(acc.to_matrix().approx_eq(&expected, 1e-10));
    }

    #[test]
    fn gate_accumulation_matches_circuit_synthesis() {
        let p: PauliString = "XZY".parse().unwrap();
        let circuit = synthesis::pauli_rotation_circuit(&p, -0.62);
        let mut via_gates = UnitaryAccumulator::new(3);
        via_gates.apply_circuit(&circuit);
        let mut via_rotation = UnitaryAccumulator::new(3);
        via_rotation.apply_pauli_rotation(&p, -0.62);
        assert!(via_gates
            .to_matrix()
            .approx_eq(&via_rotation.to_matrix(), 1e-10));
    }

    #[test]
    fn sequence_order_is_left_to_right_in_time() {
        let a: PauliString = "XI".parse().unwrap();
        let b: PauliString = "ZZ".parse().unwrap();
        let mut acc = UnitaryAccumulator::new(2);
        acc.apply_sequence(&[(a.clone(), 0.5), (b.clone(), 0.25)]);
        let ua = expm::expm(&a.to_matrix().scale(Complex::new(0.0, 0.5)));
        let ub = expm::expm(&b.to_matrix().scale(Complex::new(0.0, 0.25)));
        // Later rotations multiply from the left.
        let expected = ub.matmul(&ua);
        assert!(acc.to_matrix().approx_eq(&expected, 1e-10));
    }

    #[test]
    fn accumulated_unitary_stays_unitary_over_many_rotations() {
        let strings = ["XXI", "IZZ", "YIY", "ZXZ"];
        let mut acc = UnitaryAccumulator::new(3);
        for step in 0..40 {
            let p: PauliString = strings[step % strings.len()].parse().unwrap();
            acc.apply_pauli_rotation(&p, 0.05 + 0.01 * step as f64);
        }
        assert!(acc.to_matrix().is_unitary(1e-8));
    }
}
