//! Exact reference evolution `exp(iHt)`.

use marqsim_linalg::{expm, Matrix};
use marqsim_pauli::Hamiltonian;

/// Computes the exact simulation unitary `U = exp(iHt)` for a Hamiltonian
/// given as a sum of Pauli strings.
///
/// The cost is exponential in the qubit count (dense `2^n × 2^n` matrix
/// exponential); this is the reference against which compiled circuits are
/// scored, mirroring the paper's exact-unitary comparison.
///
/// # Example
///
/// ```
/// use marqsim_pauli::Hamiltonian;
/// use marqsim_sim::exact::exact_unitary;
///
/// # fn main() -> Result<(), marqsim_pauli::ParseError> {
/// let ham = Hamiltonian::parse("0.5 Z")?;
/// let u = exact_unitary(&ham, 1.0);
/// assert!(u.is_unitary(1e-10));
/// # Ok(())
/// # }
/// ```
pub fn exact_unitary(ham: &Hamiltonian, t: f64) -> Matrix {
    expm::expm_i_hermitian(&ham.to_matrix(), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_linalg::Complex;

    #[test]
    fn single_z_term_closed_form() {
        let ham = Hamiltonian::parse("0.7 Z").unwrap();
        let t = 1.3;
        let u = exact_unitary(&ham, t);
        // exp(i t 0.7 Z) = diag(e^{i 0.7 t}, e^{-i 0.7 t})
        assert!(u[(0, 0)].approx_eq(Complex::cis(0.7 * t), 1e-10));
        assert!(u[(1, 1)].approx_eq(Complex::cis(-0.7 * t), 1e-10));
        assert!(u[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn evolution_is_unitary_and_composes_in_time() {
        let ham = Hamiltonian::parse("0.5 XX + 0.25 ZI + 0.1 YZ").unwrap();
        let u1 = exact_unitary(&ham, 0.4);
        let u2 = exact_unitary(&ham, 0.6);
        let u_total = exact_unitary(&ham, 1.0);
        assert!(u1.is_unitary(1e-9));
        assert!(u2.matmul(&u1).approx_eq(&u_total, 1e-9));
    }

    #[test]
    fn zero_time_gives_identity() {
        let ham = Hamiltonian::parse("1.0 XY + 0.3 ZZ").unwrap();
        let u = exact_unitary(&ham, 0.0);
        assert!(u.approx_eq(&Matrix::identity(4), 1e-12));
    }

    #[test]
    fn commuting_terms_factorize() {
        // ZI and IZ commute, so exp(i t (a ZI + b IZ)) = exp(i t a ZI) exp(i t b IZ).
        let ham = Hamiltonian::parse("0.8 ZI + 0.3 IZ").unwrap();
        let a = Hamiltonian::parse("0.8 ZI").unwrap();
        let b = Hamiltonian::parse("0.3 IZ").unwrap();
        let t = 0.9;
        let lhs = exact_unitary(&ham, t);
        let rhs = exact_unitary(&a, t).matmul(&exact_unitary(&b, t));
        assert!(lhs.approx_eq(&rhs, 1e-9));
    }
}
