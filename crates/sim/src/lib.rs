//! Quantum state-vector and unitary simulation.
//!
//! The paper evaluates compiled circuits by their *algorithmic accuracy*: the
//! unitary fidelity `tr(U_app · U†) / 2^n` between the circuit unitary and
//! the exact evolution `U = exp(iHt)` (§6.1). The authors accelerate this on
//! an A100 GPU with PyTorch; this crate is the CPU substrate that replaces
//! that stack:
//!
//! * [`StateVector`] — a dense `2^n` state vector with gate application and
//!   an `O(2^n)` fast path for Pauli-rotation application
//!   (`exp(iθP)|ψ⟩ = cos θ |ψ⟩ + i sin θ P|ψ⟩`).
//! * [`UnitaryAccumulator`] — accumulates the full circuit unitary column by
//!   column, either gate-by-gate or Pauli-rotation-by-rotation (the latter is
//!   what the experiment drivers use: it avoids synthesizing millions of
//!   gates when only the unitary matters).
//! * [`exact`] — the exact reference evolution `exp(iHt)` via the dense
//!   matrix exponential.
//! * [`fidelity`] — the unitary fidelity metric.
//!
//! # Example
//!
//! ```
//! use marqsim_pauli::Hamiltonian;
//! use marqsim_sim::{exact, fidelity, UnitaryAccumulator};
//!
//! # fn main() -> Result<(), marqsim_pauli::ParseError> {
//! let ham = Hamiltonian::parse("0.5 XI + 0.3 ZZ")?;
//! let t = 0.4;
//! // One first-order Trotter step.
//! let mut acc = UnitaryAccumulator::new(2);
//! for term in ham.terms() {
//!     acc.apply_pauli_rotation(&term.string, term.coefficient * t);
//! }
//! let exact_u = exact::exact_unitary(&ham, t);
//! let f = fidelity::fidelity_with_matrix(&acc, &exact_u);
//! assert!(f > 0.99);
//! # Ok(())
//! # }
//! ```

mod state;
mod unitary;

pub mod exact;
pub mod fidelity;

pub use state::StateVector;
pub use unitary::UnitaryAccumulator;
