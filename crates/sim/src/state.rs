//! Dense state-vector simulation.

use marqsim_circuit::{Circuit, Gate};
use marqsim_linalg::{Complex, Matrix};
use marqsim_pauli::PauliString;

/// A dense `2^n` quantum state vector.
///
/// Amplitude `k` corresponds to the computational-basis state whose qubit `q`
/// has value `(k >> q) & 1` (qubit 0 is the least-significant bit), matching
/// the conventions of `marqsim-pauli` and `marqsim-circuit`.
///
/// # Example
///
/// ```
/// use marqsim_circuit::Gate;
/// use marqsim_sim::StateVector;
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(&Gate::H(0));
/// psi.apply_gate(&Gate::Cnot { control: 0, target: 1 });
/// let probs = psi.probabilities();
/// assert!((probs[0] - 0.5).abs() < 1e-12);
/// assert!((probs[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero_state(num_qubits: usize) -> Self {
        let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
        amplitudes[0] = Complex::ONE;
        StateVector {
            num_qubits,
            amplitudes,
        }
    }

    /// The computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, index: usize) -> Self {
        let dim = 1usize << num_qubits;
        assert!(
            index < dim,
            "basis index {index} out of range for {num_qubits} qubits"
        );
        let mut amplitudes = vec![Complex::ZERO; dim];
        amplitudes[index] = Complex::ONE;
        StateVector {
            num_qubits,
            amplitudes,
        }
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        let dim = amplitudes.len();
        assert!(
            dim.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        StateVector {
            num_qubits: dim.trailing_zeros() as usize,
            amplitudes,
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Borrow of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// The squared magnitude of each amplitude.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// L2 norm of the state (1 for a normalized state).
    pub fn norm(&self) -> f64 {
        self.probabilities().iter().sum::<f64>().sqrt()
    }

    /// Hermitian inner product `⟨self | other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different qubit counts.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        self.amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .fold(Complex::ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// Applies a single gate in place.
    ///
    /// # Panics
    ///
    /// Panics if the gate addresses a qubit outside the register.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::Cnot { control, target } => self.apply_cnot(*control, *target),
            Gate::GlobalPhase(phi) => {
                let phase = Complex::cis(*phi);
                for a in self.amplitudes.iter_mut() {
                    *a *= phase;
                }
            }
            single => {
                let q = single.qubits()[0];
                assert!(q < self.num_qubits, "gate qubit {q} out of range");
                let m = single.local_matrix();
                self.apply_single_qubit(q, &m);
            }
        }
    }

    /// Applies every gate of a circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit has more qubits than the state"
        );
        for gate in circuit.gates() {
            self.apply_gate(gate);
        }
    }

    fn apply_single_qubit(&mut self, q: usize, m: &Matrix) {
        let stride = 1usize << q;
        let dim = self.amplitudes.len();
        let m00 = m[(0, 0)];
        let m01 = m[(0, 1)];
        let m10 = m[(1, 0)];
        let m11 = m[(1, 1)];
        let mut base = 0usize;
        while base < dim {
            for offset in base..base + stride {
                let i0 = offset;
                let i1 = offset + stride;
                let a0 = self.amplitudes[i0];
                let a1 = self.amplitudes[i1];
                self.amplitudes[i0] = m00 * a0 + m01 * a1;
                self.amplitudes[i1] = m10 * a0 + m11 * a1;
            }
            base += 2 * stride;
        }
    }

    fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(
            control < self.num_qubits && target < self.num_qubits && control != target,
            "invalid CNOT qubits ({control}, {target})"
        );
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        for k in 0..self.amplitudes.len() {
            if k & cmask != 0 && k & tmask == 0 {
                let partner = k | tmask;
                self.amplitudes.swap(k, partner);
            }
        }
    }

    /// Applies `exp(i · angle · P)` directly (without synthesizing gates),
    /// using `exp(iθP) = cos θ · I + i sin θ · P` and the `O(2^n)` sparse
    /// action of a Pauli string on the computational basis.
    ///
    /// # Panics
    ///
    /// Panics if `P` acts on a different number of qubits than the state.
    pub fn apply_pauli_rotation(&mut self, pauli: &PauliString, angle: f64) {
        assert_eq!(
            pauli.num_qubits(),
            self.num_qubits,
            "Pauli string qubit count mismatch"
        );
        let x_mask = pauli.x_mask() as usize;
        let z_mask = pauli.z_mask() as usize;
        let y_count = pauli
            .support()
            .filter(|(_, op)| op.x_bit() && op.z_bit())
            .count();
        // i^{y_count}
        let y_phase = match y_count % 4 {
            0 => Complex::ONE,
            1 => Complex::I,
            2 => -Complex::ONE,
            _ => -Complex::I,
        };
        let cos = Complex::real(angle.cos());
        let i_sin = Complex::new(0.0, angle.sin());

        // sign(k) = (-1)^{popcount(k & z_mask)}; P|k⟩ = y_phase·sign(k)·|k ^ x_mask⟩.
        let sign = |k: usize| {
            if (k & z_mask).count_ones().is_multiple_of(2) {
                Complex::ONE
            } else {
                -Complex::ONE
            }
        };

        if x_mask == 0 {
            // Diagonal Pauli string: each amplitude picks up a phase.
            for (k, amp) in self.amplitudes.iter_mut().enumerate() {
                *amp = (cos + i_sin * y_phase * sign(k)) * *amp;
            }
        } else {
            // (Pψ)[k] = y_phase · sign(src) · ψ[src] with src = k ^ x_mask.
            let old = self.amplitudes.clone();
            for (k, slot) in self.amplitudes.iter_mut().enumerate() {
                let src = k ^ x_mask;
                *slot = cos * old[k] + i_sin * y_phase * sign(src) * old[src];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_circuit::synthesis;
    use marqsim_linalg::expm;

    fn state_close(a: &StateVector, b: &[Complex], tol: f64) -> bool {
        a.amplitudes
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.approx_eq(*y, tol))
    }

    #[test]
    fn zero_state_is_normalized() {
        let psi = StateVector::zero_state(3);
        assert_eq!(psi.amplitudes().len(), 8);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
        assert!((psi.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::H(0));
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(state_close(
            &psi,
            &[Complex::real(s), Complex::real(s)],
            1e-12
        ));
    }

    #[test]
    fn bell_state_probabilities() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::H(0));
        psi.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        let p = psi.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1]).abs() < 1e-12);
        assert!((p[2]).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn x_gate_flips_the_right_qubit() {
        let mut psi = StateVector::zero_state(3);
        psi.apply_gate(&Gate::X(1));
        assert!((psi.probabilities()[0b010] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate_application_matches_dense_matrices() {
        // Apply a sequence of gates and compare against the dense unitary
        // built from local matrices.
        let gates = vec![
            Gate::H(0),
            Gate::Rz(1, 0.7),
            Gate::Cnot {
                control: 0,
                target: 2,
            },
            Gate::Ry(2, -0.4),
            Gate::S(1),
            Gate::Cnot {
                control: 2,
                target: 1,
            },
        ];
        let n = 3;
        let dim = 1 << n;
        let mut psi = StateVector::zero_state(n);
        // Start from a non-trivial state.
        psi.apply_gate(&Gate::H(0));
        psi.apply_gate(&Gate::H(1));
        psi.apply_gate(&Gate::H(2));
        let initial = psi.clone();

        let mut u = Matrix::identity(dim);
        for g in &gates {
            psi.apply_gate(g);
            let full = match g {
                Gate::Cnot { control, target } => Matrix::from_fn(dim, dim, |i, j| {
                    let flipped = if (j >> control) & 1 == 1 {
                        j ^ (1 << target)
                    } else {
                        j
                    };
                    if i == flipped {
                        Complex::ONE
                    } else {
                        Complex::ZERO
                    }
                }),
                single => {
                    let q = single.qubits()[0];
                    let local = single.local_matrix();
                    Matrix::from_fn(dim, dim, |i, j| {
                        if (i ^ j) & !(1usize << q) != 0 {
                            Complex::ZERO
                        } else {
                            local[((i >> q) & 1, (j >> q) & 1)]
                        }
                    })
                }
            };
            u = full.matmul(&u);
        }
        let expected = u.mul_vec(initial.amplitudes());
        assert!(state_close(&psi, &expected, 1e-10));
    }

    #[test]
    fn pauli_rotation_fast_path_matches_synthesized_circuit() {
        for s in ["Z", "X", "Y", "ZZ", "XY", "XYZ", "IZXI", "YXIZ"] {
            let p: PauliString = s.parse().unwrap();
            let n = p.num_qubits();
            let angle = 0.613;
            // Prepare an arbitrary product state.
            let mut fast = StateVector::zero_state(n);
            for q in 0..n {
                fast.apply_gate(&Gate::Ry(q, 0.3 + 0.2 * q as f64));
            }
            let mut slow = fast.clone();

            fast.apply_pauli_rotation(&p, angle);
            let circuit = synthesis::pauli_rotation_circuit(&p, angle);
            slow.apply_circuit(&circuit);

            assert!(
                state_close(&fast, slow.amplitudes(), 1e-10),
                "mismatch for {s}"
            );
        }
    }

    #[test]
    fn pauli_rotation_matches_matrix_exponential() {
        let p: PauliString = "XZY".parse().unwrap();
        let angle = -0.91;
        let mut psi = StateVector::zero_state(3);
        psi.apply_gate(&Gate::H(0));
        psi.apply_gate(&Gate::Ry(1, 0.5));
        let before = psi.clone();
        psi.apply_pauli_rotation(&p, angle);

        let u = expm::expm(&p.to_matrix().scale(Complex::new(0.0, angle)));
        let expected = u.mul_vec(before.amplitudes());
        assert!(state_close(&psi, &expected, 1e-10));
    }

    #[test]
    fn rotations_preserve_the_norm() {
        let p: PauliString = "XXYYZ".parse().unwrap();
        let mut psi = StateVector::zero_state(5);
        for q in 0..5 {
            psi.apply_gate(&Gate::Ry(q, 0.1 * (q + 1) as f64));
        }
        for step in 0..50 {
            psi.apply_pauli_rotation(&p, 0.05 * step as f64);
        }
        assert!((psi.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inner_product_of_orthogonal_basis_states() {
        let a = StateVector::basis_state(3, 1);
        let b = StateVector::basis_state(3, 6);
        assert!(a.inner_product(&b).abs() < 1e-15);
        assert!((a.inner_product(&a).re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn global_phase_gate_multiplies_all_amplitudes() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::H(0));
        let before = psi.clone();
        psi.apply_gate(&Gate::GlobalPhase(0.5));
        for (a, b) in psi.amplitudes().iter().zip(before.amplitudes()) {
            assert!(a.approx_eq(*b * Complex::cis(0.5), 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_state_rejects_bad_index() {
        let _ = StateVector::basis_state(2, 4);
    }
}
