//! The Hamiltonian Term Transition Graph IR (§4.1).

use marqsim_markov::TransitionMatrix;
use marqsim_pauli::Hamiltonian;

use crate::{CompileError, SolverKind, TransitionStrategy};

/// The Hamiltonian Term Transition Graph: the MarQSim intermediate
/// representation pairing a Hamiltonian with a transition matrix over its
/// terms (Definition 4.1).
///
/// A constructed `HttGraph` always satisfies the two conditions of
/// Theorem 4.1 for the Hamiltonian's distribution `π = |h| / λ`:
/// construction re-validates them and fails otherwise.
///
/// # Example
///
/// ```
/// use marqsim_core::{HttGraph, TransitionStrategy};
/// use marqsim_pauli::Hamiltonian;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ham = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY")?;
/// let htt = HttGraph::build(&ham, &TransitionStrategy::marqsim_gc())?;
/// assert_eq!(htt.num_states(), 4);
/// assert!(htt.transition_matrix().is_strongly_connected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HttGraph {
    hamiltonian: Hamiltonian,
    // Arc so compilations can carry the matrix in their results without
    // copying the O(n²) rows per compile (sweeps share one graph across
    // thousands of points).
    transition: std::sync::Arc<TransitionMatrix>,
    stationary: Vec<f64>,
}

impl HttGraph {
    /// Builds the HTT graph for `ham` using the transition matrix prescribed
    /// by `strategy`. The Hamiltonian is split first if it has a dominant
    /// term (Appendix A.3).
    ///
    /// # Errors
    ///
    /// Propagates any failure of the transition-matrix construction.
    pub fn build(ham: &Hamiltonian, strategy: &TransitionStrategy) -> Result<Self, CompileError> {
        HttGraph::build_with_solver(ham, strategy, SolverKind::default())
    }

    /// Like [`build`](Self::build) with an explicit min-cost-flow backend
    /// for the strategy's flow solves.
    ///
    /// # Errors
    ///
    /// Propagates any failure of the transition-matrix construction.
    pub fn build_with_solver(
        ham: &Hamiltonian,
        strategy: &TransitionStrategy,
        solver: SolverKind,
    ) -> Result<Self, CompileError> {
        let ham = ham.split_if_dominant();
        // The warm builder is the canonical construction: `P_rp` samples
        // re-pivot from the `P_gc` basis under basis-exporting backends and
        // degrade to the identical cold solves under `ssp`, so cached and
        // uncached builds agree bit-for-bit on every backend.
        let (transition, _warm_starts) = crate::transition::build_transition_matrix_solved_by_warm(
            &ham, strategy, None, solver,
        )?;
        let stationary = ham.stationary_distribution();
        Ok(HttGraph {
            hamiltonian: ham,
            transition: std::sync::Arc::new(transition),
            stationary,
        })
    }

    /// Wraps an existing transition matrix, verifying the Theorem 4.1
    /// conditions.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TheoremViolation`] if a condition fails, or
    /// [`CompileError::InvalidConfig`] on a size mismatch.
    pub fn from_matrix(ham: &Hamiltonian, matrix: TransitionMatrix) -> Result<Self, CompileError> {
        if matrix.num_states() != ham.num_terms() {
            return Err(CompileError::InvalidConfig {
                reason: format!(
                    "transition matrix has {} states but the hamiltonian has {} terms",
                    matrix.num_states(),
                    ham.num_terms()
                ),
            });
        }
        let stationary = ham.stationary_distribution();
        if !matrix.preserves_distribution(&stationary, 1e-7) {
            return Err(CompileError::TheoremViolation {
                condition: "stationary distribution preservation",
            });
        }
        if !matrix.is_strongly_connected() {
            return Err(CompileError::TheoremViolation {
                condition: "strong connectivity",
            });
        }
        Ok(HttGraph {
            hamiltonian: ham.clone(),
            transition: std::sync::Arc::new(matrix),
            stationary,
        })
    }

    /// The (possibly dominant-term-split) Hamiltonian this graph represents.
    pub fn hamiltonian(&self) -> &Hamiltonian {
        &self.hamiltonian
    }

    /// The transition matrix (edge weights of the graph).
    pub fn transition_matrix(&self) -> &TransitionMatrix {
        &self.transition
    }

    /// A shared handle to the transition matrix (no row copy).
    pub fn transition_matrix_arc(&self) -> std::sync::Arc<TransitionMatrix> {
        std::sync::Arc::clone(&self.transition)
    }

    /// The stationary distribution `π = |h| / λ`.
    pub fn stationary_distribution(&self) -> &[f64] {
        &self.stationary
    }

    /// Number of states (Hamiltonian terms).
    pub fn num_states(&self) -> usize {
        self.hamiltonian.num_terms()
    }

    /// Number of directed edges with non-zero probability.
    pub fn num_edges(&self) -> usize {
        let n = self.num_states();
        (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| self.transition.prob(i, j) > 0.0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_markov::TransitionMatrix;

    fn example() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap()
    }

    #[test]
    fn build_with_qdrift_gives_complete_graph() {
        let htt = HttGraph::build(&example(), &TransitionStrategy::QDrift).unwrap();
        assert_eq!(htt.num_states(), 4);
        assert_eq!(htt.num_edges(), 16);
    }

    #[test]
    fn gc_strategy_has_fewer_edges_than_qdrift_alone() {
        let ham = example();
        let gc_only = HttGraph::build(
            &ham,
            &TransitionStrategy::GateCancellation { qdrift_weight: 0.0 },
        );
        // With zero qDRIFT weight the P_gc graph is not strongly connected in
        // general, so building may fail — both outcomes are acceptable, but if
        // it succeeds it must still satisfy the theorem.
        if let Ok(htt) = gc_only {
            assert!(htt.transition_matrix().is_strongly_connected());
        }
        let blended = HttGraph::build(&ham, &TransitionStrategy::marqsim_gc()).unwrap();
        assert_eq!(blended.num_edges(), 16);
    }

    #[test]
    fn dominant_terms_are_split_automatically() {
        let ham = Hamiltonian::parse("3.0 XX + 0.5 ZZ + 0.5 XY").unwrap();
        let htt = HttGraph::build(&ham, &TransitionStrategy::marqsim_gc()).unwrap();
        assert_eq!(htt.num_states(), 4);
        assert!((htt.hamiltonian().lambda() - ham.lambda()).abs() < 1e-12);
    }

    #[test]
    fn from_matrix_rejects_non_preserving_matrices() {
        let ham = example();
        let uniform = TransitionMatrix::from_stationary(&[0.25; 4]);
        let err = HttGraph::from_matrix(&ham, uniform).unwrap_err();
        assert!(matches!(err, CompileError::TheoremViolation { .. }));
    }

    #[test]
    fn from_matrix_rejects_size_mismatch() {
        let ham = example();
        let small = TransitionMatrix::from_stationary(&[0.5, 0.5]);
        let err = HttGraph::from_matrix(&ham, small).unwrap_err();
        assert!(matches!(err, CompileError::InvalidConfig { .. }));
    }

    #[test]
    fn from_matrix_accepts_the_qdrift_matrix() {
        let ham = example();
        let p = crate::qdrift::qdrift_matrix(&ham);
        let htt = HttGraph::from_matrix(&ham, p).unwrap();
        assert_eq!(htt.stationary_distribution().len(), 4);
    }
}
