//! The gate-cancellation transition matrix `P_gc` (§5.1–5.2, Algorithm 2).
//!
//! The min-cost-flow model routes one unit of probability mass through a
//! bipartite network whose outer-edge capacities are the stationary
//! distribution `π = |h| / λ` and whose inner-edge costs are the number of
//! CNOT gates left between consecutive Pauli-rotation circuits. Normalizing
//! each row of the optimal flow by `π_i` yields a transition matrix that (by
//! Theorem 5.1) preserves `π`, and whose sampled sequences minimize the
//! expected CNOT count (Proposition 5.1).
//!
//! Self-edges are excluded to rule out the trivial identity solution; any
//! term carrying more than half of the total weight is split in two first
//! (Appendix A.3), mirroring `Hamiltonian::split_dominant_terms`.

use marqsim_flow::bipartite::{solve_warm_with, solve_with_basis, BipartiteFlow};
use marqsim_flow::{SolverKind, SpanningBasis};
use marqsim_markov::TransitionMatrix;
use marqsim_pauli::algebra::cnot_count_between;
use marqsim_pauli::Hamiltonian;

use crate::CompileError;

/// The CNOT-count cost matrix used by the min-cost-flow model: entry
/// `(i, j)` is the number of CNOTs between the circuits of terms `i` and `j`
/// after pairwise cancellation.
pub fn cnot_cost_matrix(ham: &Hamiltonian) -> Vec<Vec<f64>> {
    let n = ham.num_terms();
    let mut costs = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                costs[i][j] = cnot_count_between(&ham.term(i).string, &ham.term(j).string) as f64;
            }
        }
    }
    costs
}

/// Solves the min-cost-flow model for a Hamiltonian with an arbitrary cost
/// matrix (used directly by the random-perturbation variant) under the
/// default solver backend.
///
/// # Errors
///
/// Returns [`CompileError::Flow`] if the transportation problem is
/// infeasible, or [`CompileError::Transition`] if the extracted matrix fails
/// validation.
pub fn matrix_from_costs(
    ham: &Hamiltonian,
    costs: &[Vec<f64>],
) -> Result<(TransitionMatrix, BipartiteFlow), CompileError> {
    matrix_from_costs_with(ham, costs, SolverKind::default())
}

/// Like [`matrix_from_costs`] with an explicit min-cost-flow backend.
///
/// # Errors
///
/// Same contract as [`matrix_from_costs`].
pub fn matrix_from_costs_with(
    ham: &Hamiltonian,
    costs: &[Vec<f64>],
    solver: SolverKind,
) -> Result<(TransitionMatrix, BipartiteFlow), CompileError> {
    matrix_from_costs_with_basis(ham, costs, solver).map(|(matrix, flow, _)| (matrix, flow))
}

/// Like [`matrix_from_costs_with`], additionally returning the solver's
/// optimal [`SpanningBasis`] (`None` for backends without warm support).
/// The basis can warm-start [`matrix_from_costs_warm_with`] for the same
/// Hamiltonian under a different cost matrix — the flow network's
/// topology depends only on `π` and the excluded diagonal, both fixed by
/// the Hamiltonian, which is exactly the `P_rp` perturbed-cost shape.
///
/// # Errors
///
/// Same contract as [`matrix_from_costs`].
pub fn matrix_from_costs_with_basis(
    ham: &Hamiltonian,
    costs: &[Vec<f64>],
    solver: SolverKind,
) -> Result<(TransitionMatrix, BipartiteFlow, Option<SpanningBasis>), CompileError> {
    let pi = ham.stationary_distribution();
    let (flow, basis) = solve_with_basis(solver, &pi, costs, |i, j| i != j)?;
    let matrix = matrix_from_flow(ham, &pi, &flow)?;
    Ok((matrix, flow, basis))
}

/// Warm-start variant of [`matrix_from_costs_with_basis`]: re-prices and
/// re-pivots from a basis saved by an earlier solve for the *same*
/// Hamiltonian. A mismatched basis or a backend without warm support
/// degrades to a cold solve ([`BipartiteFlow::warm_start`] reports what
/// happened); errors are classified identically either way.
///
/// # Errors
///
/// Same contract as [`matrix_from_costs`].
pub fn matrix_from_costs_warm_with(
    ham: &Hamiltonian,
    costs: &[Vec<f64>],
    solver: SolverKind,
    basis: &SpanningBasis,
) -> Result<(TransitionMatrix, BipartiteFlow, Option<SpanningBasis>), CompileError> {
    let pi = ham.stationary_distribution();
    let (flow, basis) = solve_warm_with(solver, &pi, costs, |i, j| i != j, basis)?;
    let matrix = matrix_from_flow(ham, &pi, &flow)?;
    Ok((matrix, flow, basis))
}

/// Converts an optimal bipartite flow into the transition matrix
/// `p_ij = f_ij / π_i` (§5.1.2), renormalizing each row against round-off.
fn matrix_from_flow(
    ham: &Hamiltonian,
    pi: &[f64],
    flow: &BipartiteFlow,
) -> Result<TransitionMatrix, CompileError> {
    let n = ham.num_terms();
    let mut rows = vec![vec![0.0; n]; n];
    for i in 0..n {
        let denom = pi[i];
        for j in 0..n {
            rows[i][j] = if denom > 0.0 {
                flow.flows[i][j] / denom
            } else {
                0.0
            };
        }
        // Guard against round-off: renormalize the row exactly.
        let sum: f64 = rows[i].iter().sum();
        if sum > 0.0 {
            for v in rows[i].iter_mut() {
                *v /= sum;
            }
        } else {
            rows[i][i] = 1.0;
        }
    }
    Ok(TransitionMatrix::new(rows)?)
}

/// Builds `P_gc` for a Hamiltonian (Algorithm 2) under the default solver
/// backend.
///
/// The Hamiltonian must not have a term with more than half the total weight;
/// call [`Hamiltonian::split_dominant_terms`] first if it does (the
/// [`crate::Compiler`] does this automatically).
///
/// # Errors
///
/// See [`matrix_from_costs`].
pub fn gate_cancellation_matrix(ham: &Hamiltonian) -> Result<TransitionMatrix, CompileError> {
    gate_cancellation_matrix_with(ham, SolverKind::default())
}

/// Like [`gate_cancellation_matrix`] with an explicit min-cost-flow backend
/// — the entry point the engine's transition cache uses to honor its
/// configured / per-job solver selection.
///
/// # Errors
///
/// See [`matrix_from_costs`].
pub fn gate_cancellation_matrix_with(
    ham: &Hamiltonian,
    solver: SolverKind,
) -> Result<TransitionMatrix, CompileError> {
    let costs = cnot_cost_matrix(ham);
    matrix_from_costs_with(ham, &costs, solver).map(|(m, _)| m)
}

/// Like [`gate_cancellation_matrix_with`], additionally returning the
/// backend's optimal [`SpanningBasis`] (`None` for `ssp`). The engine's
/// transition cache persists this basis next to `P_gc` so the `P_rp`
/// perturbation samples — same network topology, perturbed costs — can be
/// solved as warm re-pivots instead of cold solves.
///
/// # Errors
///
/// See [`matrix_from_costs`].
pub fn gate_cancellation_matrix_with_basis(
    ham: &Hamiltonian,
    solver: SolverKind,
) -> Result<(TransitionMatrix, Option<SpanningBasis>), CompileError> {
    let costs = cnot_cost_matrix(ham);
    matrix_from_costs_with_basis(ham, &costs, solver).map(|(m, _, basis)| (m, basis))
}

/// Builds `P_gc` and also returns the optimal objective value — by
/// Proposition 5.1 this is the expected CNOT count per transition under
/// `(π, P_gc)`.
///
/// # Errors
///
/// See [`matrix_from_costs`].
pub fn gate_cancellation_matrix_with_cost(
    ham: &Hamiltonian,
) -> Result<(TransitionMatrix, f64), CompileError> {
    let costs = cnot_cost_matrix(ham);
    matrix_from_costs(ham, &costs).map(|(m, flow)| (m, flow.cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap()
    }

    #[test]
    fn paper_example_5_1_transition_matrix() {
        // Equation (14): the dominant term spreads over the rest proportional
        // to π, every other term returns to the dominant term.
        let p = gate_cancellation_matrix(&example()).unwrap();
        let expected = [
            [0.0, 0.5, 0.4, 0.1],
            [1.0, 0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],
        ];
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (p.prob(i, j) - expected[i][j]).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    p.prob(i, j),
                    expected[i][j]
                );
            }
        }
    }

    #[test]
    fn preserves_the_stationary_distribution() {
        let ham = example();
        let p = gate_cancellation_matrix(&ham).unwrap();
        assert!(p.preserves_distribution(&ham.stationary_distribution(), 1e-9));
    }

    #[test]
    fn diagonal_is_zero() {
        let ham = example();
        let p = gate_cancellation_matrix(&ham).unwrap();
        for i in 0..ham.num_terms() {
            assert!(p.prob(i, i).abs() < 1e-12);
        }
    }

    #[test]
    fn objective_equals_expected_cnot_count() {
        // Proposition 5.1: the MCFP objective equals E[CNOT] under (π, P_gc).
        let ham = example();
        let (p, cost) = gate_cancellation_matrix_with_cost(&ham).unwrap();
        let pi = ham.stationary_distribution();
        let costs = cnot_cost_matrix(&ham);
        let mut expectation = 0.0;
        for i in 0..ham.num_terms() {
            for j in 0..ham.num_terms() {
                expectation += pi[i] * p.prob(i, j) * costs[i][j];
            }
        }
        assert!((expectation - cost).abs() < 1e-9, "{expectation} vs {cost}");
    }

    #[test]
    fn gc_matrix_expected_cost_beats_qdrift_expected_cost() {
        // The whole point of P_gc: its expected transition cost is at most
        // qDRIFT's.
        let ham = Hamiltonian::parse(
            "0.9 ZZII + 0.8 ZIZI + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ + 0.4 XYXY + 0.3 IZIZ + 0.2 YYII",
        )
        .unwrap();
        let costs = cnot_cost_matrix(&ham);
        let pi = ham.stationary_distribution();
        let (p_gc, gc_cost) = gate_cancellation_matrix_with_cost(&ham).unwrap();
        assert!(p_gc.preserves_distribution(&pi, 1e-9));
        let mut qd_cost = 0.0;
        for i in 0..ham.num_terms() {
            for j in 0..ham.num_terms() {
                qd_cost += pi[i] * pi[j] * costs[i][j];
            }
        }
        assert!(
            gc_cost <= qd_cost + 1e-9,
            "gc expected cost {gc_cost} should not exceed qdrift expected cost {qd_cost}"
        );
    }

    #[test]
    fn dominant_term_requires_splitting() {
        // π_0 > 0.5 makes the flow infeasible unless the term is split.
        let ham = Hamiltonian::parse("3.0 XX + 0.5 ZZ + 0.5 XY").unwrap();
        assert!(gate_cancellation_matrix(&ham).is_err());
        let split = ham.split_dominant_terms();
        let p = gate_cancellation_matrix(&split).unwrap();
        assert!(p.preserves_distribution(&split.stationary_distribution(), 1e-9));
    }

    #[test]
    fn both_backends_build_equivalent_gc_matrices() {
        // The cross-backend guarantee at the P_gc level: equal optimal cost
        // and a valid (π-preserving) matrix from either backend.
        let ham = example();
        let pi = ham.stationary_distribution();
        let costs = cnot_cost_matrix(&ham);
        let (ssp, ssp_flow) =
            matrix_from_costs_with(&ham, &costs, SolverKind::SuccessiveShortestPath).unwrap();
        let (simplex, simplex_flow) =
            matrix_from_costs_with(&ham, &costs, SolverKind::NetworkSimplex).unwrap();
        assert!(
            (ssp_flow.cost - simplex_flow.cost).abs() < 1e-9,
            "ssp {} vs simplex {}",
            ssp_flow.cost,
            simplex_flow.cost
        );
        assert!(ssp.preserves_distribution(&pi, 1e-9));
        assert!(simplex.preserves_distribution(&pi, 1e-9));
    }

    #[test]
    fn cost_matrix_is_symmetric_with_zero_diagonal() {
        let ham = example();
        let costs = cnot_cost_matrix(&ham);
        for i in 0..4 {
            assert_eq!(costs[i][i], 0.0);
            for j in 0..4 {
                assert_eq!(costs[i][j], costs[j][i]);
            }
        }
    }
}
