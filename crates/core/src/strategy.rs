//! Transition-matrix strategies (the experimental configurations of §6.1).

use crate::perturb::PerturbationConfig;

/// How the compiler builds the transition matrix it samples from.
///
/// The three named variants correspond to the paper's experimental
/// configurations; [`TransitionStrategy::Combined`] exposes the general
/// convex combination of Theorem 5.2 for ablations (Fig. 14).
#[derive(Debug, Clone, PartialEq)]
pub enum TransitionStrategy {
    /// `P = P_qd`: vanilla qDRIFT (the paper's *Baseline*, which additionally
    /// applies gate cancellation to the sampled sequence — the sequence-level
    /// metrics in [`crate::metrics`] always do).
    QDrift,
    /// `P = θ·P_qd + (1−θ)·P_gc` (*MarQSim-GC*; the paper uses `θ = 0.4`).
    GateCancellation {
        /// The qDRIFT weight `θ`.
        qdrift_weight: f64,
    },
    /// `P = θ_qd·P_qd + θ_gc·P_gc + θ_rp·P_rp` (*MarQSim-GC-RP*; the paper
    /// uses `0.4 / 0.3 / 0.3`).
    GateCancellationRandomPerturbation {
        /// Weight of the qDRIFT component.
        qdrift_weight: f64,
        /// Weight of the gate-cancellation component.
        gc_weight: f64,
        /// Configuration of the random-perturbation component (its weight is
        /// `1 − qdrift_weight − gc_weight`).
        perturbation: PerturbationConfig,
    },
    /// An arbitrary convex combination `Σ θ_i P_i` of the three component
    /// matrices `(P_qd, P_gc, P_rp)`; weights must sum to one.
    Combined {
        /// Weight of `P_qd`.
        qdrift_weight: f64,
        /// Weight of `P_gc`.
        gc_weight: f64,
        /// Weight of `P_rp`.
        rp_weight: f64,
        /// Configuration of the random-perturbation component.
        perturbation: PerturbationConfig,
    },
}

impl TransitionStrategy {
    /// The paper's *Baseline* configuration.
    pub fn baseline() -> Self {
        TransitionStrategy::QDrift
    }

    /// The paper's *MarQSim-GC* configuration (`0.4 P_qd + 0.6 P_gc`).
    pub fn marqsim_gc() -> Self {
        TransitionStrategy::GateCancellation { qdrift_weight: 0.4 }
    }

    /// The paper's *MarQSim-GC-RP* configuration
    /// (`0.4 P_qd + 0.3 P_gc + 0.3 P_rp`).
    pub fn marqsim_gc_rp() -> Self {
        TransitionStrategy::GateCancellationRandomPerturbation {
            qdrift_weight: 0.4,
            gc_weight: 0.3,
            perturbation: PerturbationConfig::default(),
        }
    }

    /// A short human-readable label used by the experiment drivers.
    pub fn label(&self) -> String {
        match self {
            TransitionStrategy::QDrift => "Baseline".to_string(),
            TransitionStrategy::GateCancellation { qdrift_weight } => {
                format!(
                    "MarQSim-GC ({qdrift_weight:.1} Pqd + {:.1} Pgc)",
                    1.0 - qdrift_weight
                )
            }
            TransitionStrategy::GateCancellationRandomPerturbation {
                qdrift_weight,
                gc_weight,
                ..
            } => format!(
                "MarQSim-GC-RP ({qdrift_weight:.1} Pqd + {gc_weight:.1} Pgc + {:.1} Prp)",
                1.0 - qdrift_weight - gc_weight
            ),
            TransitionStrategy::Combined {
                qdrift_weight,
                gc_weight,
                rp_weight,
                ..
            } => format!("Combined ({qdrift_weight:.2}/{gc_weight:.2}/{rp_weight:.2})"),
        }
    }

    /// Returns `true` if the weights form a valid convex combination.
    pub fn weights_are_valid(&self) -> bool {
        let in_unit = |x: f64| (0.0..=1.0 + 1e-12).contains(&x);
        match *self {
            TransitionStrategy::QDrift => true,
            TransitionStrategy::GateCancellation { qdrift_weight } => in_unit(qdrift_weight),
            TransitionStrategy::GateCancellationRandomPerturbation {
                qdrift_weight,
                gc_weight,
                ..
            } => {
                in_unit(qdrift_weight)
                    && in_unit(gc_weight)
                    && in_unit(1.0 - qdrift_weight - gc_weight)
            }
            TransitionStrategy::Combined {
                qdrift_weight,
                gc_weight,
                rp_weight,
                ..
            } => {
                in_unit(qdrift_weight)
                    && in_unit(gc_weight)
                    && in_unit(rp_weight)
                    && (qdrift_weight + gc_weight + rp_weight - 1.0).abs() < 1e-9
            }
        }
    }
}

impl Default for TransitionStrategy {
    fn default() -> Self {
        TransitionStrategy::marqsim_gc_rp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configurations_match_the_paper() {
        assert_eq!(TransitionStrategy::baseline(), TransitionStrategy::QDrift);
        match TransitionStrategy::marqsim_gc() {
            TransitionStrategy::GateCancellation { qdrift_weight } => {
                assert!((qdrift_weight - 0.4).abs() < 1e-12)
            }
            other => panic!("unexpected {other:?}"),
        }
        match TransitionStrategy::marqsim_gc_rp() {
            TransitionStrategy::GateCancellationRandomPerturbation {
                qdrift_weight,
                gc_weight,
                ..
            } => {
                assert!((qdrift_weight - 0.4).abs() < 1e-12);
                assert!((gc_weight - 0.3).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn labels_are_distinct_and_informative() {
        assert_eq!(TransitionStrategy::baseline().label(), "Baseline");
        assert!(TransitionStrategy::marqsim_gc().label().contains("GC"));
        assert!(TransitionStrategy::marqsim_gc_rp().label().contains("RP"));
    }

    #[test]
    fn weight_validation() {
        assert!(TransitionStrategy::marqsim_gc().weights_are_valid());
        assert!(!TransitionStrategy::GateCancellation { qdrift_weight: 1.5 }.weights_are_valid());
        assert!(!TransitionStrategy::Combined {
            qdrift_weight: 0.5,
            gc_weight: 0.4,
            rp_weight: 0.3,
            perturbation: PerturbationConfig::default(),
        }
        .weights_are_valid());
    }
}
