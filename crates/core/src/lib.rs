//! The MarQSim compiler.
//!
//! This crate implements the paper's primary contribution: compiling a
//! quantum Hamiltonian simulation `exp(iHt)` by sampling the term sequence
//! from a Markov chain over the Hamiltonian terms, with the transition matrix
//! tuned by a min-cost-flow model so that consecutive terms cancel CNOT gates
//! while the qDRIFT error bound is preserved.
//!
//! The pipeline mirrors the paper section by section:
//!
//! * [`HttGraph`] (§4.1) — the Hamiltonian Term Transition Graph IR: a
//!   Hamiltonian paired with a validated transition matrix satisfying the
//!   Theorem 4.1 conditions.
//! * [`qdrift`] (§4.2, Corollary 4.1) — the rank-one qDRIFT transition
//!   matrix `P_qd`.
//! * [`gate_cancel`] (§5.1–5.2, Algorithm 2) — the CNOT-cancellation matrix
//!   `P_gc` obtained from the min-cost-flow model.
//! * [`perturb`] (§5.5) — the random-perturbation matrix `P_rp`.
//! * [`TransitionStrategy`] / [`transition`] (§5.3, Theorem 5.2) — convex
//!   combination of the above into the matrix the compiler samples from.
//! * [`Compiler`] (§4.2, Algorithm 1) — compilation as sampling: produces the
//!   term sequence, the synthesized circuit, and analytic gate statistics.
//! * [`baselines`] (§3) — first-order Trotter (deterministic and
//!   random-order) comparators.
//! * [`metrics`] — sequence-level gate accounting (the quantity the MCFP
//!   optimizes, Proposition 5.1) and unitary-fidelity evaluation.
//! * [`spectra`](markov_spectra) re-export — §5.4 convergence analysis.
//! * [`experiment`] / [`fitting`] (§6.1, Fig. 12) — sweep drivers and the
//!   data processing used to produce every figure of the evaluation.
//!
//! # Example
//!
//! ```
//! use marqsim_core::{Compiler, CompilerConfig, TransitionStrategy};
//! use marqsim_pauli::Hamiltonian;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ham = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY")?;
//! let config = CompilerConfig::new(std::f64::consts::FRAC_PI_4, 0.05)
//!     .with_strategy(TransitionStrategy::GateCancellation { qdrift_weight: 0.4 })
//!     .with_seed(7);
//! let result = Compiler::new(config).compile(&ham)?;
//! assert!(result.circuit.cnot_count() > 0);
//! assert_eq!(result.sequence.len(), result.num_samples);
//! # Ok(())
//! # }
//! ```

mod compiler;
mod error;
mod htt;
mod strategy;

pub mod baselines;
pub mod experiment;
pub mod fitting;
pub mod gate_cancel;
pub mod metrics;
pub mod perturb;
pub mod qdrift;
pub mod transition;

pub use compiler::{CompileResult, Compiler, CompilerConfig};
pub use error::CompileError;
pub use htt::HttGraph;
pub use strategy::TransitionStrategy;

/// Re-export of the pluggable min-cost-flow solver API: the engine, serve,
/// and bench layers select a backend through [`SolverKind`] without
/// depending on `marqsim-flow` directly.
pub use marqsim_flow::{MinCostFlowSolver, SolverKind, SpanningBasis};

/// Re-export of the spectra analysis used for §5.4 (Fig. 11 / Fig. 15).
pub use marqsim_markov::spectra as markov_spectra;
