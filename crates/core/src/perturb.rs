//! The random-perturbation transition matrix `P_rp` (§5.5).
//!
//! Adding a small random perturbation to the min-cost-flow edge costs and
//! averaging the resulting transition matrices spreads the eigenvectors of
//! the combined matrix, pushing its sub-dominant eigenvalues down (Fig. 15)
//! and therefore reducing the sampling variance — without touching the
//! capacity constraints that guarantee correctness.
//!
//! Following §6.1, each perturbation adds `+1` to the CNOT cost of an edge
//! independently with probability `1/2`, and `P_rp` is the average over a
//! configurable number of perturbed solutions (100 in the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use marqsim_markov::combine::combine;
use marqsim_markov::TransitionMatrix;
use marqsim_pauli::Hamiltonian;

use marqsim_flow::SpanningBasis;

use crate::gate_cancel::{
    cnot_cost_matrix, matrix_from_costs_warm_with, matrix_from_costs_with,
    matrix_from_costs_with_basis,
};
use crate::{CompileError, SolverKind};

/// Configuration of the random-perturbation matrix construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbationConfig {
    /// Number of independently perturbed min-cost-flow problems to average.
    pub samples: usize,
    /// Magnitude added to an edge cost when it is perturbed.
    pub magnitude: f64,
    /// Probability that any given edge cost is perturbed.
    pub probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PerturbationConfig {
    fn default() -> Self {
        PerturbationConfig {
            samples: 20,
            magnitude: 1.0,
            probability: 0.5,
            seed: 0,
        }
    }
}

/// Perturbs every off-diagonal cost in place: each entry gains
/// `config.magnitude` independently with probability `config.probability`,
/// drawing from `rng` in row-major order.
fn perturb_costs(costs: &mut [Vec<f64>], rng: &mut StdRng, config: &PerturbationConfig) {
    for (i, row) in costs.iter_mut().enumerate() {
        for (j, value) in row.iter_mut().enumerate() {
            if i != j && rng.gen::<f64>() < config.probability {
                *value += config.magnitude;
            }
        }
    }
}

/// Builds `P_rp`: the average of transition matrices obtained from randomly
/// perturbed min-cost-flow problems.
///
/// One RNG stream threads through all samples (sample `i`'s perturbation
/// depends on the draws of samples `0..i`), so this construction is
/// inherently serial. The parallel path — used by the engine's
/// `PerturbAverageWorkload` — seeds each sample independently via
/// [`perturbation_sample_seed`] / [`perturbed_matrix_sample`] instead; the
/// two constructions are both deterministic but produce *different*
/// (equally valid) matrices.
///
/// # Errors
///
/// Propagates failures of the underlying flow solves or of the final
/// averaging step.
pub fn random_perturbation_matrix(
    ham: &Hamiltonian,
    config: &PerturbationConfig,
) -> Result<TransitionMatrix, CompileError> {
    random_perturbation_matrix_with(ham, config, SolverKind::default())
}

/// Like [`random_perturbation_matrix`] with an explicit min-cost-flow
/// backend for the perturbed solves.
///
/// # Errors
///
/// Same contract as [`random_perturbation_matrix`].
pub fn random_perturbation_matrix_with(
    ham: &Hamiltonian,
    config: &PerturbationConfig,
    solver: SolverKind,
) -> Result<TransitionMatrix, CompileError> {
    assert!(config.samples > 0, "need at least one perturbation sample");
    let base_costs = cnot_cost_matrix(ham);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut matrices = Vec::with_capacity(config.samples);
    for _ in 0..config.samples {
        let mut costs = base_costs.clone();
        perturb_costs(&mut costs, &mut rng, config);
        let (matrix, _) = matrix_from_costs_with(ham, &costs, solver)?;
        matrices.push(matrix);
    }
    let weights = vec![1.0 / config.samples as f64; config.samples];
    combine(&matrices, &weights).map_err(CompileError::Combine)
}

/// Like [`random_perturbation_matrix_with`], solving the perturbed
/// problems as warm re-pivots from a [`SpanningBasis`]. The perturbation
/// only changes edge costs — the network topology is fixed by the
/// Hamiltonian — so every sample can reuse one basis:
///
/// * with `gc_basis = Some(..)` (the engine path: the basis saved by the
///   `P_gc` solve) every sample warm-starts from it;
/// * with `gc_basis = None` the first sample solves cold and exports its
///   basis, and the remaining `samples - 1` warm-start from that.
///
/// Also returns how many solves actually re-pivoted a basis (always `0`
/// for backends without warm support, which silently degrade to the cold
/// construction). Determinism is preserved: the result is a pure
/// function of `(ham, config, solver, gc_basis)`, and `gc_basis` itself
/// is a pure function of `(ham, solver)` when derived from the `P_gc`
/// solve — so cached and cache-disabled runs build identical matrices.
///
/// # Errors
///
/// Same contract as [`random_perturbation_matrix`].
pub fn random_perturbation_matrix_warm_with(
    ham: &Hamiltonian,
    config: &PerturbationConfig,
    solver: SolverKind,
    gc_basis: Option<&SpanningBasis>,
) -> Result<(TransitionMatrix, u64), CompileError> {
    assert!(config.samples > 0, "need at least one perturbation sample");
    let base_costs = cnot_cost_matrix(ham);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut matrices = Vec::with_capacity(config.samples);
    let mut warm_starts = 0u64;
    let mut first_basis: Option<SpanningBasis> = None;
    for _ in 0..config.samples {
        let mut costs = base_costs.clone();
        perturb_costs(&mut costs, &mut rng, config);
        let matrix = match gc_basis.or(first_basis.as_ref()) {
            Some(basis) => {
                let (matrix, flow, _) = matrix_from_costs_warm_with(ham, &costs, solver, basis)?;
                if flow.warm_start {
                    warm_starts += 1;
                }
                matrix
            }
            None => {
                let (matrix, _, exported) = matrix_from_costs_with_basis(ham, &costs, solver)?;
                first_basis = exported;
                matrix
            }
        };
        matrices.push(matrix);
    }
    let weights = vec![1.0 / config.samples as f64; config.samples];
    let averaged = combine(&matrices, &weights).map_err(CompileError::Combine)?;
    Ok((averaged, warm_starts))
}

/// The RNG seed of the `index`-th sample in the *parallel* `P_rp`
/// construction: a SplitMix64-style spread of `config.seed`, so each sample
/// owns an independent stream and any scheduler that solves sample `index`
/// with this seed produces the identical matrix.
pub fn perturbation_sample_seed(config: &PerturbationConfig, index: usize) -> u64 {
    config
        .seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1))
}

/// Solves one independently seeded perturbed min-cost-flow problem — the
/// unit of work of the parallel `P_rp` average. The output depends only on
/// `(ham, config, index)`, never on scheduling order; averaging samples
/// `0..config.samples` with equal weights yields the parallel `P_rp`.
///
/// # Errors
///
/// Propagates the flow-solve failure.
pub fn perturbed_matrix_sample(
    ham: &Hamiltonian,
    config: &PerturbationConfig,
    index: usize,
) -> Result<TransitionMatrix, CompileError> {
    perturbed_matrix_sample_with(ham, config, index, SolverKind::default())
}

/// Like [`perturbed_matrix_sample`] with an explicit min-cost-flow backend.
///
/// # Errors
///
/// Propagates the flow-solve failure.
pub fn perturbed_matrix_sample_with(
    ham: &Hamiltonian,
    config: &PerturbationConfig,
    index: usize,
    solver: SolverKind,
) -> Result<TransitionMatrix, CompileError> {
    let mut costs = cnot_cost_matrix(ham);
    let mut rng = StdRng::seed_from_u64(perturbation_sample_seed(config, index));
    perturb_costs(&mut costs, &mut rng, config);
    let (matrix, _) = matrix_from_costs_with(ham, &costs, solver)?;
    Ok(matrix)
}

/// Like [`perturbed_matrix_sample_with`], additionally exporting the
/// solve's optimal [`SpanningBasis`] when the backend supports it (`None`
/// otherwise). The matrix is bit-identical to the plain cold sample; the
/// basis lets the caller warm-start the *other* samples of the same
/// average — the engine's parallel `P_rp` workload solves sample `0`
/// through this and re-pivots samples `1..` from the returned basis.
///
/// # Errors
///
/// Propagates the flow-solve failure.
pub fn perturbed_matrix_sample_with_basis(
    ham: &Hamiltonian,
    config: &PerturbationConfig,
    index: usize,
    solver: SolverKind,
) -> Result<(TransitionMatrix, Option<SpanningBasis>), CompileError> {
    let mut costs = cnot_cost_matrix(ham);
    let mut rng = StdRng::seed_from_u64(perturbation_sample_seed(config, index));
    perturb_costs(&mut costs, &mut rng, config);
    let (matrix, _, basis) = matrix_from_costs_with_basis(ham, &costs, solver)?;
    Ok((matrix, basis))
}

/// Like [`perturbed_matrix_sample_with`], warm-starting the flow solve
/// from a [`SpanningBasis`] saved by an earlier solve for the same
/// Hamiltonian (the perturbation only changes costs, never the network
/// topology, so any basis for `ham` matches). Returns the sample matrix
/// and whether the basis was actually re-pivoted (`false` on the cold
/// fallback — mismatched basis or a backend without warm support).
///
/// The matrix depends only on `(ham, config, index, solver, basis)` —
/// warm sampling stays exactly as deterministic as cold sampling as long
/// as the caller derives `basis` deterministically (the engine derives
/// it from the `P_gc` solve, itself a pure function of `(ham, solver)`).
///
/// # Errors
///
/// Propagates the flow-solve failure — warm and cold solves classify
/// errors identically.
pub fn perturbed_matrix_sample_warm_with(
    ham: &Hamiltonian,
    config: &PerturbationConfig,
    index: usize,
    solver: SolverKind,
    basis: &SpanningBasis,
) -> Result<(TransitionMatrix, bool), CompileError> {
    let mut costs = cnot_cost_matrix(ham);
    let mut rng = StdRng::seed_from_u64(perturbation_sample_seed(config, index));
    perturb_costs(&mut costs, &mut rng, config);
    let (matrix, flow, _) = matrix_from_costs_warm_with(ham, &costs, solver, basis)?;
    Ok((matrix, flow.warm_start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate_cancel::gate_cancellation_matrix;
    use crate::qdrift::qdrift_matrix;
    use marqsim_markov::combine::combine;
    use marqsim_markov::spectra::spectrum;

    fn example() -> Hamiltonian {
        // Example 5.3 of the paper.
        Hamiltonian::parse("1.0 IIIZY + 1.0 XXIII + 0.7 ZXZYI + 0.5 IIZZX + 0.3 XXYYZ").unwrap()
    }

    #[test]
    fn preserves_the_stationary_distribution() {
        let ham = example();
        let p_rp = random_perturbation_matrix(&ham, &PerturbationConfig::default()).unwrap();
        assert!(p_rp.preserves_distribution(&ham.stationary_distribution(), 1e-8));
    }

    #[test]
    fn is_deterministic_given_a_seed() {
        let ham = example();
        let config = PerturbationConfig {
            samples: 5,
            seed: 9,
            ..Default::default()
        };
        let a = random_perturbation_matrix(&ham, &config).unwrap();
        let b = random_perturbation_matrix(&ham, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn differs_from_the_unperturbed_gate_cancellation_matrix() {
        let ham = example();
        let p_gc = gate_cancellation_matrix(&ham).unwrap();
        let p_rp = random_perturbation_matrix(
            &ham,
            &PerturbationConfig {
                samples: 10,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let max_diff = (0..ham.num_terms())
            .flat_map(|i| (0..ham.num_terms()).map(move |j| (i, j)))
            .map(|(i, j)| (p_gc.prob(i, j) - p_rp.prob(i, j)).abs())
            .fold(0.0, f64::max);
        assert!(max_diff > 1e-3, "perturbation should change the matrix");
    }

    #[test]
    fn parallel_samples_are_independent_and_deterministic() {
        let ham = example();
        let config = PerturbationConfig {
            samples: 4,
            seed: 21,
            ..Default::default()
        };
        // Distinct samples get distinct seeds; the same sample twice is
        // bit-identical (the property the engine's parallel average rests
        // on), and averaging preserves the stationary distribution exactly
        // like the serial construction.
        assert_ne!(
            perturbation_sample_seed(&config, 0),
            perturbation_sample_seed(&config, 1)
        );
        let a = perturbed_matrix_sample(&ham, &config, 2).unwrap();
        let b = perturbed_matrix_sample(&ham, &config, 2).unwrap();
        assert_eq!(a, b);
        let matrices: Vec<_> = (0..config.samples)
            .map(|i| perturbed_matrix_sample(&ham, &config, i).unwrap())
            .collect();
        let weights = vec![1.0 / config.samples as f64; config.samples];
        let averaged = combine(&matrices, &weights).unwrap();
        assert!(averaged.preserves_distribution(&ham.stationary_distribution(), 1e-8));
    }

    #[test]
    fn perturbed_combination_has_smaller_subdominant_mass() {
        // The §6.4 observation: replacing part of the P_gc weight with P_rp
        // lowers the sub-dominant spectrum (faster convergence).
        let ham = example();
        let pi = ham.stationary_distribution();
        let p_qd = qdrift_matrix(&ham);
        let p_gc = gate_cancellation_matrix(&ham).unwrap();
        let p_rp = random_perturbation_matrix(
            &ham,
            &PerturbationConfig {
                samples: 30,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let without = combine(&[p_qd.clone(), p_gc.clone()], &[0.4, 0.6]).unwrap();
        let with = combine(&[p_qd, p_gc, p_rp], &[0.4, 0.3, 0.3]).unwrap();
        assert!(without.preserves_distribution(&pi, 1e-8));
        assert!(with.preserves_distribution(&pi, 1e-8));
        let mass_without = spectrum(&without).subdominant_mass();
        let mass_with = spectrum(&with).subdominant_mass();
        assert!(
            mass_with <= mass_without + 1e-9,
            "perturbation should not increase the sub-dominant mass ({mass_with} vs {mass_without})"
        );
    }
}
