//! Data processing for the evaluation figures (§6.1, Fig. 12).
//!
//! The raw data of every figure is a cloud of `(accuracy, gate count)` points
//! clustered by the target precision `ε`. The paper averages each cluster and
//! fits `y = a + exp(b·x + c)` so that configurations can be compared at the
//! same accuracy. This module provides:
//!
//! * [`cluster_mean_std`] — per-cluster mean and standard deviation,
//! * [`ExponentialFit`] — the `a + exp(bx + c)` least-squares fit,
//! * [`interpolate_at`] — monotone linear interpolation used when a full fit
//!   is unnecessary (and by the reduction summaries).

/// Mean and (population) standard deviation of a slice.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Groups `(key, value)` pairs by key (exact equality of the `f64` key bits
/// is not required — keys within `tol` are clustered together) and returns
/// `(key, mean, std)` per cluster, sorted by key.
pub fn cluster_mean_std(points: &[(f64, f64)], tol: f64) -> Vec<(f64, f64, f64)> {
    let mut clusters: Vec<(f64, Vec<f64>)> = Vec::new();
    for &(key, value) in points {
        match clusters.iter_mut().find(|(k, _)| (*k - key).abs() <= tol) {
            Some((_, values)) => values.push(value),
            None => clusters.push((key, vec![value])),
        }
    }
    clusters.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
    clusters
        .into_iter()
        .map(|(k, values)| {
            let (mean, std) = mean_std(&values);
            (k, mean, std)
        })
        .collect()
}

/// The exponential fit `y = a + exp(b·x + c)` used in Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Vertical offset.
    pub a: f64,
    /// Exponential rate.
    pub b: f64,
    /// Exponential offset.
    pub c: f64,
    /// Residual sum of squares of the fit.
    pub rss: f64,
}

impl ExponentialFit {
    /// Evaluates the fitted curve at `x`.
    pub fn evaluate(&self, x: f64) -> f64 {
        self.a + (self.b * x + self.c).exp()
    }
}

/// Fits `y = a + exp(b·x + c)` by scanning the rate `b` over a grid and
/// solving the remaining linear least-squares problem (`y = a + k·e^{bx}`
/// with `k = e^c`) in closed form for each candidate.
///
/// Returns `None` when fewer than three points are supplied or no candidate
/// produces a positive `k`.
pub fn fit_exponential(points: &[(f64, f64)]) -> Option<ExponentialFit> {
    if points.len() < 3 {
        return None;
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let x_min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let x_max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (x_max - x_min).max(1e-9);

    let mut best: Option<ExponentialFit> = None;
    // Candidate rates cover gentle to steep growth over the data span, both
    // signs.
    for i in 1..=400 {
        let magnitude = 20.0 * i as f64 / 400.0 / span;
        for b in [magnitude, -magnitude] {
            // Linear least squares for y = a + k e^{bx}.
            let e: Vec<f64> = xs.iter().map(|&x| (b * (x - x_min)).exp()).collect();
            let n = xs.len() as f64;
            let se: f64 = e.iter().sum();
            let sy: f64 = ys.iter().sum();
            let see: f64 = e.iter().map(|v| v * v).sum();
            let sey: f64 = e.iter().zip(ys.iter()).map(|(v, y)| v * y).sum();
            let det = n * see - se * se;
            if det.abs() < 1e-12 {
                continue;
            }
            let a = (sy * see - se * sey) / det;
            let k = (n * sey - se * sy) / det;
            if k <= 0.0 {
                continue;
            }
            let rss: f64 = xs
                .iter()
                .zip(ys.iter())
                .map(|(&x, &y)| {
                    let pred = a + k * (b * (x - x_min)).exp();
                    (pred - y) * (pred - y)
                })
                .sum();
            // Convert k e^{b(x - x_min)} into e^{bx + c}.
            let c = k.ln() - b * x_min;
            let candidate = ExponentialFit { a, b, c, rss };
            if best.as_ref().map(|f| rss < f.rss).unwrap_or(true) {
                best = Some(candidate);
            }
        }
    }
    best
}

/// Linear interpolation of `y` at `x` on a piecewise-linear curve given by
/// `(x, y)` points (sorted internally). Clamps to the end points outside the
/// data range. Returns `None` for an empty input.
pub fn interpolate_at(points: &[(f64, f64)], x: f64) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let mut sorted: Vec<(f64, f64)> = points.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
    if x <= sorted[0].0 {
        return Some(sorted[0].1);
    }
    if x >= sorted[sorted.len() - 1].0 {
        return Some(sorted[sorted.len() - 1].1);
    }
    for w in sorted.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x0 <= x && x <= x1 {
            if (x1 - x0).abs() < 1e-15 {
                return Some((y0 + y1) / 2.0);
            }
            let frac = (x - x0) / (x1 - x0);
            return Some(y0 + frac * (y1 - y0));
        }
    }
    Some(sorted[sorted.len() - 1].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn clustering_groups_nearby_keys() {
        let points = vec![
            (0.99, 10.0),
            (0.9901, 12.0),
            (0.995, 20.0),
            (0.995, 22.0),
            (0.999, 30.0),
        ];
        let clusters = cluster_mean_std(&points, 1e-3);
        assert_eq!(clusters.len(), 3);
        assert!((clusters[0].1 - 11.0).abs() < 1e-9);
        assert!((clusters[1].1 - 21.0).abs() < 1e-9);
        assert!((clusters[2].2 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_fit_recovers_known_parameters() {
        let (a, b, c) = (100.0, 8.0, -2.0);
        let points: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = 0.97 + 0.0015 * i as f64;
                (x, a + (b * x + c).exp())
            })
            .collect();
        let fit = fit_exponential(&points).unwrap();
        for &(x, y) in &points {
            let rel = (fit.evaluate(x) - y).abs() / y;
            assert!(rel < 0.05, "poor fit at {x}: {} vs {y}", fit.evaluate(x));
        }
    }

    #[test]
    fn exponential_fit_requires_three_points() {
        assert!(fit_exponential(&[(0.0, 1.0), (1.0, 2.0)]).is_none());
    }

    #[test]
    fn interpolation_is_exact_on_data_points_and_clamps_outside() {
        let points = vec![(1.0, 10.0), (2.0, 20.0), (3.0, 40.0)];
        assert!((interpolate_at(&points, 2.0).unwrap() - 20.0).abs() < 1e-12);
        assert!((interpolate_at(&points, 1.5).unwrap() - 15.0).abs() < 1e-12);
        assert!((interpolate_at(&points, 0.0).unwrap() - 10.0).abs() < 1e-12);
        assert!((interpolate_at(&points, 9.0).unwrap() - 40.0).abs() < 1e-12);
        assert!(interpolate_at(&[], 1.0).is_none());
    }

    #[test]
    fn interpolation_handles_unsorted_input() {
        let points = vec![(3.0, 40.0), (1.0, 10.0), (2.0, 20.0)];
        assert!((interpolate_at(&points, 2.5).unwrap() - 30.0).abs() < 1e-12);
    }
}
