//! Compiler error type.

use std::fmt;

use marqsim_flow::bipartite::BipartiteError;
use marqsim_markov::combine::CombineError;
use marqsim_markov::TransitionError;

/// Errors produced by the MarQSim compiler.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The requested precision or evolution time is invalid (non-positive,
    /// NaN, …).
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// The constructed transition matrix failed validation.
    Transition(TransitionError),
    /// Combining transition matrices failed.
    Combine(CombineError),
    /// The min-cost-flow model could not be solved.
    Flow(BipartiteError),
    /// The final transition matrix violates a Theorem 4.1 condition.
    TheoremViolation {
        /// Which condition failed.
        condition: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CompileError::Transition(e) => write!(f, "invalid transition matrix: {e}"),
            CompileError::Combine(e) => write!(f, "transition matrix combination failed: {e}"),
            CompileError::Flow(e) => write!(f, "min-cost flow model failed: {e}"),
            CompileError::TheoremViolation { condition } => {
                write!(f, "transition matrix violates theorem 4.1: {condition}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<TransitionError> for CompileError {
    fn from(e: TransitionError) -> Self {
        CompileError::Transition(e)
    }
}

impl From<CombineError> for CompileError {
    fn from(e: CombineError) -> Self {
        CompileError::Combine(e)
    }
}

impl From<BipartiteError> for CompileError {
    fn from(e: BipartiteError) -> Self {
        CompileError::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CompileError::InvalidConfig {
            reason: "epsilon must be positive".to_string(),
        };
        assert!(e.to_string().contains("epsilon"));
        let t = CompileError::TheoremViolation {
            condition: "strong connectivity",
        };
        assert!(t.to_string().contains("strong connectivity"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let te = TransitionError::Empty;
        let ce: CompileError = te.into();
        assert!(matches!(ce, CompileError::Transition(_)));
    }
}
