//! Algorithm 1: compilation as sampling from the Markov chain.

use marqsim_circuit::{cancellation, synthesis, Circuit, GateStats};
use marqsim_markov::sample::ChainSampler;
use marqsim_markov::TransitionMatrix;
use marqsim_pauli::{Hamiltonian, PauliString};

use crate::metrics::{merge_consecutive, sequence_stats, SequenceStats};
use crate::{CompileError, HttGraph, TransitionStrategy};

/// Configuration of a [`Compiler`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerConfig {
    /// Evolution time `t` of the simulation `exp(iHt)`.
    pub time: f64,
    /// Target algorithmic precision `ε`; the sample count is
    /// `N = ⌈2 λ² t² / ε⌉` (Algorithm 1, line 2).
    pub epsilon: f64,
    /// How to build the transition matrix.
    pub strategy: TransitionStrategy,
    /// RNG seed for the sampling step.
    pub seed: u64,
    /// Optional override of the sample count (used by ablation experiments);
    /// when `None` the qDRIFT formula is used.
    pub sample_count_override: Option<usize>,
    /// Whether to synthesize the gate-level circuit (set to `false` for
    /// large sweeps that only need sequence statistics / fidelity).
    pub synthesize_circuit: bool,
    /// Whether to run the peephole cancellation pass on the synthesized
    /// circuit (the paper's baseline always applies gate cancellation).
    pub optimize_circuit: bool,
}

impl CompilerConfig {
    /// Creates a configuration with the default strategy
    /// ([`TransitionStrategy::marqsim_gc_rp`]) and seed 0.
    pub fn new(time: f64, epsilon: f64) -> Self {
        CompilerConfig {
            time,
            epsilon,
            strategy: TransitionStrategy::default(),
            seed: 0,
            sample_count_override: None,
            synthesize_circuit: true,
            optimize_circuit: true,
        }
    }

    /// Sets the transition-matrix strategy.
    pub fn with_strategy(mut self, strategy: TransitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of sampling steps.
    pub fn with_sample_count(mut self, n: usize) -> Self {
        self.sample_count_override = Some(n);
        self
    }

    /// Disables gate-level circuit synthesis (sequence statistics only).
    pub fn without_circuit(mut self) -> Self {
        self.synthesize_circuit = false;
        self
    }
}

/// The output of a compilation.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The sampled term indices, one per sampling step (length
    /// [`Self::num_samples`]). Indices refer to [`Self::hamiltonian`].
    pub sequence: Vec<usize>,
    /// The sequence with consecutive repeats merged into
    /// `(index, multiplicity)` segments.
    pub merged_sequence: Vec<(usize, usize)>,
    /// The rotation angle applied per sample, `λ t / N`.
    pub angle_per_sample: f64,
    /// Number of sampling steps `N`.
    pub num_samples: usize,
    /// `λ = Σ_j |h_j|`.
    pub lambda: f64,
    /// The Hamiltonian the indices refer to (dominant terms split if needed).
    pub hamiltonian: Hamiltonian,
    /// The transition matrix that was sampled (shared with the `HttGraph`
    /// it came from — no per-compile row copy).
    pub transition: std::sync::Arc<TransitionMatrix>,
    /// The synthesized circuit (empty when
    /// [`CompilerConfig::synthesize_circuit`] is `false`).
    pub circuit: Circuit,
    /// Gate statistics of the synthesized circuit (all zeros when synthesis
    /// is disabled).
    pub circuit_stats: GateStats,
    /// Sequence-level gate statistics (the paper's accounting model).
    pub stats: SequenceStats,
}

impl CompileResult {
    /// The term sequence as `(PauliString, angle)` pairs, with merged
    /// multiplicities folded into the angles and coefficient signs applied.
    pub fn rotation_sequence(&self) -> Vec<(PauliString, f64)> {
        self.merged_sequence
            .iter()
            .map(|&(idx, mult)| {
                let term = self.hamiltonian.term(idx);
                (
                    term.string.clone(),
                    term.coefficient.signum() * self.angle_per_sample * mult as f64,
                )
            })
            .collect()
    }
}

/// The MarQSim compiler (Algorithm 1).
#[derive(Debug, Clone)]
pub struct Compiler {
    config: CompilerConfig,
}

impl Compiler {
    /// Creates a compiler with the given configuration.
    pub fn new(config: CompilerConfig) -> Self {
        Compiler { config }
    }

    /// Borrow of the configuration.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    fn validate_config(&self) -> Result<(), CompileError> {
        let cfg = &self.config;
        if !(cfg.time.is_finite() && cfg.time > 0.0) {
            return Err(CompileError::InvalidConfig {
                reason: format!("evolution time must be positive, got {}", cfg.time),
            });
        }
        if !(cfg.epsilon.is_finite() && cfg.epsilon > 0.0) {
            return Err(CompileError::InvalidConfig {
                reason: format!("target precision must be positive, got {}", cfg.epsilon),
            });
        }
        Ok(())
    }

    /// Compiles `exp(iHt)` for the given Hamiltonian.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the configuration is invalid or the
    /// transition matrix cannot be constructed.
    pub fn compile(&self, ham: &Hamiltonian) -> Result<CompileResult, CompileError> {
        self.validate_config()?;
        // Step 1: build the HTT graph (splits dominant terms if needed).
        let htt = HttGraph::build(ham, &self.config.strategy)?;
        self.compile_with_htt(&htt)
    }

    /// Compiles against a pre-built [`HttGraph`], skipping transition-matrix
    /// construction (steps 2–4 of Algorithm 1).
    ///
    /// The graph already embodies a transition strategy, so
    /// [`CompilerConfig::strategy`] is ignored on this path. This is the
    /// entry point the `marqsim-engine` transition cache uses: the HTT graph
    /// — whose min-cost-flow solve dominates the compile time — is built
    /// once per (Hamiltonian, strategy) and shared across every shot and
    /// sweep point, while sampling stays governed by the per-compile seed.
    /// For any fixed graph and configuration the output is identical to
    /// [`Compiler::compile`] on the Hamiltonian and strategy the graph was
    /// built from.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the configuration is invalid.
    pub fn compile_with_htt(&self, htt: &HttGraph) -> Result<CompileResult, CompileError> {
        self.validate_config()?;
        let cfg = &self.config;
        let working = htt.hamiltonian().clone();
        let lambda = working.lambda();

        // Step 2: N = ceil(2 λ² t² / ε).
        let num_samples = cfg.sample_count_override.unwrap_or_else(|| {
            ((2.0 * lambda * lambda * cfg.time * cfg.time) / cfg.epsilon).ceil() as usize
        });
        let num_samples = num_samples.max(1);
        let angle_per_sample = lambda * cfg.time / num_samples as f64;

        // Step 3: sample the Markov chain.
        let sampler = ChainSampler::new(htt.transition_matrix(), htt.stationary_distribution());
        let sequence = sampler.sample_trajectory_seeded(num_samples, cfg.seed);
        let merged_sequence = merge_consecutive(&sequence);
        let stats = sequence_stats(&working, &sequence);

        // Step 4: synthesize the circuit (optional).
        let (circuit, circuit_stats) = if cfg.synthesize_circuit {
            let mut circuit = Circuit::new(working.num_qubits());
            for &(idx, mult) in &merged_sequence {
                let term = working.term(idx);
                let angle = term.coefficient.signum() * angle_per_sample * mult as f64;
                synthesis::append_pauli_rotation(&mut circuit, &term.string, angle);
            }
            let circuit = if cfg.optimize_circuit {
                cancellation::cancel_gates(&circuit).0
            } else {
                circuit
            };
            let stats = circuit.stats();
            (circuit, stats)
        } else {
            (Circuit::new(working.num_qubits()), GateStats::default())
        };

        Ok(CompileResult {
            sequence,
            merged_sequence,
            angle_per_sample,
            num_samples,
            lambda,
            hamiltonian: working,
            transition: htt.transition_matrix_arc(),
            circuit,
            circuit_stats,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_fidelity;
    use marqsim_sim::{exact, fidelity, UnitaryAccumulator};

    fn example() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap()
    }

    fn config(strategy: TransitionStrategy) -> CompilerConfig {
        CompilerConfig::new(std::f64::consts::FRAC_PI_4, 0.05)
            .with_strategy(strategy)
            .with_seed(11)
    }

    #[test]
    fn sample_count_follows_the_qdrift_formula() {
        let ham = example();
        let cfg = config(TransitionStrategy::QDrift);
        let result = Compiler::new(cfg.clone()).compile(&ham).unwrap();
        let lambda = ham.lambda();
        let expected =
            ((2.0 * lambda * lambda * cfg.time * cfg.time) / cfg.epsilon).ceil() as usize;
        assert_eq!(result.num_samples, expected);
        assert_eq!(result.sequence.len(), expected);
        assert!((result.angle_per_sample - lambda * cfg.time / expected as f64).abs() < 1e-12);
    }

    #[test]
    fn compilation_is_deterministic_for_a_seed() {
        let ham = example();
        let a = Compiler::new(config(TransitionStrategy::marqsim_gc()))
            .compile(&ham)
            .unwrap();
        let b = Compiler::new(config(TransitionStrategy::marqsim_gc()))
            .compile(&ham)
            .unwrap();
        assert_eq!(a.sequence, b.sequence);
        let c = Compiler::new(config(TransitionStrategy::marqsim_gc()).with_seed(12))
            .compile(&ham)
            .unwrap();
        assert_ne!(a.sequence, c.sequence);
    }

    #[test]
    fn qdrift_empirical_distribution_matches_pi() {
        let ham = example();
        let cfg = config(TransitionStrategy::QDrift).with_sample_count(50_000);
        let result = Compiler::new(cfg).compile(&ham).unwrap();
        let pi = ham.stationary_distribution();
        let mut counts = [0usize; 4];
        for &s in &result.sequence {
            counts[s] += 1;
        }
        for (c, p) in counts.iter().zip(pi.iter()) {
            let freq = *c as f64 / result.sequence.len() as f64;
            assert!((freq - p).abs() < 0.01, "{freq} vs {p}");
        }
    }

    #[test]
    fn markov_sampling_also_matches_pi_marginally() {
        // Even with the GC-tuned chain, the long-run marginal distribution of
        // sampled terms must stay π (that is what Theorem 4.1 guarantees).
        let ham = example();
        let cfg = config(TransitionStrategy::marqsim_gc()).with_sample_count(50_000);
        let result = Compiler::new(cfg).compile(&ham).unwrap();
        let pi = ham.stationary_distribution();
        let mut counts = [0usize; 4];
        for &s in &result.sequence {
            counts[s] += 1;
        }
        for (c, p) in counts.iter().zip(pi.iter()) {
            let freq = *c as f64 / result.sequence.len() as f64;
            assert!((freq - p).abs() < 0.015, "{freq} vs {p}");
        }
    }

    #[test]
    fn gc_strategy_reduces_cnot_count_vs_baseline() {
        let ham = Hamiltonian::parse(
            "0.9 ZZZZI + 0.8 ZZIZI + 0.7 XXIII + 0.6 IYYII + 0.5 IIZZZ + 0.4 XYXYI + 0.3 IZIZZ + 0.2 YYIII",
        )
        .unwrap();
        let n = 4000;
        let baseline = Compiler::new(
            config(TransitionStrategy::QDrift)
                .with_sample_count(n)
                .without_circuit(),
        )
        .compile(&ham)
        .unwrap();
        let gc = Compiler::new(
            config(TransitionStrategy::marqsim_gc())
                .with_sample_count(n)
                .without_circuit(),
        )
        .compile(&ham)
        .unwrap();
        assert!(
            gc.stats.cnot < baseline.stats.cnot,
            "GC ({}) should beat baseline ({})",
            gc.stats.cnot,
            baseline.stats.cnot
        );
    }

    #[test]
    fn synthesized_circuit_unitary_matches_rotation_sequence() {
        let ham = example();
        let cfg = config(TransitionStrategy::marqsim_gc()).with_sample_count(40);
        let result = Compiler::new(cfg).compile(&ham).unwrap();
        // Unitary from the gate-level circuit.
        let mut via_gates = UnitaryAccumulator::new(ham.num_qubits());
        via_gates.apply_circuit(&result.circuit);
        // Unitary from the rotation sequence.
        let mut via_rotations = UnitaryAccumulator::new(ham.num_qubits());
        via_rotations.apply_sequence(&result.rotation_sequence());
        let f = fidelity::fidelity(&via_gates.to_matrix(), &via_rotations.to_matrix());
        assert!(f > 1.0 - 1e-9, "fidelity {f}");
    }

    #[test]
    fn compiled_circuit_approximates_the_exact_evolution() {
        let ham = Hamiltonian::parse("0.6 XZ + 0.4 ZY + 0.3 XX").unwrap();
        let cfg = CompilerConfig::new(0.5, 0.01)
            .with_strategy(TransitionStrategy::marqsim_gc())
            .with_seed(3)
            .without_circuit();
        let result = Compiler::new(cfg).compile(&ham).unwrap();
        let f = evaluate_fidelity(&result.hamiltonian, 0.5, &result.sequence);
        assert!(f > 0.98, "fidelity {f}");
        // And the exact unitary of the original Hamiltonian is the same
        // operator as the split one.
        let u_orig = exact::exact_unitary(&ham, 0.5);
        let u_split = exact::exact_unitary(&result.hamiltonian, 0.5);
        assert!(fidelity::fidelity(&u_orig, &u_split) > 1.0 - 1e-10);
    }

    #[test]
    fn compile_with_htt_matches_compile_from_scratch() {
        let ham = example();
        let cfg = config(TransitionStrategy::marqsim_gc());
        let htt = HttGraph::build(&ham, &TransitionStrategy::marqsim_gc()).unwrap();
        let via_htt = Compiler::new(cfg.clone()).compile_with_htt(&htt).unwrap();
        let direct = Compiler::new(cfg).compile(&ham).unwrap();
        assert_eq!(via_htt.sequence, direct.sequence);
        assert_eq!(via_htt.num_samples, direct.num_samples);
        assert_eq!(via_htt.stats, direct.stats);
        assert_eq!(via_htt.transition.rows(), direct.transition.rows());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ham = example();
        assert!(matches!(
            Compiler::new(CompilerConfig::new(-1.0, 0.05)).compile(&ham),
            Err(CompileError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Compiler::new(CompilerConfig::new(1.0, 0.0)).compile(&ham),
            Err(CompileError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn without_circuit_skips_synthesis() {
        let ham = example();
        let result = Compiler::new(config(TransitionStrategy::QDrift).without_circuit())
            .compile(&ham)
            .unwrap();
        assert!(result.circuit.is_empty());
        assert_eq!(result.circuit_stats, GateStats::default());
        assert!(result.stats.cnot > 0);
    }

    #[test]
    fn dominant_term_hamiltonian_compiles_after_automatic_splitting() {
        let ham = Hamiltonian::parse("3.0 XXII + 0.5 ZZII + 0.5 XYZI").unwrap();
        let result = Compiler::new(config(TransitionStrategy::marqsim_gc()).with_sample_count(100))
            .compile(&ham)
            .unwrap();
        assert_eq!(result.hamiltonian.num_terms(), 4);
        assert!((result.lambda - ham.lambda()).abs() < 1e-12);
    }
}
