//! Sequence-level gate accounting and fidelity evaluation.
//!
//! The paper's evaluation metric is the number of CNOT gates in the compiled
//! circuit *after* gate cancellation between consecutive Pauli-rotation
//! snippets, together with the algorithmic accuracy (unitary fidelity). The
//! min-cost-flow objective is exactly the expected per-transition CNOT count
//! (Proposition 5.1), so the experiments account for gates at the sequence
//! level with the same pairwise-cancellation model used as the MCFP cost:
//!
//! * consecutive identical terms merge into one rotation (zero extra gates),
//! * each junction keeps `cnot_count_between(prev, next)` CNOTs,
//! * basis-change gates on matched qubits cancel (2 gates per matched `X`,
//!   4 per matched `Y`),
//! * each merged segment contributes one `Rz`.
//!
//! Gate-level circuits (synthesized by [`crate::Compiler`]) agree with this
//! model up to the ladder-ordering freedom discussed in the `marqsim-circuit`
//! cancellation pass.

use marqsim_pauli::algebra::cnot_count_between;
use marqsim_pauli::{Hamiltonian, PauliOp, PauliString};
use marqsim_sim::{exact, fidelity, UnitaryAccumulator};

/// Gate statistics of a sampled term sequence under the sequence-level
/// cancellation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SequenceStats {
    /// CNOT count after junction cancellation.
    pub cnot: usize,
    /// Single-qubit gate count (basis changes + `Rz`) after junction
    /// cancellation.
    pub single_qubit: usize,
    /// Number of `Rz` rotations (one per merged segment).
    pub rz: usize,
    /// Total gate count.
    pub total: usize,
    /// Number of merged segments (consecutive identical samples count once).
    pub segments: usize,
}

impl SequenceStats {
    /// Relative CNOT reduction versus a baseline (fraction in `[0, 1]`).
    pub fn cnot_reduction_vs(&self, baseline: &SequenceStats) -> f64 {
        if baseline.cnot == 0 {
            return 0.0;
        }
        1.0 - self.cnot as f64 / baseline.cnot as f64
    }

    /// Relative total-gate reduction versus a baseline.
    pub fn total_reduction_vs(&self, baseline: &SequenceStats) -> f64 {
        if baseline.total == 0 {
            return 0.0;
        }
        1.0 - self.total as f64 / baseline.total as f64
    }
}

/// Collapses consecutive repeats of the same term index into
/// `(index, multiplicity)` segments.
pub fn merge_consecutive(sequence: &[usize]) -> Vec<(usize, usize)> {
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for &idx in sequence {
        match merged.last_mut() {
            Some((last, count)) if *last == idx => *count += 1,
            _ => merged.push((idx, 1)),
        }
    }
    merged
}

/// Basis-change gate count of a standalone Pauli-rotation circuit
/// (2 per `X`, 4 per `Y`, 0 per `Z`), excluding the `Rz`.
fn basis_gate_count(p: &PauliString) -> usize {
    p.support()
        .map(|(_, op)| match op {
            PauliOp::X => 2,
            PauliOp::Y => 4,
            _ => 0,
        })
        .sum()
}

/// Basis-change gates cancelled at the junction between two rotations: the
/// matched qubits' trailing and leading basis changes annihilate.
fn basis_gates_cancelled(prev: &PauliString, next: &PauliString) -> usize {
    prev.support()
        .filter(|&(q, op)| next.op(q) == op)
        .map(|(_, op)| match op {
            PauliOp::X => 2,
            PauliOp::Y => 4,
            _ => 0,
        })
        .sum()
}

/// Computes the sequence-level gate statistics of a sampled term sequence.
///
/// # Panics
///
/// Panics if an index in `sequence` is out of range for `ham`.
pub fn sequence_stats(ham: &Hamiltonian, sequence: &[usize]) -> SequenceStats {
    let merged = merge_consecutive(sequence);
    if merged.is_empty() {
        return SequenceStats::default();
    }
    let string = |idx: usize| &ham.term(idx).string;
    let ladder = |p: &PauliString| p.weight().saturating_sub(1);

    let mut cnot = ladder(string(merged[0].0)) + ladder(string(merged[merged.len() - 1].0));
    let mut single = 0usize;
    let mut rz = 0usize;

    for (k, &(idx, _mult)) in merged.iter().enumerate() {
        let p = string(idx);
        if !p.is_identity() {
            rz += 1;
        }
        single += basis_gate_count(p);
        if k + 1 < merged.len() {
            let next = string(merged[k + 1].0);
            cnot += cnot_count_between(p, next);
            single -= basis_gates_cancelled(p, next);
        }
    }
    single += rz;
    SequenceStats {
        cnot,
        single_qubit: single,
        rz,
        total: cnot + single,
        segments: merged.len(),
    }
}

/// Evaluates the unitary fidelity of a sampled sequence against the exact
/// evolution `exp(iHt)`.
///
/// Each sample contributes a rotation angle `λ t / N`; merged repeats
/// contribute proportionally larger angles. The cost is `O(4^n)` per merged
/// segment, so this is intended for Hamiltonians of at most ~10 qubits.
///
/// # Panics
///
/// Panics if an index in `sequence` is out of range.
pub fn evaluate_fidelity(ham: &Hamiltonian, t: f64, sequence: &[usize]) -> f64 {
    let n = ham.num_qubits();
    let lambda = ham.lambda();
    let num_samples = sequence.len().max(1);
    let tau = lambda * t / num_samples as f64;
    let mut acc = UnitaryAccumulator::new(n);
    for (idx, mult) in merge_consecutive(sequence) {
        // Sign of the coefficient matters: qDRIFT samples by |h| and applies
        // the rotation with the sign of h.
        let sign = ham.term(idx).coefficient.signum();
        acc.apply_pauli_rotation(&ham.term(idx).string, sign * tau * mult as f64);
    }
    let exact_u = exact::exact_unitary(ham, t);
    fidelity::fidelity_with_matrix(&acc, &exact_u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham() -> Hamiltonian {
        Hamiltonian::parse("1.0 ZZZZ + 0.5 XZXZ + 0.4 XXYY + 0.1 IIIZ").unwrap()
    }

    #[test]
    fn merging_collapses_repeats() {
        assert_eq!(
            merge_consecutive(&[0, 0, 1, 2, 2, 2, 0]),
            vec![(0, 2), (1, 1), (2, 3), (0, 1)]
        );
        assert!(merge_consecutive(&[]).is_empty());
    }

    #[test]
    fn single_term_sequence_counts_one_rotation() {
        let h = ham();
        let stats = sequence_stats(&h, &[0]);
        // ZZZZ standalone: 2 * (4 - 1) CNOTs, no basis gates, one Rz.
        assert_eq!(stats.cnot, 6);
        assert_eq!(stats.rz, 1);
        assert_eq!(stats.single_qubit, 1);
        assert_eq!(stats.segments, 1);
    }

    #[test]
    fn repeated_identical_samples_cost_no_more_than_one() {
        let h = ham();
        let once = sequence_stats(&h, &[0]);
        let many = sequence_stats(&h, &[0, 0, 0, 0]);
        assert_eq!(once, many);
    }

    #[test]
    fn alternating_matched_terms_cost_less_than_unmatched() {
        let h = ham();
        // ZZZZ / XZXZ share two Z's; ZZZZ / XXYY share nothing.
        let matched = sequence_stats(&h, &[0, 1, 0, 1]);
        let unmatched = sequence_stats(&h, &[0, 2, 0, 2]);
        assert!(matched.cnot < unmatched.cnot);
    }

    #[test]
    fn sequence_stats_match_hand_computation_for_figure_6_pair() {
        let h = ham();
        // ZZZZ then XZXZ: boundary ladders 3 + 3, junction = 2 (two matched Zs).
        let stats = sequence_stats(&h, &[0, 1]);
        assert_eq!(stats.cnot, 3 + 2 + 3);
        // Basis gates: XZXZ has two X's = 4 H gates, none matched; 2 Rz.
        assert_eq!(stats.single_qubit, 4 + 2);
        assert_eq!(stats.total, stats.cnot + stats.single_qubit);
    }

    #[test]
    fn identity_terms_contribute_no_gates() {
        let h = Hamiltonian::parse("0.5 II + 0.5 ZZ").unwrap();
        let stats = sequence_stats(&h, &[0, 0, 0]);
        assert_eq!(stats.cnot, 0);
        assert_eq!(stats.rz, 0);
        assert_eq!(stats.total, 0);
    }

    #[test]
    fn reductions_are_computed_correctly() {
        let a = SequenceStats {
            cnot: 80,
            single_qubit: 40,
            rz: 10,
            total: 120,
            segments: 10,
        };
        let b = SequenceStats {
            cnot: 100,
            single_qubit: 50,
            rz: 10,
            total: 150,
            segments: 10,
        };
        assert!((a.cnot_reduction_vs(&b) - 0.2).abs() < 1e-12);
        assert!((a.total_reduction_vs(&b) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_fine_trotter_like_sequence_is_high() {
        let h = Hamiltonian::parse("0.6 XZ + 0.4 ZY + 0.2 YX").unwrap();
        let t = 0.3;
        // Round-robin sequence with many samples approximates exp(iHt) well.
        let n = 600;
        let sequence: Vec<usize> = (0..n).map(|k| k % 3).collect();
        // Round-robin visits terms uniformly, but qDRIFT weighting requires
        // visits proportional to |h|; build such a sequence instead.
        let pi = h.stationary_distribution();
        let mut weighted = Vec::new();
        for k in 0..n {
            let u = (k as f64 + 0.5) / n as f64;
            let mut acc = 0.0;
            for (i, p) in pi.iter().enumerate() {
                acc += p;
                if u <= acc {
                    weighted.push(i);
                    break;
                }
            }
        }
        let f_weighted = evaluate_fidelity(&h, t, &weighted);
        assert!(f_weighted > 0.99, "fidelity {f_weighted}");
        let _ = sequence;
    }

    #[test]
    fn fidelity_decreases_with_fewer_samples() {
        let h = Hamiltonian::parse("0.8 XZ + 0.7 ZY + 0.5 YX + 0.3 XX").unwrap();
        let t = 0.8;
        let pi = h.stationary_distribution();
        let stratified = |n: usize| -> Vec<usize> {
            (0..n)
                .map(|k| {
                    let u = (k as f64 * 0.61803398875) % 1.0;
                    let mut acc = 0.0;
                    for (i, p) in pi.iter().enumerate() {
                        acc += p;
                        if u <= acc {
                            return i;
                        }
                    }
                    pi.len() - 1
                })
                .collect()
        };
        let coarse = evaluate_fidelity(&h, t, &stratified(20));
        let fine = evaluate_fidelity(&h, t, &stratified(2000));
        assert!(fine > coarse);
        assert!(fine > 0.995);
    }

    #[test]
    fn negative_coefficients_rotate_in_the_opposite_direction() {
        let plus = Hamiltonian::parse("0.5 XZ").unwrap();
        let minus = Hamiltonian::parse("-0.5 XZ").unwrap();
        let t = 0.4;
        // A single-term Hamiltonian is compiled exactly by any sequence that
        // visits the term; fidelity must be ~1 in both cases only when the
        // sign is honoured.
        let f_plus = evaluate_fidelity(&plus, t, &[0, 0, 0, 0]);
        let f_minus = evaluate_fidelity(&minus, t, &[0, 0, 0, 0]);
        assert!(f_plus > 0.999_999);
        assert!(f_minus > 0.999_999);
    }
}
