//! The qDRIFT transition matrix (Corollary 4.1).
//!
//! qDRIFT samples each term independently from `π_j = |h_j| / λ`. In the
//! MarQSim framework this is the rank-one transition matrix whose every row
//! equals `π`. It trivially satisfies both Theorem 4.1 conditions (all
//! entries are positive, and `π P = π`), and it is the component that
//! guarantees strong connectivity of any combined matrix (§5.3).

use marqsim_markov::TransitionMatrix;
use marqsim_pauli::Hamiltonian;

/// Builds `P_qd`, the qDRIFT transition matrix of a Hamiltonian.
///
/// # Example
///
/// ```
/// use marqsim_core::qdrift::qdrift_matrix;
/// use marqsim_pauli::Hamiltonian;
///
/// # fn main() -> Result<(), marqsim_pauli::ParseError> {
/// let ham = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY")?;
/// let p = qdrift_matrix(&ham);
/// assert!((p.prob(2, 0) - 0.5).abs() < 1e-12);
/// assert!(p.is_strongly_connected());
/// # Ok(())
/// # }
/// ```
pub fn qdrift_matrix(ham: &Hamiltonian) -> TransitionMatrix {
    TransitionMatrix::from_stationary(&ham.stationary_distribution())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_markov::spectra::spectrum;

    fn example() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap()
    }

    #[test]
    fn matches_corollary_4_1_example() {
        let p = qdrift_matrix(&example());
        let expected = [0.5, 0.25, 0.2, 0.05];
        for i in 0..4 {
            for j in 0..4 {
                assert!((p.prob(i, j) - expected[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn satisfies_theorem_4_1() {
        let ham = example();
        let p = qdrift_matrix(&ham);
        let pi = ham.stationary_distribution();
        assert!(p.is_strongly_connected());
        assert!(p.preserves_distribution(&pi, 1e-12));
    }

    #[test]
    fn spectrum_is_rank_one() {
        let p = qdrift_matrix(&example());
        let s = spectrum(&p);
        assert!((s.values[0] - 1.0).abs() < 1e-8);
        assert!(s.subdominant() < 1e-8);
    }

    #[test]
    fn negative_coefficients_use_absolute_values() {
        let ham = Hamiltonian::parse("-1.0 XX + 0.5 ZZ + -0.5 XY").unwrap();
        let p = qdrift_matrix(&ham);
        assert!((p.prob(0, 0) - 0.5).abs() < 1e-12);
        assert!((p.prob(0, 1) - 0.25).abs() < 1e-12);
        assert!((p.prob(0, 2) - 0.25).abs() < 1e-12);
    }
}
