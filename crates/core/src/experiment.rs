//! Experiment drivers for the evaluation section.
//!
//! Every figure of the paper boils down to the same loop: compile a benchmark
//! with one of the three configurations at a sweep of target precisions,
//! repeat a few times with different seeds, record gate counts and (when the
//! system is small enough) the unitary fidelity, then average per-precision
//! clusters and compare at matched accuracy. This module packages that loop
//! so the `marqsim-bench` binaries stay thin.

use marqsim_pauli::Hamiltonian;

use crate::fitting::{cluster_mean_std, interpolate_at, mean_std};
use crate::metrics::{evaluate_fidelity, SequenceStats};
use crate::{CompileError, Compiler, CompilerConfig, HttGraph, TransitionStrategy};

/// The default precision sweep used throughout the evaluation (§6.1).
pub const DEFAULT_EPSILONS: [f64; 7] = [0.1, 0.067, 0.05, 0.04, 0.033, 0.0286, 0.025];

/// One compiled data point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPoint {
    /// Target precision `ε`.
    pub epsilon: f64,
    /// Seed used for this repetition.
    pub seed: u64,
    /// Number of sampling steps.
    pub num_samples: usize,
    /// Sequence-level gate statistics.
    pub stats: SequenceStats,
    /// Unitary fidelity against the exact evolution, when evaluated.
    pub fidelity: Option<f64>,
}

/// A full sweep for one (benchmark, strategy) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Label of the strategy that produced this sweep.
    pub label: String,
    /// All the raw points.
    pub points: Vec<ExperimentPoint>,
}

/// Configuration of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Evolution time `t`.
    pub time: f64,
    /// The precisions to sweep.
    pub epsilons: Vec<f64>,
    /// Number of random repetitions per precision.
    pub repeats: usize,
    /// Base RNG seed (each repetition offsets it).
    pub base_seed: u64,
    /// Whether to evaluate the unitary fidelity (exponential in qubit count).
    pub evaluate_fidelity: bool,
}

impl SweepConfig {
    /// A sweep mirroring the paper's setup for a given evolution time.
    pub fn paper_default(time: f64) -> Self {
        SweepConfig {
            time,
            epsilons: DEFAULT_EPSILONS.to_vec(),
            repeats: 20,
            base_seed: 1,
            evaluate_fidelity: true,
        }
    }

    /// A cheap sweep for tests and smoke runs.
    pub fn quick(time: f64) -> Self {
        SweepConfig {
            time,
            epsilons: vec![0.1, 0.05],
            repeats: 3,
            base_seed: 1,
            evaluate_fidelity: false,
        }
    }
}

/// The seed used for repetition `rep` of the `eps_idx`-th precision of a
/// sweep. Exposed so parallel sweep executors (the `marqsim-engine` crate)
/// can reproduce the serial seed stream exactly: any scheduler that computes
/// each point with this seed yields byte-identical results to [`run_sweep`].
pub fn point_seed(config: &SweepConfig, eps_idx: usize, rep: usize) -> u64 {
    config
        .base_seed
        .wrapping_add((eps_idx * config.repeats + rep) as u64 * 7919)
}

/// Compiles one sweep point against a pre-built HTT graph.
///
/// This is the unit of work both the serial [`run_sweep`] loop and the
/// engine's parallel executor share: the output depends only on
/// `(htt, config, epsilon, seed)`, never on scheduling order.
///
/// # Errors
///
/// Propagates the compilation failure.
pub fn compile_point(
    htt: &HttGraph,
    config: &SweepConfig,
    epsilon: f64,
    seed: u64,
) -> Result<ExperimentPoint, CompileError> {
    let compiler_config = CompilerConfig::new(config.time, epsilon)
        .with_seed(seed)
        .without_circuit();
    let result = Compiler::new(compiler_config).compile_with_htt(htt)?;
    let fidelity = if config.evaluate_fidelity {
        Some(evaluate_fidelity(
            &result.hamiltonian,
            config.time,
            &result.sequence,
        ))
    } else {
        None
    };
    Ok(ExperimentPoint {
        epsilon,
        seed,
        num_samples: result.num_samples,
        stats: result.stats,
        fidelity,
    })
}

/// Runs a sweep of one strategy over one Hamiltonian, serially.
///
/// The HTT graph (and therefore the min-cost-flow solve behind `P_gc`) is
/// built once and reused for every point; the per-point RNG streams come
/// from [`point_seed`].
///
/// # Errors
///
/// Propagates the first compilation failure.
pub fn run_sweep(
    ham: &Hamiltonian,
    strategy: &TransitionStrategy,
    config: &SweepConfig,
) -> Result<SweepResult, CompileError> {
    let htt = HttGraph::build(ham, strategy)?;
    let mut points = Vec::new();
    for (eps_idx, &epsilon) in config.epsilons.iter().enumerate() {
        for rep in 0..config.repeats {
            let seed = point_seed(config, eps_idx, rep);
            points.push(compile_point(&htt, config, epsilon, seed)?);
        }
    }
    Ok(SweepResult {
        label: strategy.label(),
        points,
    })
}

/// Per-precision aggregate of a sweep: mean CNOT count, mean total gates,
/// mean fidelity (if evaluated), and the standard deviation of the fidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSummary {
    /// Target precision of the cluster.
    pub epsilon: f64,
    /// Mean CNOT count.
    pub mean_cnot: f64,
    /// Mean single-qubit gate count.
    pub mean_single_qubit: f64,
    /// Mean total gate count.
    pub mean_total: f64,
    /// Mean fidelity (0 when not evaluated).
    pub mean_fidelity: f64,
    /// Standard deviation of the fidelity across repetitions.
    pub std_fidelity: f64,
    /// Standard deviation of the CNOT count across repetitions.
    pub std_cnot: f64,
}

impl SweepResult {
    /// Aggregates the raw points per precision.
    pub fn cluster_summaries(&self) -> Vec<ClusterSummary> {
        let mut epsilons: Vec<f64> = self.points.iter().map(|p| p.epsilon).collect();
        epsilons.sort_by(|a, b| a.partial_cmp(b).expect("finite epsilon"));
        epsilons.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        epsilons
            .into_iter()
            .map(|eps| {
                let cluster: Vec<&ExperimentPoint> = self
                    .points
                    .iter()
                    .filter(|p| (p.epsilon - eps).abs() < 1e-12)
                    .collect();
                let cnots: Vec<f64> = cluster.iter().map(|p| p.stats.cnot as f64).collect();
                let singles: Vec<f64> = cluster
                    .iter()
                    .map(|p| p.stats.single_qubit as f64)
                    .collect();
                let totals: Vec<f64> = cluster.iter().map(|p| p.stats.total as f64).collect();
                let fidelities: Vec<f64> = cluster.iter().filter_map(|p| p.fidelity).collect();
                let (mean_cnot, std_cnot) = mean_std(&cnots);
                let (mean_single_qubit, _) = mean_std(&singles);
                let (mean_total, _) = mean_std(&totals);
                let (mean_fidelity, std_fidelity) = mean_std(&fidelities);
                ClusterSummary {
                    epsilon: eps,
                    mean_cnot,
                    mean_single_qubit,
                    mean_total,
                    mean_fidelity,
                    std_fidelity,
                    std_cnot,
                }
            })
            .collect()
    }

    /// The `(fidelity, CNOT)` curve (cluster means), usable with
    /// [`interpolate_at`] to compare configurations at matched accuracy.
    pub fn accuracy_cnot_curve(&self) -> Vec<(f64, f64)> {
        let raw: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter_map(|p| p.fidelity.map(|f| (f, p.stats.cnot as f64)))
            .collect();
        cluster_mean_std(&raw, 5e-4)
            .into_iter()
            .map(|(f, mean, _)| (f, mean))
            .collect()
    }
}

/// Comparison of a strategy against the baseline at matched sample counts
/// (same `ε` clusters): the relative reduction in CNOT and total gates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionSummary {
    /// Mean CNOT-count reduction over the ε sweep (fraction).
    pub cnot_reduction: f64,
    /// Mean single-qubit-gate reduction over the ε sweep (fraction).
    pub single_qubit_reduction: f64,
    /// Mean total-gate reduction over the ε sweep (fraction).
    pub total_reduction: f64,
}

/// Computes gate reductions of `optimized` relative to `baseline`, pairing
/// clusters with the same target precision.
pub fn reduction_summary(baseline: &SweepResult, optimized: &SweepResult) -> ReductionSummary {
    let base = baseline.cluster_summaries();
    let opt = optimized.cluster_summaries();
    let mut cnot_reductions = Vec::new();
    let mut single_reductions = Vec::new();
    let mut total_reductions = Vec::new();
    for b in &base {
        if let Some(o) = opt.iter().find(|o| (o.epsilon - b.epsilon).abs() < 1e-12) {
            if b.mean_cnot > 0.0 {
                cnot_reductions.push(1.0 - o.mean_cnot / b.mean_cnot);
            }
            if b.mean_single_qubit > 0.0 {
                single_reductions.push(1.0 - o.mean_single_qubit / b.mean_single_qubit);
            }
            if b.mean_total > 0.0 {
                total_reductions.push(1.0 - o.mean_total / b.mean_total);
            }
        }
    }
    ReductionSummary {
        cnot_reduction: mean_std(&cnot_reductions).0,
        single_qubit_reduction: mean_std(&single_reductions).0,
        total_reduction: mean_std(&total_reductions).0,
    }
}

/// CNOT reduction at matched *accuracy* rather than matched ε: interpolates
/// both accuracy→CNOT curves at `target_fidelity`. Returns `None` when either
/// sweep lacks fidelity data.
pub fn cnot_reduction_at_accuracy(
    baseline: &SweepResult,
    optimized: &SweepResult,
    target_fidelity: f64,
) -> Option<f64> {
    let base_curve = baseline.accuracy_cnot_curve();
    let opt_curve = optimized.accuracy_cnot_curve();
    let base_cnot = interpolate_at(&base_curve, target_fidelity)?;
    let opt_cnot = interpolate_at(&opt_curve, target_fidelity)?;
    if base_cnot <= 0.0 {
        return None;
    }
    Some(1.0 - opt_cnot / base_cnot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham() -> Hamiltonian {
        Hamiltonian::parse(
            "0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ + 0.4 XYXY + 0.3 IZIZ + 0.2 YYII",
        )
        .unwrap()
    }

    #[test]
    fn quick_sweep_produces_expected_point_count() {
        let sweep = run_sweep(
            &ham(),
            &TransitionStrategy::QDrift,
            &SweepConfig::quick(0.5),
        )
        .unwrap();
        assert_eq!(sweep.points.len(), 2 * 3);
        assert_eq!(sweep.label, "Baseline");
        for p in &sweep.points {
            assert!(p.num_samples > 0);
            assert!(p.fidelity.is_none());
            assert!(p.stats.cnot > 0);
        }
    }

    #[test]
    fn cluster_summaries_group_by_epsilon() {
        let sweep = run_sweep(
            &ham(),
            &TransitionStrategy::QDrift,
            &SweepConfig::quick(0.5),
        )
        .unwrap();
        let clusters = sweep.cluster_summaries();
        assert_eq!(clusters.len(), 2);
        // Smaller epsilon means more samples and therefore more gates.
        assert!(clusters[0].epsilon < clusters[1].epsilon);
        assert!(clusters[0].mean_cnot > clusters[1].mean_cnot);
    }

    #[test]
    fn gc_sweep_reduces_cnots_at_matched_epsilon() {
        let config = SweepConfig {
            time: 0.5,
            epsilons: vec![0.05],
            repeats: 5,
            base_seed: 3,
            evaluate_fidelity: false,
        };
        let baseline = run_sweep(&ham(), &TransitionStrategy::QDrift, &config).unwrap();
        let gc = run_sweep(&ham(), &TransitionStrategy::marqsim_gc(), &config).unwrap();
        let summary = reduction_summary(&baseline, &gc);
        assert!(
            summary.cnot_reduction > 0.05,
            "expected a CNOT reduction, got {}",
            summary.cnot_reduction
        );
    }

    #[test]
    fn fidelity_evaluation_can_be_enabled() {
        let small = Hamiltonian::parse("0.6 XZ + 0.4 ZY + 0.3 XX").unwrap();
        let config = SweepConfig {
            time: 0.4,
            epsilons: vec![0.05],
            repeats: 2,
            base_seed: 1,
            evaluate_fidelity: true,
        };
        let sweep = run_sweep(&small, &TransitionStrategy::QDrift, &config).unwrap();
        for p in &sweep.points {
            let f = p.fidelity.unwrap();
            assert!(f > 0.9 && f <= 1.0 + 1e-9);
        }
        assert!(!sweep.accuracy_cnot_curve().is_empty());
    }

    #[test]
    fn reduction_at_matched_accuracy_is_computable() {
        let small = Hamiltonian::parse("0.7 ZZZ + 0.6 ZIZ + 0.5 XXI + 0.4 IYY + 0.3 XYX + 0.2 IZZ")
            .unwrap();
        let config = SweepConfig {
            time: 0.4,
            epsilons: vec![0.1, 0.05, 0.033],
            repeats: 3,
            base_seed: 5,
            evaluate_fidelity: true,
        };
        let baseline = run_sweep(&small, &TransitionStrategy::QDrift, &config).unwrap();
        let gc = run_sweep(&small, &TransitionStrategy::marqsim_gc(), &config).unwrap();
        let target = 0.995;
        let reduction = cnot_reduction_at_accuracy(&baseline, &gc, target);
        assert!(reduction.is_some());
    }
}
