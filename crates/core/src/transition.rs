//! Building the compiler's transition matrix from a strategy.

use marqsim_flow::SpanningBasis;
use marqsim_markov::combine::combine_refs;
use marqsim_markov::TransitionMatrix;
use marqsim_pauli::Hamiltonian;

use crate::gate_cancel::{gate_cancellation_matrix_with, gate_cancellation_matrix_with_basis};
use crate::perturb::{random_perturbation_matrix_warm_with, random_perturbation_matrix_with};
use crate::qdrift::qdrift_matrix;
use crate::{CompileError, SolverKind, TransitionStrategy};

/// Builds the transition matrix prescribed by `strategy` for `ham`.
///
/// The returned matrix always satisfies both Theorem 4.1 conditions for the
/// distribution `π = |h| / λ` of `ham` (this is re-verified before
/// returning). Hamiltonians with a dominant term (`π_i > 1/2`) must be split
/// with [`Hamiltonian::split_dominant_terms`] before calling this function;
/// the [`crate::Compiler`] handles that automatically.
///
/// # Errors
///
/// Returns a [`CompileError`] if any component matrix cannot be built, the
/// weights are invalid, or the final matrix fails a Theorem 4.1 check.
pub fn build_transition_matrix(
    ham: &Hamiltonian,
    strategy: &TransitionStrategy,
) -> Result<TransitionMatrix, CompileError> {
    build_transition_matrix_with_components(ham, strategy, None)
}

/// Returns `true` if `strategy` needs the gate-cancellation component `P_gc`
/// (every variant except pure qDRIFT).
pub fn strategy_uses_gate_cancellation(strategy: &TransitionStrategy) -> bool {
    !matches!(strategy, TransitionStrategy::QDrift)
}

/// Like [`build_transition_matrix`], but reuses a previously solved `P_gc`
/// when one is supplied instead of re-solving the min-cost-flow model — the
/// dominant cost of transition-matrix construction. `P_gc` depends only on
/// the Hamiltonian (not on the strategy weights), so a caller compiling the
/// same Hamiltonian under several strategies — or at many sweep points — can
/// solve it once; the `marqsim-engine` transition cache is that caller.
///
/// `cached_gc` must have been produced by
/// [`gate_cancellation_matrix`](crate::gate_cancel::gate_cancellation_matrix)
/// for this exact `ham`; the Theorem 4.1 validation of the final matrix is
/// performed either way.
///
/// # Errors
///
/// Same contract as [`build_transition_matrix`].
pub fn build_transition_matrix_with_components(
    ham: &Hamiltonian,
    strategy: &TransitionStrategy,
    cached_gc: Option<&TransitionMatrix>,
) -> Result<TransitionMatrix, CompileError> {
    build_transition_matrix_solved_by(ham, strategy, cached_gc, SolverKind::default())
}

/// Like [`build_transition_matrix_with_components`] with an explicit
/// min-cost-flow backend for every flow solve the strategy performs (the
/// `P_gc` model when no cached component is supplied, and each perturbed
/// `P_rp` sample).
///
/// # Errors
///
/// Same contract as [`build_transition_matrix`].
pub fn build_transition_matrix_solved_by(
    ham: &Hamiltonian,
    strategy: &TransitionStrategy,
    cached_gc: Option<&TransitionMatrix>,
    solver: SolverKind,
) -> Result<TransitionMatrix, CompileError> {
    if !strategy.weights_are_valid() {
        return Err(CompileError::InvalidConfig {
            reason: format!("invalid combination weights in {strategy:?}"),
        });
    }
    // A supplied component is borrowed straight into the combination — no
    // clone of the n × n matrix — so component reuse stays cheap even for
    // thousand-term Hamiltonians.
    let mut solved_gc = None;
    let p_gc: Option<&TransitionMatrix> = if strategy_uses_gate_cancellation(strategy) {
        Some(match cached_gc {
            Some(m) => m,
            None => solved_gc.insert(gate_cancellation_matrix_with(ham, solver)?),
        })
    } else {
        None
    };
    let p_qd = qdrift_matrix(ham);
    let matrix = match strategy {
        TransitionStrategy::QDrift => p_qd,
        TransitionStrategy::GateCancellation { qdrift_weight } => {
            let p_gc = p_gc.expect("GC strategies carry a P_gc component");
            combine_refs(&[&p_qd, p_gc], &[*qdrift_weight, 1.0 - *qdrift_weight])?
        }
        TransitionStrategy::GateCancellationRandomPerturbation {
            qdrift_weight,
            gc_weight,
            perturbation,
        } => {
            let p_gc = p_gc.expect("GC strategies carry a P_gc component");
            let p_rp = random_perturbation_matrix_with(ham, perturbation, solver)?;
            let rp_weight = 1.0 - qdrift_weight - gc_weight;
            combine_refs(
                &[&p_qd, p_gc, &p_rp],
                &[*qdrift_weight, *gc_weight, rp_weight],
            )?
        }
        TransitionStrategy::Combined {
            qdrift_weight,
            gc_weight,
            rp_weight,
            perturbation,
        } => {
            let p_gc = p_gc.expect("GC strategies carry a P_gc component");
            let p_rp = random_perturbation_matrix_with(ham, perturbation, solver)?;
            combine_refs(
                &[&p_qd, p_gc, &p_rp],
                &[*qdrift_weight, *gc_weight, *rp_weight],
            )?
        }
    };

    let pi = ham.stationary_distribution();
    validate_theorem_4_1(&matrix, &pi)?;
    Ok(matrix)
}

/// Like [`build_transition_matrix_solved_by`], but solving every `P_rp`
/// perturbation sample as a **warm re-pivot** from the `P_gc` spanning
/// basis instead of a cold solve — the perturbation changes only edge
/// costs, so the `P_gc` basis always matches the samples' networks.
///
/// `cached_gc` optionally supplies the previously solved `P_gc` matrix
/// *and* the basis its solve exported (the engine's transition cache
/// persists both). When absent, `P_gc` is solved here and its basis
/// feeds the samples directly — the basis is a pure function of
/// `(ham, solver)`, so cached and uncached builds produce identical
/// matrices. Backends without warm support (`ssp`) degrade to cold
/// solves throughout and report zero warm starts, leaving the default
/// pipeline byte-identical to [`build_transition_matrix_solved_by`].
///
/// Returns the matrix and the number of flow solves that actually
/// re-pivoted a saved basis.
///
/// # Errors
///
/// Same contract as [`build_transition_matrix`].
pub fn build_transition_matrix_solved_by_warm(
    ham: &Hamiltonian,
    strategy: &TransitionStrategy,
    cached_gc: Option<(&TransitionMatrix, Option<&SpanningBasis>)>,
    solver: SolverKind,
) -> Result<(TransitionMatrix, u64), CompileError> {
    if !strategy.weights_are_valid() {
        return Err(CompileError::InvalidConfig {
            reason: format!("invalid combination weights in {strategy:?}"),
        });
    }
    let mut solved: Option<(TransitionMatrix, Option<SpanningBasis>)> = None;
    let (p_gc, gc_basis): (Option<&TransitionMatrix>, Option<&SpanningBasis>) =
        if strategy_uses_gate_cancellation(strategy) {
            match cached_gc {
                Some((matrix, basis)) => (Some(matrix), basis),
                None => {
                    let pair = solved.insert(gate_cancellation_matrix_with_basis(ham, solver)?);
                    (Some(&pair.0), pair.1.as_ref())
                }
            }
        } else {
            (None, None)
        };
    let p_qd = qdrift_matrix(ham);
    let mut warm_starts = 0u64;
    let matrix = match strategy {
        TransitionStrategy::QDrift => p_qd,
        TransitionStrategy::GateCancellation { qdrift_weight } => {
            let p_gc = p_gc.expect("GC strategies carry a P_gc component");
            combine_refs(&[&p_qd, p_gc], &[*qdrift_weight, 1.0 - *qdrift_weight])?
        }
        TransitionStrategy::GateCancellationRandomPerturbation {
            qdrift_weight,
            gc_weight,
            perturbation,
        } => {
            let p_gc = p_gc.expect("GC strategies carry a P_gc component");
            let (p_rp, warm) =
                random_perturbation_matrix_warm_with(ham, perturbation, solver, gc_basis)?;
            warm_starts += warm;
            let rp_weight = 1.0 - qdrift_weight - gc_weight;
            combine_refs(
                &[&p_qd, p_gc, &p_rp],
                &[*qdrift_weight, *gc_weight, rp_weight],
            )?
        }
        TransitionStrategy::Combined {
            qdrift_weight,
            gc_weight,
            rp_weight,
            perturbation,
        } => {
            let p_gc = p_gc.expect("GC strategies carry a P_gc component");
            let (p_rp, warm) =
                random_perturbation_matrix_warm_with(ham, perturbation, solver, gc_basis)?;
            warm_starts += warm;
            combine_refs(
                &[&p_qd, p_gc, &p_rp],
                &[*qdrift_weight, *gc_weight, *rp_weight],
            )?
        }
    };

    let pi = ham.stationary_distribution();
    validate_theorem_4_1(&matrix, &pi)?;
    Ok((matrix, warm_starts))
}

/// The Theorem 4.1 exit checks shared by every builder entry point.
fn validate_theorem_4_1(matrix: &TransitionMatrix, pi: &[f64]) -> Result<(), CompileError> {
    if !matrix.preserves_distribution(pi, 1e-7) {
        return Err(CompileError::TheoremViolation {
            condition: "stationary distribution preservation",
        });
    }
    if !matrix.is_strongly_connected() {
        return Err(CompileError::TheoremViolation {
            condition: "strong connectivity",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::PerturbationConfig;
    use marqsim_markov::spectra::spectrum;

    fn example() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap()
    }

    #[test]
    fn qdrift_strategy_reproduces_corollary_4_1() {
        let p = build_transition_matrix(&example(), &TransitionStrategy::QDrift).unwrap();
        assert!((p.prob(3, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marqsim_gc_reproduces_example_5_2() {
        let p = build_transition_matrix(&example(), &TransitionStrategy::marqsim_gc()).unwrap();
        // Equation (15).
        let expected = [
            [0.2, 0.4, 0.32, 0.08],
            [0.8, 0.1, 0.08, 0.02],
            [0.8, 0.1, 0.08, 0.02],
            [0.8, 0.1, 0.08, 0.02],
        ];
        for i in 0..4 {
            for j in 0..4 {
                assert!((p.prob(i, j) - expected[i][j]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn all_strategies_satisfy_theorem_4_1() {
        let ham = example();
        let pi = ham.stationary_distribution();
        let strategies = [
            TransitionStrategy::QDrift,
            TransitionStrategy::marqsim_gc(),
            TransitionStrategy::marqsim_gc_rp(),
            TransitionStrategy::Combined {
                qdrift_weight: 0.2,
                gc_weight: 0.4,
                rp_weight: 0.4,
                perturbation: PerturbationConfig::default(),
            },
        ];
        for s in strategies {
            let p = build_transition_matrix(&ham, &s).unwrap();
            assert!(p.is_strongly_connected(), "{s:?}");
            assert!(p.preserves_distribution(&pi, 1e-7), "{s:?}");
        }
    }

    #[test]
    fn cached_gc_component_gives_the_same_matrix() {
        let ham = example();
        let p_gc = crate::gate_cancel::gate_cancellation_matrix(&ham).unwrap();
        for strategy in [
            TransitionStrategy::marqsim_gc(),
            TransitionStrategy::marqsim_gc_rp(),
        ] {
            let fresh = build_transition_matrix(&ham, &strategy).unwrap();
            let reused =
                build_transition_matrix_with_components(&ham, &strategy, Some(&p_gc)).unwrap();
            assert_eq!(fresh.rows(), reused.rows(), "{strategy:?}");
        }
        assert!(!strategy_uses_gate_cancellation(
            &TransitionStrategy::QDrift
        ));
        assert!(strategy_uses_gate_cancellation(
            &TransitionStrategy::marqsim_gc()
        ));
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let err = build_transition_matrix(
            &example(),
            &TransitionStrategy::GateCancellation {
                qdrift_weight: -0.1,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::InvalidConfig { .. }));
    }

    #[test]
    fn higher_gc_weight_increases_subdominant_spectrum() {
        // §6.3: more P_gc means slower mixing (larger sub-dominant
        // eigenvalues) in exchange for more cancellation.
        let ham = Hamiltonian::parse("1.0 IIIZY + 1.0 XXIII + 0.7 ZXZYI + 0.5 IIZZX + 0.3 XXYYZ")
            .unwrap();
        let low = build_transition_matrix(
            &ham,
            &TransitionStrategy::GateCancellation { qdrift_weight: 0.8 },
        )
        .unwrap();
        let high = build_transition_matrix(
            &ham,
            &TransitionStrategy::GateCancellation { qdrift_weight: 0.2 },
        )
        .unwrap();
        assert!(
            spectrum(&high).subdominant_mass() > spectrum(&low).subdominant_mass(),
            "more Pgc should slow mixing"
        );
    }
}
