//! Deterministic and randomized Trotter baselines (§3.1–3.2).
//!
//! These comparators are not part of MarQSim itself, but the paper motivates
//! the framework against them and the examples/benches use them to show
//! where each approach sits:
//!
//! * [`trotter_sequence`] — first-order Trotter with a fixed term order
//!   repeated `r` times (Equation (6)).
//! * [`random_order_trotter_sequence`] — Childs et al. style: a fresh random
//!   permutation of the terms in every Trotter step.
//!
//! Both return term-index sequences plus the per-term angles, in the same
//! format the MarQSim metrics consume, so gate statistics and fidelity can be
//! compared apples-to-apples.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use marqsim_pauli::{Hamiltonian, PauliString};

/// A compiled baseline: the ordered rotations `(string, angle)` plus the
/// term-index sequence they came from.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Term indices in execution order (length `terms × steps`).
    pub sequence: Vec<usize>,
    /// Rotation angles, one per entry of `sequence`
    /// (`h_j · t / steps` for Trotter).
    pub angles: Vec<f64>,
    /// Number of Trotter steps used.
    pub steps: usize,
}

impl BaselineResult {
    /// The rotations as `(PauliString, angle)` pairs.
    pub fn rotation_sequence(&self, ham: &Hamiltonian) -> Vec<(PauliString, f64)> {
        self.sequence
            .iter()
            .zip(self.angles.iter())
            .map(|(&idx, &angle)| (ham.term(idx).string.clone(), angle))
            .collect()
    }
}

/// First-order Trotter with a caller-chosen term order, repeated `steps`
/// times: `(Π_j exp(i h_j H_j t / steps))^steps`.
///
/// # Panics
///
/// Panics if `steps == 0` or `order` is not a permutation of the term
/// indices.
pub fn trotter_sequence(
    ham: &Hamiltonian,
    t: f64,
    steps: usize,
    order: &[usize],
) -> BaselineResult {
    assert!(steps > 0, "need at least one Trotter step");
    assert_eq!(order.len(), ham.num_terms(), "order must cover every term");
    let mut seen = vec![false; ham.num_terms()];
    for &i in order {
        assert!(!seen[i], "order must be a permutation");
        seen[i] = true;
    }
    let mut sequence = Vec::with_capacity(steps * order.len());
    let mut angles = Vec::with_capacity(steps * order.len());
    for _ in 0..steps {
        for &idx in order {
            sequence.push(idx);
            angles.push(ham.term(idx).coefficient * t / steps as f64);
        }
    }
    BaselineResult {
        sequence,
        angles,
        steps,
    }
}

/// First-order Trotter in the Hamiltonian's natural term order.
pub fn trotter_sequence_natural(ham: &Hamiltonian, t: f64, steps: usize) -> BaselineResult {
    let order: Vec<usize> = (0..ham.num_terms()).collect();
    trotter_sequence(ham, t, steps, &order)
}

/// Randomized-order Trotter (Childs et al. [9]): every Trotter step uses a
/// fresh uniformly random permutation of the terms.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn random_order_trotter_sequence(
    ham: &Hamiltonian,
    t: f64,
    steps: usize,
    seed: u64,
) -> BaselineResult {
    assert!(steps > 0, "need at least one Trotter step");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sequence = Vec::with_capacity(steps * ham.num_terms());
    let mut angles = Vec::with_capacity(steps * ham.num_terms());
    let mut order: Vec<usize> = (0..ham.num_terms()).collect();
    for _ in 0..steps {
        order.shuffle(&mut rng);
        for &idx in &order {
            sequence.push(idx);
            angles.push(ham.term(idx).coefficient * t / steps as f64);
        }
    }
    BaselineResult {
        sequence,
        angles,
        steps,
    }
}

/// Evaluates the unitary fidelity of a baseline result against the exact
/// evolution (the baseline analogue of
/// [`crate::metrics::evaluate_fidelity`]).
pub fn evaluate_baseline_fidelity(ham: &Hamiltonian, t: f64, baseline: &BaselineResult) -> f64 {
    use marqsim_sim::{exact, fidelity, UnitaryAccumulator};
    let mut acc = UnitaryAccumulator::new(ham.num_qubits());
    for (&idx, &angle) in baseline.sequence.iter().zip(baseline.angles.iter()) {
        acc.apply_pauli_rotation(&ham.term(idx).string, angle);
    }
    let exact_u = exact::exact_unitary(ham, t);
    fidelity::fidelity_with_matrix(&acc, &exact_u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::sequence_stats;
    use marqsim_pauli::ordering;

    fn ham() -> Hamiltonian {
        Hamiltonian::parse("0.6 XZI + 0.4 ZYI + 0.3 XXZ + 0.2 IZZ").unwrap()
    }

    #[test]
    fn trotter_sequence_has_expected_shape() {
        let h = ham();
        let result = trotter_sequence_natural(&h, 0.5, 3);
        assert_eq!(result.sequence.len(), 12);
        assert_eq!(result.angles.len(), 12);
        // Angles of a given term are h_j t / steps.
        assert!((result.angles[0] - 0.6 * 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trotter_fidelity_improves_with_more_steps() {
        let h = ham();
        let t = 0.8;
        let coarse = evaluate_baseline_fidelity(&h, t, &trotter_sequence_natural(&h, t, 1));
        let fine = evaluate_baseline_fidelity(&h, t, &trotter_sequence_natural(&h, t, 20));
        assert!(fine > coarse);
        assert!(fine > 0.999);
    }

    #[test]
    fn random_order_trotter_is_seeded_and_valid() {
        let h = ham();
        let a = random_order_trotter_sequence(&h, 0.5, 4, 7);
        let b = random_order_trotter_sequence(&h, 0.5, 4, 7);
        assert_eq!(a.sequence, b.sequence);
        let c = random_order_trotter_sequence(&h, 0.5, 4, 8);
        assert_ne!(a.sequence, c.sequence);
        // Every step is a permutation of the terms.
        for step in 0..4 {
            let mut slice: Vec<usize> = a.sequence[step * 4..(step + 1) * 4].to_vec();
            slice.sort_unstable();
            assert_eq!(slice, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn random_order_trotter_reaches_good_fidelity() {
        let h = ham();
        let t = 0.6;
        let result = random_order_trotter_sequence(&h, t, 25, 3);
        let f = evaluate_baseline_fidelity(&h, t, &result);
        assert!(f > 0.999, "fidelity {f}");
    }

    #[test]
    fn greedy_ordering_reduces_trotter_cnot_cost() {
        // A deterministic ordering chosen for cancellation should not be
        // worse than the natural order under the sequence metric.
        let h = Hamiltonian::parse(
            "0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ + 0.4 XYXY + 0.3 IZIZ + 0.2 YYII",
        )
        .unwrap();
        let natural = trotter_sequence_natural(&h, 0.5, 10);
        let greedy_order = ordering::greedy_cancellation(&h);
        let greedy = trotter_sequence(&h, 0.5, 10, &greedy_order);
        let natural_stats = sequence_stats(&h, &natural.sequence);
        let greedy_stats = sequence_stats(&h, &greedy.sequence);
        assert!(greedy_stats.cnot <= natural_stats.cnot);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn non_permutation_order_is_rejected() {
        let h = ham();
        let _ = trotter_sequence(&h, 0.5, 1, &[0, 0, 1, 2]);
    }
}
