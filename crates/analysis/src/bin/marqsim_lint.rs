//! marqsim-lint: the workspace static-analysis CLI.
//!
//! ```text
//! cargo run -p marqsim-analysis --                 # lint the workspace
//! cargo run -p marqsim-analysis -- --deny-warnings # CI mode: notes fail too
//! cargo run -p marqsim-analysis -- --json report.json
//! cargo run -p marqsim-analysis -- --lint lock-order --lint panic-hygiene
//! cargo run -p marqsim-analysis -- --list
//! ```
//!
//! Exit codes: 0 clean (modulo `analysis/allow.toml`), 1 findings,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use marqsim_analysis::diag::Severity;
use marqsim_analysis::lint::{registry, run_lints};
use marqsim_analysis::{Allowlist, Workspace};

struct Options {
    root: PathBuf,
    json: Option<PathBuf>,
    deny_warnings: bool,
    lints: Vec<String>,
    list: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        // The binary lives two levels below the workspace root.
        root: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
        json: None,
        deny_warnings: false,
        lints: Vec::new(),
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                options.root = PathBuf::from(args.next().ok_or("--root requires a path argument")?);
            }
            "--json" => {
                options.json = Some(PathBuf::from(
                    args.next().ok_or("--json requires a path argument")?,
                ));
            }
            "--deny-warnings" => options.deny_warnings = true,
            "--lint" => {
                options
                    .lints
                    .push(args.next().ok_or("--lint requires a lint name")?);
            }
            "--list" => options.list = true,
            "--help" | "-h" => {
                println!(
                    "marqsim-lint: workspace static analysis\n\n\
                     options:\n  \
                     --root PATH        workspace root (default: this repo)\n  \
                     --json PATH        write the machine-readable report\n  \
                     --deny-warnings    exit non-zero on notes as well\n  \
                     --lint NAME        run only the named lint (repeatable)\n  \
                     --list             list available lints and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("marqsim-lint: {message}");
            return ExitCode::from(2);
        }
    };

    if options.list {
        for lint in registry() {
            println!("{:<18} {}", lint.name(), lint.description());
        }
        return ExitCode::SUCCESS;
    }

    let known: Vec<&'static str> = registry().iter().map(|l| l.name()).collect();
    for name in &options.lints {
        if !known.contains(&name.as_str()) {
            eprintln!(
                "marqsim-lint: unknown lint {name:?} (known: {})",
                known.join(", ")
            );
            return ExitCode::from(2);
        }
    }

    let workspace = match Workspace::load(&options.root) {
        Ok(workspace) => workspace,
        Err(error) => {
            eprintln!(
                "marqsim-lint: cannot load workspace at {}: {error}",
                options.root.display()
            );
            return ExitCode::from(2);
        }
    };

    let allow_path = options.root.join("analysis/allow.toml");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(list) => list,
            Err(error) => {
                eprintln!("marqsim-lint: {error}");
                return ExitCode::from(2);
            }
        },
        // No allowlist simply means no exceptions.
        Err(_) => Allowlist::default(),
    };

    let selected: Vec<&str> = options.lints.iter().map(String::as_str).collect();
    let report = run_lints(
        &workspace,
        &allowlist,
        (!selected.is_empty()).then_some(selected.as_slice()),
    );

    for diag in &report.diagnostics {
        // Allowed findings are visible in the JSON report but kept out of
        // the terminal stream — the point of the allowlist is a quiet run.
        if !diag.allowed {
            eprintln!("{diag}");
        }
    }

    if let Some(path) = &options.json {
        if let Err(error) = std::fs::write(path, report.to_json().render()) {
            eprintln!("marqsim-lint: cannot write {}: {error}", path.display());
            return ExitCode::from(2);
        }
    }

    let warnings = report
        .active_findings()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    let notes = report
        .active_findings()
        .filter(|d| d.severity == Severity::Note)
        .count();
    eprintln!(
        "marqsim-lint: {} files scanned, {warnings} warning(s), {notes} note(s)",
        report.files_scanned
    );

    let failing = warnings > 0 || (options.deny_warnings && notes > 0);
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
