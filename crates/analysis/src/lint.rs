//! The `Lint` trait, the registry, and the engine driver that runs every
//! lint over a loaded workspace and folds the allowlist in.

use crate::allow::Allowlist;
use crate::diag::{Diagnostic, Severity};
use crate::json::Json;
use crate::lints;
use crate::source::Workspace;

/// A single analysis pass. Implementations live in [`crate::lints`]; to
/// add one, implement this trait and add it to [`registry`] (see
/// `docs/analysis.md` for the walkthrough).
pub trait Lint {
    /// Stable kebab-case name used in diagnostics, `--lint` filters, and
    /// `allow.toml` entries.
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Scans the workspace, reporting findings into `sink`.
    fn check(&self, workspace: &Workspace, sink: &mut LintSink);
}

/// Collects findings and structured report sections from lints.
#[derive(Debug, Default)]
pub struct LintSink {
    pub diagnostics: Vec<Diagnostic>,
    /// Named JSON sections merged into the report — e.g. the lock-order
    /// lint contributes `lock_graph` so tooling can consume the
    /// reconstructed graph without re-parsing diagnostics.
    pub sections: Vec<(&'static str, Json)>,
}

impl LintSink {
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    pub fn section(&mut self, name: &'static str, value: Json) {
        self.sections.push((name, value));
    }
}

/// Every lint, in the order they run and report.
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(lints::lock_order::LockOrder),
        Box::new(lints::panic_hygiene::PanicHygiene),
        Box::new(lints::env_registry::EnvRegistry),
        Box::new(lints::telemetry_names::TelemetryNames),
        Box::new(lints::protocol_doc::ProtocolDoc),
    ]
}

/// The result of a full lint run.
#[derive(Debug)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub sections: Vec<(&'static str, Json)>,
    /// Files scanned, for the report header.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that should affect the exit code: anything not allowlisted.
    /// (Notes count — a stale allowlist entry is actionable drift.)
    pub fn active_findings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.allowed)
    }

    pub fn is_clean(&self) -> bool {
        self.active_findings().next().is_none()
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> Json {
        let diags = self
            .diagnostics
            .iter()
            .map(|d| {
                Json::obj([
                    ("lint", Json::str(d.lint)),
                    ("file", Json::str(&d.file)),
                    ("line", Json::num(d.line)),
                    ("col", Json::num(d.col)),
                    ("severity", Json::str(d.severity.as_str())),
                    ("allowed", Json::Bool(d.allowed)),
                    ("message", Json::str(&d.message)),
                ])
            })
            .collect();
        let mut pairs = vec![
            ("tool", Json::str("marqsim-lint")),
            ("files_scanned", Json::num(self.files_scanned as u32)),
            (
                "findings",
                Json::num(self.diagnostics.iter().filter(|d| !d.allowed).count() as u32),
            ),
            (
                "allowed",
                Json::num(self.diagnostics.iter().filter(|d| d.allowed).count() as u32),
            ),
            ("clean", Json::Bool(self.is_clean())),
            ("diagnostics", Json::Arr(diags)),
        ];
        for (name, value) in &self.sections {
            pairs.push((name, value.clone()));
        }
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// Runs `selected` lints (all from [`registry`] when `None`) over the
/// workspace and applies the allowlist.
pub fn run_lints(
    workspace: &Workspace,
    allowlist: &Allowlist,
    selected: Option<&[&str]>,
) -> Report {
    let mut sink = LintSink::default();
    for lint in registry() {
        if selected.is_some_and(|names| !names.contains(&lint.name())) {
            continue;
        }
        lint.check(workspace, &mut sink);
    }
    allowlist.apply(&mut sink.diagnostics);
    // Stable order: by file, then line, then lint name; notes last within
    // a location. Keeps output and JSON reports diffable.
    sink.diagnostics.sort_by(|a, b| {
        (
            a.file.as_str(),
            a.line,
            a.col,
            a.lint,
            a.severity == Severity::Note,
        )
            .cmp(&(
                b.file.as_str(),
                b.line,
                b.col,
                b.lint,
                b.severity == Severity::Note,
            ))
    });
    Report {
        diagnostics: sink.diagnostics,
        sections: sink.sections,
        files_scanned: workspace.files.len(),
    }
}
