//! Env-var registry: the `MARQSIM_*` environment surface must stay
//! coherent in both directions —
//!
//! - every `env::var("MARQSIM_…")` read must live in a designated config
//!   module (ad-hoc reads scattered through the codebase are how two
//!   subsystems end up parsing the same variable differently), and
//! - every variable read in non-test code must be documented in README /
//!   `docs/`, and every variable the docs promise must still exist in
//!   code.
//!
//! The designated config modules are the per-subsystem entry points that
//! already own environment parsing. A new module earns its place here by
//! being the *single* place its subsystem reads configuration.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::lint::{Lint, LintSink};
use crate::source::Workspace;

const LINT: &str = "env-registry";

/// Files allowed to call `env::var` on a `MARQSIM_*` name.
const CONFIG_MODULES: &[&str] = &[
    "crates/engine/src/engine.rs",
    "crates/obs/src/log.rs",
    "crates/obs/src/trace.rs",
    "crates/serve/src/bin/marqsim_served.rs",
    "crates/bench/src/lib.rs",
];

/// Built at runtime so this lint's own source does not register as an
/// env-var mention when the workspace scans itself.
fn prefix() -> String {
    ["MARQ", "SIM_"].concat()
}

pub struct EnvRegistry;

impl Lint for EnvRegistry {
    fn name(&self) -> &'static str {
        LINT
    }

    fn description(&self) -> &'static str {
        "MARQSIM_* env reads must go through a config module and match the documented registry"
    }

    fn check(&self, workspace: &Workspace, sink: &mut LintSink) {
        let prefix = prefix();
        // Var -> first read site in non-test code.
        let mut reads: BTreeMap<String, (String, u32, u32)> = BTreeMap::new();
        // Vars mentioned as string literals anywhere in code (incl. tests).
        let mut mentioned: BTreeSet<String> = BTreeSet::new();

        for file in &workspace.files {
            for (i, tok) in file.tokens.iter().enumerate() {
                if tok.kind != TokenKind::Str {
                    continue;
                }
                let Some(value) = tok.str_value(&file.text) else {
                    continue;
                };
                let Some(var) = parse_var(value, &prefix) else {
                    continue;
                };
                mentioned.insert(var.clone());
                if file.is_test_code(tok.start) {
                    continue;
                }
                // A *read* is the literal appearing as the argument of
                // `var(…)` / `var_os(…)` / `remove_var(…)` / `set_var(…)`.
                let is_env_call = i >= 2
                    && file.tokens[i - 1].kind == TokenKind::Punct
                    && file.tokens[i - 1].text(&file.text) == "("
                    && file.tokens[i - 2].kind == TokenKind::Ident
                    && matches!(
                        file.tokens[i - 2].text(&file.text),
                        "var" | "var_os" | "set_var" | "remove_var"
                    );
                if is_env_call {
                    reads
                        .entry(var)
                        .or_insert((file.rel.clone(), tok.line, tok.col));
                    if !CONFIG_MODULES.contains(&file.rel.as_str()) {
                        sink.push(Diagnostic::new(
                            LINT,
                            &file.rel,
                            tok.line,
                            tok.col,
                            format!(
                                "env read of `{}` outside a config module — route it through \
                                 one of: {}",
                                tok.str_value(&file.text).unwrap_or_default(),
                                CONFIG_MODULES.join(", ")
                            ),
                        ));
                    }
                }
            }
        }

        // Vars the docs promise.
        let mut documented: BTreeSet<String> = BTreeSet::new();
        for doc in &workspace.docs {
            scan_doc_vars(&doc.text, &prefix, &mut documented);
        }

        for (var, (file, line, col)) in &reads {
            if !documented.contains(var) {
                sink.push(Diagnostic::new(
                    LINT,
                    file.as_str(),
                    *line,
                    *col,
                    format!("env var `{var}` is read but not documented in README/docs"),
                ));
            }
        }
        for var in &documented {
            if !mentioned.contains(var) {
                sink.push(Diagnostic::new(
                    LINT,
                    "",
                    0,
                    0,
                    format!("env var `{var}` is documented but no longer exists in code"),
                ));
            }
        }
    }
}

/// Accepts a string literal that *is* a var name (`MARQSIM_THREADS`),
/// rejecting prose that merely starts with the prefix.
fn parse_var(value: &str, prefix: &str) -> Option<String> {
    let rest = value.strip_prefix(prefix)?;
    if rest.is_empty()
        || !rest
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    {
        return None;
    }
    Some(value.to_string())
}

/// Extracts every `MARQSIM_<NAME>` occurrence from Markdown text.
fn scan_doc_vars(text: &str, prefix: &str, out: &mut BTreeSet<String>) {
    let mut rest = text;
    while let Some(at) = rest.find(prefix) {
        let tail = &rest[at + prefix.len()..];
        let len = tail
            .find(|c: char| !(c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
            .unwrap_or(tail.len());
        let name = tail[..len].trim_end_matches('_');
        if !name.is_empty() {
            out.insert(format!("{prefix}{name}"));
        }
        rest = &rest[at + prefix.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_name_parsing() {
        let p = prefix();
        assert_eq!(
            parse_var("MARQSIM_THREADS", &p).as_deref(),
            Some("MARQSIM_THREADS")
        );
        assert!(parse_var("MARQSIM_", &p).is_none());
        assert!(parse_var("MARQSIM_THREADS: set this", &p).is_none());
        assert!(parse_var("OTHER_THREADS", &p).is_none());
    }

    #[test]
    fn doc_scanning_finds_vars_in_prose_and_tables() {
        let mut out = BTreeSet::new();
        scan_doc_vars(
            "| `MARQSIM_TRACE` | path | Set MARQSIM_LOG=debug. (MARQSIM_CACHE_CAP)",
            &prefix(),
            &mut out,
        );
        let vars: Vec<_> = out.iter().cloned().collect();
        assert_eq!(
            vars,
            vec!["MARQSIM_CACHE_CAP", "MARQSIM_LOG", "MARQSIM_TRACE"]
        );
    }
}
