//! Lock-order analysis: reconstructs the workspace lock graph from
//! `.lock()` / `.read()` / `.write()` call sites and reports potential
//! deadlocks.
//!
//! The pass works in four stages:
//!
//! 1. **Acquisition sites.** Every zero-argument `.lock()` / `.read()` /
//!    `.write()` call in non-test code is an acquisition. The receiver
//!    chain is walked backwards to a naming identifier (the lock field or
//!    static), qualified as `<crate>/<file_stem>.<ident>` — e.g. the pool
//!    injector mutex is `engine/pool.state`, the trace sink
//!    `obs/trace.SINK`. An indexed receiver (`self.shards[i].lock()`)
//!    marks the lock as an *indexed family* whose members are ordered by
//!    index (the ascending-acquisition convention; see `docs/analysis.md`).
//! 2. **Guard liveness.** Each acquisition's held region is derived from
//!    the binding form: a `let guard = …` binding lives until an explicit
//!    `drop(guard)` or the end of its enclosing block; an `if let` /
//!    `while let` header binding lives for the following block; an
//!    unbound temporary lives to the end of its statement.
//! 3. **Inter-procedural propagation.** A may-acquire set is computed per
//!    function and closed over the call graph (`self.method(…)` resolves
//!    within the defining file; free and `Path::fn` calls resolve to the
//!    unique workspace definition). An acquisition of `B` — direct or via
//!    a call — while `A` is held adds the edge `A → B`.
//! 4. **Verdicts.** Cycles in the lock graph are potential deadlocks.
//!    A repeated acquisition of the same non-indexed lock inside its own
//!    region is a self-deadlock. Any lock held across a blocking handoff
//!    boundary (`.send(…)`, `.execute(…)`, `.spawn(…)`) is flagged —
//!    even when the channel is unbounded today, holding a lock across a
//!    handoff couples the lock to a foreign subsystem's liveness.
//!
//! The reconstructed graph is attached to the JSON report as the
//! `lock_graph` section (nodes, edges, cycles) so the self-scan test can
//! assert the engine's real lock graph — pool injector, cache shards,
//! trace sink — is reproduced with no cycles.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::json::Json;
use crate::lexer::TokenKind;
use crate::lint::{Lint, LintSink};
use crate::source::{SourceFile, Workspace};

const LINT: &str = "lock-order";

/// Zero-argument methods that acquire a blocking lock.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Call names that hand work to another subsystem while potentially
/// blocking or coupling liveness: channel sends, pool submission, thread
/// spawning.
const BOUNDARY_METHODS: &[&str] = &["send", "execute", "execute_at", "spawn"];

pub struct LockOrder;

/// One lock acquisition: the lock's qualified name, whether the receiver
/// was indexed (`shards[i]`), the acquisition token, and the token range
/// over which the guard is held.
#[derive(Debug)]
struct Acquisition {
    name: String,
    indexed: bool,
    site: usize,
    region_end: usize,
}

/// A call site inside a function body, pre-resolution.
#[derive(Debug)]
struct CallSite {
    callee: String,
    site: usize,
    /// `self.callee(…)` — resolves within the defining file only.
    via_self: bool,
}

/// Per-function analysis state, keyed by `(file index, function index)`.
#[derive(Debug, Default)]
struct FnInfo {
    acquisitions: Vec<Acquisition>,
    calls: Vec<CallSite>,
}

impl Lint for LockOrder {
    fn name(&self) -> &'static str {
        LINT
    }

    fn description(&self) -> &'static str {
        "reconstructs the lock graph from .lock()/.read()/.write() sites; \
         flags cycles, recursive acquisition, and locks held across \
         send/execute/spawn boundaries"
    }

    fn check(&self, workspace: &Workspace, sink: &mut LintSink) {
        let mut infos: BTreeMap<(usize, usize), FnInfo> = BTreeMap::new();
        // Which lock families are indexed (receiver was subscripted
        // anywhere): indexed families are ordered by index, so a
        // same-family nested acquisition is convention, not a cycle.
        let mut indexed_families: BTreeSet<String> = BTreeSet::new();
        // name -> total acquisition sites, for the report.
        let mut site_counts: BTreeMap<String, usize> = BTreeMap::new();

        for (file_idx, file) in workspace.files.iter().enumerate() {
            if file.kind.is_test_like() {
                continue;
            }
            let owners = token_owners(file);
            for (fn_idx, function) in file.functions.iter().enumerate() {
                let mut info = FnInfo::default();
                collect_function(
                    file,
                    fn_idx,
                    function.body_open,
                    function.body_close,
                    &owners,
                    &mut info,
                );
                for acq in &info.acquisitions {
                    if acq.indexed {
                        indexed_families.insert(acq.name.clone());
                    }
                    *site_counts.entry(acq.name.clone()).or_default() += 1;
                }
                infos.insert((file_idx, fn_idx), info);
            }
        }

        let may_acquire = fixpoint_may_acquire(workspace, &infos);

        // Edge set: (from, to) -> first witnessing site "file:line".
        let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
        for ((file_idx, _fn_idx), info) in &infos {
            let file = &workspace.files[*file_idx];
            for acq in &info.acquisitions {
                // Nested direct acquisitions inside this guard's region.
                for other in &info.acquisitions {
                    if other.site > acq.site && other.site <= acq.region_end {
                        record_edge(&mut edges, file, other.site, &acq.name, &other.name);
                        if acq.name == other.name && !indexed_families.contains(&acq.name) {
                            let tok = &file.tokens[other.site];
                            sink.push(Diagnostic::new(
                                LINT,
                                &file.rel,
                                tok.line,
                                tok.col,
                                format!(
                                    "lock `{}` re-acquired while already held — \
                                     self-deadlock on a non-reentrant mutex",
                                    acq.name
                                ),
                            ));
                        }
                    }
                }
                // Acquisitions reachable through calls made under the guard.
                for call in &info.calls {
                    if call.site <= acq.site || call.site > acq.region_end {
                        continue;
                    }
                    if let Some(callee_key) = resolve_call(workspace, *file_idx, call) {
                        if let Some(locks) = may_acquire.get(&callee_key) {
                            for lock in locks {
                                record_edge(&mut edges, file, call.site, &acq.name, lock);
                            }
                        }
                    }
                }
                // Handoff boundaries crossed while the guard is held.
                for boundary in boundary_sites(file, acq.site + 1, acq.region_end) {
                    let tok = &file.tokens[boundary];
                    sink.push(Diagnostic::new(
                        LINT,
                        &file.rel,
                        tok.line,
                        tok.col,
                        format!(
                            "lock `{}` held across `.{}(` — a handoff boundary \
                             couples the critical section to another subsystem's liveness",
                            acq.name,
                            file.token_text(boundary),
                        ),
                    ));
                }
            }
        }

        let cycles = find_cycles(&edges, &indexed_families);
        for cycle in &cycles {
            let path = cycle.join(" -> ");
            let first_edge = (cycle[0].clone(), cycle[1 % cycle.len()].clone());
            let site = edges.get(&first_edge).cloned().unwrap_or_default();
            let (file, line) = split_site(&site);
            sink.push(Diagnostic::new(
                LINT,
                file,
                line,
                1,
                format!(
                    "lock-order cycle (potential deadlock): {path} -> {}",
                    cycle[0]
                ),
            ));
        }

        sink.section(
            "lock_graph",
            graph_json(&site_counts, &indexed_families, &edges, &cycles),
        );
    }
}

/// Maps each token index to the innermost function containing it (outer
/// entries span nested `fn` items; processing by descending body size
/// lets the innermost overwrite).
fn token_owners(file: &SourceFile) -> Vec<Option<usize>> {
    let mut owners = vec![None; file.tokens.len()];
    let mut order: Vec<usize> = (0..file.functions.len()).collect();
    order.sort_by_key(|&i| {
        let f = &file.functions[i];
        std::cmp::Reverse(f.body_close - f.body_open)
    });
    for idx in order {
        let f = &file.functions[idx];
        for slot in owners.iter_mut().take(f.body_close + 1).skip(f.body_open) {
            *slot = Some(idx);
        }
    }
    owners
}

fn text(file: &SourceFile, i: usize) -> &str {
    file.tokens[i].text(&file.text)
}

fn is_punct(file: &SourceFile, i: usize, s: &str) -> bool {
    file.tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(&file.text) == s)
}

fn is_ident(file: &SourceFile, i: usize) -> bool {
    file.tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident)
}

/// Scans one function body for acquisitions and call sites, skipping
/// tokens owned by nested `fn` items (they are analyzed as their own
/// functions) and `#[cfg(test)]` regions.
fn collect_function(
    file: &SourceFile,
    fn_idx: usize,
    body_open: usize,
    body_close: usize,
    owners: &[Option<usize>],
    info: &mut FnInfo,
) {
    let mut i = body_open + 1;
    while i < body_close {
        if owners[i] != Some(fn_idx) {
            i += 1;
            continue;
        }
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        if file.is_test_code(tok.start) {
            i += 1;
            continue;
        }
        let name = text(file, i);
        // `.lock()` / `.read()` / `.write()` with no arguments: the
        // zero-arg requirement is what separates RwLock/Mutex acquisition
        // from io::Read::read(&mut buf) and friends.
        if ACQUIRE_METHODS.contains(&name)
            && is_punct(file, i - 1, ".")
            && is_punct(file, i + 1, "(")
            && is_punct(file, i + 2, ")")
        {
            if let Some((lock_name, indexed)) = resolve_receiver(file, i - 1) {
                let region_end = guard_region_end(file, i, body_close);
                info.acquisitions.push(Acquisition {
                    name: format!("{}/{}.{}", file.crate_name, file.stem(), lock_name),
                    indexed,
                    site: i,
                    region_end,
                });
            }
            i += 3;
            continue;
        }
        // Call sites: `name(` that is not a macro (`name!(`).
        if is_punct(file, i + 1, "(") {
            let via_self = is_punct(file, i - 1, ".")
                && is_ident(file, i - 2)
                && text(file, i - 2) == "self"
                && !is_punct(file, i - 3, ".");
            let via_path = is_punct(file, i - 1, ":") && is_punct(file, i - 2, ":");
            let method_on_other = is_punct(file, i - 1, ".") && !via_self;
            let keyword = matches!(name, "if" | "while" | "match" | "for" | "return" | "fn");
            if !method_on_other && !keyword {
                // Free calls, `self.m(…)`, and `Path::f(…)` are resolvable;
                // `expr.m(…)` is not (no type information).
                let _ = via_path;
                info.calls.push(CallSite {
                    callee: name.to_string(),
                    site: i,
                    via_self,
                });
            }
        }
        i += 1;
    }
}

/// Walks the receiver chain backwards from the `.` that precedes the
/// acquisition method and returns the naming identifier plus whether the
/// receiver was indexed. `self.state` → `state`; `self.shards[i]` →
/// (`shards`, indexed); `SINK` → `SINK`; `io::stdout()` → `stdout`.
fn resolve_receiver(file: &SourceFile, dot: usize) -> Option<(String, bool)> {
    let mut j = dot.checked_sub(1)?;
    let mut indexed = false;
    loop {
        if is_punct(file, j, "]") {
            // Skip the subscript backwards to its `[`.
            indexed = true;
            let mut depth = 0usize;
            loop {
                if is_punct(file, j, "]") {
                    depth += 1;
                } else if is_punct(file, j, "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
            continue;
        }
        if is_punct(file, j, ")") {
            // Receiver is a call result (`io::stdout().lock()`): name the
            // lock after the producing call.
            let mut depth = 0usize;
            loop {
                if is_punct(file, j, ")") {
                    depth += 1;
                } else if is_punct(file, j, "(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
            continue;
        }
        if is_ident(file, j) {
            let name = text(file, j);
            if name == "self" {
                return None;
            }
            return Some((name.to_string(), indexed));
        }
        return None;
    }
}

/// Determines where the guard produced by the acquisition at `site` dies.
fn guard_region_end(file: &SourceFile, site: usize, body_close: usize) -> usize {
    // Find the start of the statement: the token after the previous `;`,
    // `{`, or `}` (expression-block receivers are rare enough to accept
    // the approximation).
    let mut start = site;
    while start > 0 {
        let t = &file.tokens[start - 1];
        if t.kind == TokenKind::Punct && matches!(t.text(&file.text), ";" | "{" | "}") {
            break;
        }
        start -= 1;
    }
    let starts_with = |offset: usize, word: &str| {
        file.tokens
            .get(start + offset)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(&file.text) == word)
    };
    // `if let` / `while let` header: the guard lives for the block that
    // follows the header.
    if (starts_with(0, "if") || starts_with(0, "while")) && starts_with(1, "let") {
        let mut k = site;
        let mut depth = 0isize;
        while k <= body_close {
            if is_punct(file, k, "(") || is_punct(file, k, "[") {
                depth += 1;
            } else if is_punct(file, k, ")") || is_punct(file, k, "]") {
                depth -= 1;
            } else if is_punct(file, k, "{") && depth == 0 {
                return crate::source::matching_brace(&file.tokens, &file.text, k);
            }
            k += 1;
        }
        return body_close;
    }
    // `let guard = …`: until `drop(guard)` or the end of the enclosing
    // block, whichever comes first.
    if starts_with(0, "let") {
        let mut name_at = start + 1;
        if starts_with(1, "mut") {
            name_at += 1;
        }
        if is_ident(file, name_at) {
            let guard = text(file, name_at).to_string();
            // Enclosing block end: the first `}` that closes a brace
            // opened before this statement.
            let mut depth = 0isize;
            let mut block_end = body_close;
            let mut k = site;
            while k <= body_close {
                if is_punct(file, k, "{") {
                    depth += 1;
                } else if is_punct(file, k, "}") {
                    depth -= 1;
                    if depth < 0 {
                        block_end = k;
                        break;
                    }
                }
                k += 1;
            }
            // Explicit early drop.
            let mut k = site;
            while k + 3 <= block_end {
                if is_ident(file, k)
                    && text(file, k) == "drop"
                    && is_punct(file, k + 1, "(")
                    && is_ident(file, k + 2)
                    && text(file, k + 2) == guard
                    && is_punct(file, k + 3, ")")
                {
                    return k;
                }
                k += 1;
            }
            return block_end;
        }
    }
    // Unbound temporary: held to the end of the statement.
    let mut depth = 0isize;
    let mut k = site;
    while k <= body_close {
        if is_punct(file, k, "(") || is_punct(file, k, "[") || is_punct(file, k, "{") {
            depth += 1;
        } else if is_punct(file, k, ")") || is_punct(file, k, "]") {
            depth -= 1;
        } else if is_punct(file, k, "}") {
            depth -= 1;
            if depth < 0 {
                return k;
            }
        } else if is_punct(file, k, ";") && depth <= 0 {
            return k;
        }
        k += 1;
    }
    body_close
}

/// Handoff-boundary call sites (`.send(` / `.execute(` / `::spawn(` …)
/// in the token range.
fn boundary_sites(file: &SourceFile, from: usize, to: usize) -> Vec<usize> {
    let mut sites = Vec::new();
    for i in from..=to.min(file.tokens.len().saturating_sub(2)) {
        if file.tokens[i].kind == TokenKind::Ident
            && BOUNDARY_METHODS.contains(&text(file, i))
            && is_punct(file, i + 1, "(")
            && (is_punct(file, i - 1, ".") || is_punct(file, i - 1, ":"))
        {
            sites.push(i);
        }
    }
    sites
}

/// Resolves a call site to the `(file, fn)` key of its unique definition,
/// or `None` when ambiguous/unknown. `self.m(…)` resolves within the
/// defining file; free and path calls try the same file, then a unique
/// match in the same crate, then a unique match workspace-wide.
fn resolve_call(workspace: &Workspace, file_idx: usize, call: &CallSite) -> Option<(usize, usize)> {
    let same_file: Vec<(usize, usize)> = workspace.files[file_idx]
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == call.callee)
        .map(|(i, _)| (file_idx, i))
        .collect();
    if same_file.len() == 1 {
        return Some(same_file[0]);
    }
    if call.via_self || !same_file.is_empty() {
        return None;
    }
    let crate_name = &workspace.files[file_idx].crate_name;
    let mut in_crate = Vec::new();
    let mut anywhere = Vec::new();
    for (fi, file) in workspace.files.iter().enumerate() {
        if file.kind.is_test_like() {
            continue;
        }
        for (gi, f) in file.functions.iter().enumerate() {
            if f.name == call.callee {
                anywhere.push((fi, gi));
                if &file.crate_name == crate_name {
                    in_crate.push((fi, gi));
                }
            }
        }
    }
    if in_crate.len() == 1 {
        return Some(in_crate[0]);
    }
    if anywhere.len() == 1 {
        return Some(anywhere[0]);
    }
    None
}

/// Closes the per-function direct-acquisition sets over the call graph.
fn fixpoint_may_acquire(
    workspace: &Workspace,
    infos: &BTreeMap<(usize, usize), FnInfo>,
) -> BTreeMap<(usize, usize), BTreeSet<String>> {
    let mut sets: BTreeMap<(usize, usize), BTreeSet<String>> = infos
        .iter()
        .map(|(key, info)| {
            (
                *key,
                info.acquisitions.iter().map(|a| a.name.clone()).collect(),
            )
        })
        .collect();
    let resolved: BTreeMap<(usize, usize), Vec<(usize, usize)>> = infos
        .iter()
        .map(|(key, info)| {
            (
                *key,
                info.calls
                    .iter()
                    .filter_map(|c| resolve_call(workspace, key.0, c))
                    .collect(),
            )
        })
        .collect();
    loop {
        let mut changed = false;
        for (key, callees) in &resolved {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in callees {
                if callee == key {
                    continue;
                }
                if let Some(locks) = sets.get(callee) {
                    add.extend(locks.iter().cloned());
                }
            }
            let entry = sets.entry(*key).or_default();
            for lock in add {
                changed |= entry.insert(lock);
            }
        }
        if !changed {
            return sets;
        }
    }
}

fn record_edge(
    edges: &mut BTreeMap<(String, String), String>,
    file: &SourceFile,
    site: usize,
    from: &str,
    to: &str,
) {
    let tok = &file.tokens[site];
    edges
        .entry((from.to_string(), to.to_string()))
        .or_insert_with(|| format!("{}:{}", file.rel, tok.line));
}

fn split_site(site: &str) -> (String, u32) {
    match site.rsplit_once(':') {
        Some((file, line)) => (file.to_string(), line.parse().unwrap_or(0)),
        None => (site.to_string(), 0),
    }
}

/// Finds elementary cycles by DFS self-reachability; a self-edge on an
/// indexed family is the ascending-index convention, not a cycle.
fn find_cycles(
    edges: &BTreeMap<(String, String), String>,
    indexed_families: &BTreeSet<String>,
) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        if from == to && indexed_families.contains(from) {
            continue;
        }
        adj.entry(from).or_default().push(to);
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_sets: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for &start in adj.keys() {
        // DFS looking for a path back to `start`.
        let mut stack = vec![(start, vec![start.to_string()])];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &next in adj.get(node).into_iter().flatten() {
                if next == start {
                    let set: BTreeSet<String> = path.iter().cloned().collect();
                    if seen_sets.insert(set) {
                        cycles.push(path.clone());
                    }
                } else if visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next.to_string());
                    stack.push((next, p));
                }
            }
        }
    }
    cycles
}

fn graph_json(
    site_counts: &BTreeMap<String, usize>,
    indexed_families: &BTreeSet<String>,
    edges: &BTreeMap<(String, String), String>,
    cycles: &[Vec<String>],
) -> Json {
    let nodes = site_counts
        .iter()
        .map(|(name, count)| {
            Json::obj([
                ("name", Json::str(name.as_str())),
                ("indexed", Json::Bool(indexed_families.contains(name))),
                ("acquisition_sites", Json::num(*count as u32)),
            ])
        })
        .collect();
    let edge_items = edges
        .iter()
        .map(|((from, to), site)| {
            Json::obj([
                ("from", Json::str(from.as_str())),
                ("to", Json::str(to.as_str())),
                ("site", Json::str(site.as_str())),
            ])
        })
        .collect();
    let cycle_items = cycles
        .iter()
        .map(|cycle| Json::Arr(cycle.iter().map(|n| Json::str(n.as_str())).collect()))
        .collect();
    Json::obj([
        ("nodes", Json::Arr(nodes)),
        ("edges", Json::Arr(edge_items)),
        ("cycles", Json::Arr(cycle_items)),
    ])
}
