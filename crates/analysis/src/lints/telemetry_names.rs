//! Telemetry-name conformance: metric and span names used at `obs` call
//! sites must follow the naming grammar and agree — both directions —
//! with the catalog in `docs/observability.md`.
//!
//! Grammar (Prometheus conventions, as the doc promises):
//! - metric names match `marqsim_[a-z0-9_]+`; counters end in `_total`,
//!   latency histograms in `_seconds`, gauges in neither;
//! - span names match `[a-z][a-z0-9_]*`.
//!
//! Catalog sync: a name registered in non-test code but absent from the
//! doc tables is undocumented telemetry; a name in the tables that no
//! call site emits is a stale catalog row.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::lint::{Lint, LintSink};
use crate::source::Workspace;

const LINT: &str = "telemetry-names";
const DOC: &str = "docs/observability.md";

/// Registration methods on the metrics registry, with the instrument kind
/// each one creates.
const METRIC_METHODS: &[(&str, &str)] = &[
    ("counter", "counter"),
    ("counter_with", "counter"),
    ("gauge", "gauge"),
    ("gauge_with", "gauge"),
    ("histogram", "histogram"),
    ("histogram_with", "histogram"),
    ("histogram_with_edges", "histogram"),
];

pub struct TelemetryNames;

impl Lint for TelemetryNames {
    fn name(&self) -> &'static str {
        LINT
    }

    fn description(&self) -> &'static str {
        "metric/span names at obs call sites must match the naming grammar and the docs/observability.md catalog"
    }

    fn check(&self, workspace: &Workspace, sink: &mut LintSink) {
        // name -> (kind, first site) for metrics; name -> first site for spans.
        let mut metrics: BTreeMap<String, (&'static str, String, u32, u32)> = BTreeMap::new();
        let mut spans: BTreeMap<String, (String, u32, u32)> = BTreeMap::new();

        for file in &workspace.files {
            // The obs crate's own sources define the API and exercise it
            // with placeholder names; call-site conformance is about the
            // rest of the workspace.
            if file.crate_name == "obs" {
                continue;
            }
            let toks = &file.tokens;
            for i in 0..toks.len() {
                if toks[i].kind != TokenKind::Ident || file.is_test_code(toks[i].start) {
                    continue;
                }
                let name = toks[i].text(&file.text);
                let prev_dot = i > 0
                    && toks[i - 1].kind == TokenKind::Punct
                    && toks[i - 1].text(&file.text) == ".";
                let prev_path = i > 1
                    && toks[i - 1].kind == TokenKind::Punct
                    && toks[i - 1].text(&file.text) == ":"
                    && toks[i - 2].text(&file.text) == ":";
                let Some(arg) = first_string_arg(file, i + 1) else {
                    continue;
                };
                if prev_dot {
                    if let Some((_, kind)) = METRIC_METHODS.iter().find(|(m, _)| *m == name) {
                        let tok = &toks[i];
                        metrics
                            .entry(arg)
                            .or_insert((kind, file.rel.clone(), tok.line, tok.col));
                        continue;
                    }
                }
                let is_span_ctor = matches!(name, "enter" | "child_of")
                    && prev_path
                    && i > 3
                    && toks[i - 3].text(&file.text) == "Span";
                let is_interval = name == "emit_interval" && !prev_dot;
                if is_span_ctor || is_interval {
                    let tok = &toks[i];
                    spans
                        .entry(arg)
                        .or_insert((file.rel.clone(), tok.line, tok.col));
                }
            }
        }

        // Grammar checks on the used names.
        for (name, (kind, file, line, col)) in &metrics {
            if let Some(problem) = metric_grammar_problem(name, kind) {
                sink.push(Diagnostic::new(LINT, file.as_str(), *line, *col, problem));
            }
        }
        for (name, (file, line, col)) in &spans {
            if !is_lower_snake(name) {
                sink.push(Diagnostic::new(
                    LINT,
                    file.as_str(),
                    *line,
                    *col,
                    format!("span name `{name}` does not match the grammar `[a-z][a-z0-9_]*`"),
                ));
            }
        }

        // Catalog sync, both directions.
        let (doc_metrics, doc_spans) = match workspace.doc(DOC) {
            Some(doc) => catalog_names(&doc.text),
            None => {
                sink.push(Diagnostic::note(
                    LINT,
                    DOC,
                    "missing docs/observability.md — telemetry catalog cannot be checked",
                ));
                return;
            }
        };
        for (name, (_, file, line, col)) in &metrics {
            if !doc_metrics.contains(name) {
                sink.push(Diagnostic::new(
                    LINT,
                    file.as_str(),
                    *line,
                    *col,
                    format!("metric `{name}` is not in the {DOC} instrument catalog"),
                ));
            }
        }
        for name in &doc_metrics {
            if !metrics.contains_key(name) {
                sink.push(Diagnostic::new(
                    LINT,
                    DOC,
                    0,
                    0,
                    format!("catalog metric `{name}` has no registration site in the workspace"),
                ));
            }
        }
        for (name, (file, line, col)) in &spans {
            if !doc_spans.contains(name) {
                sink.push(Diagnostic::new(
                    LINT,
                    file.as_str(),
                    *line,
                    *col,
                    format!("span `{name}` is not in the {DOC} span catalog"),
                ));
            }
        }
        for name in &doc_spans {
            if !spans.contains_key(name) {
                sink.push(Diagnostic::new(
                    LINT,
                    DOC,
                    0,
                    0,
                    format!("catalog span `{name}` is never emitted in the workspace"),
                ));
            }
        }
    }
}

/// The first string literal inside the call parens starting at `open`
/// (tolerates the name being on its own line — token scan, not text scan).
fn first_string_arg(file: &crate::source::SourceFile, open: usize) -> Option<String> {
    let toks = &file.tokens;
    if !(toks.get(open)?.kind == TokenKind::Punct && toks[open].text(&file.text) == "(") {
        return None;
    }
    for tok in toks.iter().skip(open + 1).take(4) {
        match tok.kind {
            TokenKind::Str => return tok.str_value(&file.text).map(str::to_string),
            _ => {
                if tok.kind == TokenKind::Punct && tok.text(&file.text) == ")" {
                    return None;
                }
            }
        }
    }
    None
}

fn is_lower_snake(name: &str) -> bool {
    !name.is_empty()
        && name.starts_with(|c: char| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn metric_grammar_problem(name: &str, kind: &str) -> Option<String> {
    if !name.starts_with("marqsim_") || !is_lower_snake(name) {
        return Some(format!(
            "metric `{name}` does not match the grammar `marqsim_[a-z0-9_]+`"
        ));
    }
    match kind {
        "counter" if !name.ends_with("_total") => {
            Some(format!("counter `{name}` must end in `_total`"))
        }
        "histogram" if !name.ends_with("_seconds") => {
            Some(format!("latency histogram `{name}` must end in `_seconds`"))
        }
        "gauge" if name.ends_with("_total") || name.ends_with("_seconds") => Some(format!(
            "gauge `{name}` must not use a counter/histogram suffix"
        )),
        _ => None,
    }
}

/// Extracts the documented names from the Markdown tables: the first cell
/// of each table row, split into backticked tokens; `marqsim_*` names are
/// metrics, other lowercase names are spans.
fn catalog_names(text: &str) -> (Vec<String>, Vec<String>) {
    let mut metrics = Vec::new();
    let mut spans = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        let Some(first_cell) = trimmed.trim_start_matches('|').split('|').next() else {
            continue;
        };
        for name in backticked(first_cell) {
            if name.starts_with("marqsim_") {
                metrics.push(name);
            } else if is_lower_snake(&name) {
                spans.push(name);
            }
        }
    }
    (metrics, spans)
}

/// All `` `name` `` occurrences in a table cell (a cell can document two
/// names, e.g. `` `persist_load` / `persist_store` ``).
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(start) = rest.find('`') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('`') else { break };
        out.push(tail[..end].to_string());
        rest = &tail[end + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_checks() {
        assert!(metric_grammar_problem("marqsim_cache_hits_total", "counter").is_none());
        assert!(metric_grammar_problem("marqsim_pool_queue_depth", "gauge").is_none());
        assert!(metric_grammar_problem("marqsim_flow_solve_seconds", "histogram").is_none());
        assert!(metric_grammar_problem("marqsim_hits", "counter").is_some());
        assert!(metric_grammar_problem("marqsim_depth_total", "gauge").is_some());
        assert!(metric_grammar_problem("cache_hits_total", "counter").is_some());
        assert!(is_lower_snake("flow_solve"));
        assert!(!is_lower_snake("FlowSolve"));
    }

    #[test]
    fn catalog_extraction_splits_shared_cells() {
        let doc = "\
| name | kind |\n|---|---|\n| `marqsim_cache_hits_total` | counter |\n\n\
| span | emitted by |\n|---|---|\n| `persist_load` / `persist_store` | cache |\n";
        let (metrics, spans) = catalog_names(doc);
        assert_eq!(metrics, vec!["marqsim_cache_hits_total"]);
        assert_eq!(spans, vec!["persist_load", "persist_store"]);
    }
}
