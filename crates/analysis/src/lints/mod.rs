//! The workspace-specific lints. Each submodule implements
//! [`crate::lint::Lint`]; the registry in [`crate::lint::registry`] lists
//! them in run order.

pub mod env_registry;
pub mod lock_order;
pub mod panic_hygiene;
pub mod protocol_doc;
pub mod telemetry_names;
