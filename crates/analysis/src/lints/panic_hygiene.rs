//! Panic hygiene: `unwrap()` / `expect(…)` / `panic!` / `todo!` /
//! `unimplemented!` in non-test *library* code. Library code is expected
//! to surface failures as typed errors; every deliberate exception is
//! enumerated in `analysis/allow.toml` with a reason, so the debt stays
//! visible instead of accumulating silently.
//!
//! Scope: `FileKind::Lib` only, outside `#[cfg(test)]` regions. Binaries,
//! tests, benches, and examples are exempt (a CLI `main` aborting on
//! startup misconfiguration is the correct behavior, and test code
//! unwraps by design). `unreachable!` is also exempt: it documents a
//! statically impossible branch rather than a failure path.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::lint::{Lint, LintSink};
use crate::source::{FileKind, Workspace};

const LINT: &str = "panic-hygiene";

pub struct PanicHygiene;

impl Lint for PanicHygiene {
    fn name(&self) -> &'static str {
        LINT
    }

    fn description(&self) -> &'static str {
        "unwrap()/expect()/panic! in non-test library code (allowlisted debt in analysis/allow.toml)"
    }

    fn check(&self, workspace: &Workspace, sink: &mut LintSink) {
        for file in &workspace.files {
            if file.kind != FileKind::Lib {
                continue;
            }
            let tokens = &file.tokens;
            for i in 0..tokens.len() {
                let tok = &tokens[i];
                if tok.kind != TokenKind::Ident || file.is_test_code(tok.start) {
                    continue;
                }
                let name = tok.text(&file.text);
                let next_is = |offset: usize, s: &str| {
                    tokens
                        .get(i + offset)
                        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(&file.text) == s)
                };
                let construct = match name {
                    "unwrap" if next_is(1, "(") && next_is(2, ")") && prev_is_dot(file, i) => {
                        Some(".unwrap()".to_string())
                    }
                    "expect" if next_is(1, "(") && prev_is_dot(file, i) => {
                        Some(format!(".expect({})", first_str_arg(file, i + 2)))
                    }
                    "panic" | "todo" | "unimplemented" if next_is(1, "!") => {
                        Some(format!("{name}!({})", first_str_arg(file, i + 3)))
                    }
                    _ => None,
                };
                if let Some(construct) = construct {
                    sink.push(Diagnostic::new(
                        LINT,
                        &file.rel,
                        tok.line,
                        tok.col,
                        format!("`{construct}` in library code — return a typed error instead"),
                    ));
                }
            }
        }
    }
}

fn prev_is_dot(file: &crate::source::SourceFile, i: usize) -> bool {
    i > 0
        && file.tokens[i - 1].kind == TokenKind::Punct
        && file.tokens[i - 1].text(&file.text) == "."
}

/// The first string literal in the argument list (for `.expect("…")` /
/// `panic!("…")`), so allowlist entries can pin a specific message.
fn first_str_arg(file: &crate::source::SourceFile, from: usize) -> String {
    for tok in file.tokens.iter().skip(from).take(3) {
        if tok.kind == TokenKind::Str {
            return tok.text(&file.text).to_string();
        }
        if tok.kind == TokenKind::Punct && matches!(tok.text(&file.text), ")" | ";") {
            break;
        }
    }
    String::new()
}
