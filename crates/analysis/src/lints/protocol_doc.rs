//! Protocol-doc drift: the serve protocol's verbs and events, as
//! implemented in `crates/serve/src/protocol.rs`, must agree with
//! `docs/serve-protocol.md`, and every verb/event must be exercised
//! somewhere in test code.
//!
//! Code side: verb names are harvested from both the encoder pairs
//! (`("verb", "submit".into())`) and the decoder match arms
//! (`"submit" => Ok(Request::…)`); events likewise with `"event"` /
//! `Event`. Doc side: `"verb":"x"` / `"event":"x"` JSON snippets plus the
//! events table (first-column backticked names). Coverage: the name (or
//! its CamelCase variant) must appear in test code.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::lint::{Lint, LintSink};
use crate::source::Workspace;

const LINT: &str = "protocol-doc";
const PROTOCOL_RS: &str = "crates/serve/src/protocol.rs";
const DOC: &str = "docs/serve-protocol.md";

pub struct ProtocolDoc;

impl Lint for ProtocolDoc {
    fn name(&self) -> &'static str {
        LINT
    }

    fn description(&self) -> &'static str {
        "serve verbs/events in protocol.rs must match docs/serve-protocol.md and be covered by tests"
    }

    fn check(&self, workspace: &Workspace, sink: &mut LintSink) {
        let Some(protocol) = workspace.files.iter().find(|f| f.rel == PROTOCOL_RS) else {
            // Fixture workspaces without a serve crate have nothing to check.
            return;
        };
        let code_verbs = harvest(protocol, "verb", "Request");
        let code_events = harvest(protocol, "event", "Event");

        let Some(doc) = workspace.doc(DOC) else {
            sink.push(Diagnostic::note(
                LINT,
                DOC,
                "missing docs/serve-protocol.md — protocol drift cannot be checked",
            ));
            return;
        };
        let doc_verbs = doc_json_names(&doc.text, "verb");
        let mut doc_events = doc_json_names(&doc.text, "event");
        doc_events.extend(doc_table_names(&doc.text));

        // Code -> docs. Verbs are often discussed in prose (`the `stats`
        // verb`), so a backticked mention counts as documentation; events
        // must be in the events table or a JSON example.
        for (verb, line) in &code_verbs {
            if !doc_verbs.contains(verb) && !doc.text.contains(&format!("`{verb}`")) {
                sink.push(Diagnostic::new(
                    LINT,
                    PROTOCOL_RS,
                    *line,
                    1,
                    format!("verb `{verb}` is implemented but not documented in {DOC}"),
                ));
            }
        }
        for (event, line) in &code_events {
            if !doc_events.contains(event) {
                sink.push(Diagnostic::new(
                    LINT,
                    PROTOCOL_RS,
                    *line,
                    1,
                    format!("event `{event}` is implemented but not documented in {DOC}"),
                ));
            }
        }
        // Docs -> code.
        for verb in &doc_verbs {
            if !code_verbs.contains_key(verb) {
                sink.push(Diagnostic::new(
                    LINT,
                    DOC,
                    0,
                    0,
                    format!("documented verb `{verb}` is not implemented in {PROTOCOL_RS}"),
                ));
            }
        }
        for event in &doc_events {
            if !code_events.contains_key(event) {
                sink.push(Diagnostic::new(
                    LINT,
                    DOC,
                    0,
                    0,
                    format!("documented event `{event}` is not implemented in {PROTOCOL_RS}"),
                ));
            }
        }

        // Coverage: each verb/event must be exercised by test code.
        let (test_strings, test_idents) = test_surface(workspace);
        for (kind, names) in [("verb", &code_verbs), ("event", &code_events)] {
            for (name, line) in names {
                let variant = camel(name);
                let covered = test_idents.contains(&variant)
                    || test_strings.iter().any(|s| s.contains(name.as_str()));
                if !covered {
                    sink.push(Diagnostic::new(
                        LINT,
                        PROTOCOL_RS,
                        *line,
                        1,
                        format!(
                            "{kind} `{name}` has no test coverage mention (neither the \
                                 wire name nor `{variant}` appears in test code)"
                        ),
                    ));
                }
            }
        }
    }
}

/// Harvests wire names from encode pairs `("<key>", "<name>".into())` and
/// decode arms `"<name>" => Ok(<Type>::…)`, mapped to the line of their
/// first occurrence.
fn harvest(file: &crate::source::SourceFile, key: &str, type_name: &str) -> BTreeMap<String, u32> {
    let mut names = BTreeMap::new();
    let toks = &file.tokens;
    let txt = |i: usize| toks[i].text(&file.text);
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Str || file.is_test_code(toks[i].start) {
            continue;
        }
        // Encode: Str(key) `,` Str(name)
        if toks[i].str_value(&file.text) == Some(key)
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokenKind::Punct
            && txt(i + 1) == ","
            && toks[i + 2].kind == TokenKind::Str
        {
            if let Some(name) = toks[i + 2].str_value(&file.text) {
                names.entry(name.to_string()).or_insert(toks[i + 2].line);
            }
        }
        // Decode: Str(name) `=` `>` `Ok` `(` Type
        if i + 5 < toks.len()
            && toks[i + 1].kind == TokenKind::Punct
            && txt(i + 1) == "="
            && txt(i + 2) == ">"
            && txt(i + 3) == "Ok"
            && txt(i + 4) == "("
            && txt(i + 5) == type_name
        {
            if let Some(name) = toks[i].str_value(&file.text) {
                names.entry(name.to_string()).or_insert(toks[i].line);
            }
        }
    }
    names
}

/// `"<key>":"<name>"` occurrences in the doc's JSON snippets.
fn doc_json_names(text: &str, key: &str) -> BTreeSet<String> {
    let needle = format!("\"{key}\":\"");
    let mut out = BTreeSet::new();
    let mut rest = text;
    while let Some(at) = rest.find(&needle) {
        let tail = &rest[at + needle.len()..];
        if let Some(end) = tail.find('"') {
            let name = &tail[..end];
            if !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
                out.insert(name.to_string());
            }
        }
        rest = &rest[at + needle.len()..];
    }
    out
}

/// Event names from the events table: rows whose first cell is a single
/// backticked lower-snake word.
fn doc_table_names(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in text.lines() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        let Some(cell) = trimmed.trim_start_matches('|').split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        if let Some(inner) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            if !inner.is_empty() && inner.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
                out.insert(inner.to_string());
            }
        }
    }
    out
}

/// Everything test code says: string-literal contents and identifiers,
/// across test files and `#[cfg(test)]` regions.
fn test_surface(workspace: &Workspace) -> (Vec<String>, BTreeSet<String>) {
    let mut strings = Vec::new();
    let mut idents = BTreeSet::new();
    for file in &workspace.files {
        for tok in &file.tokens {
            if !file.is_test_code(tok.start) {
                continue;
            }
            match tok.kind {
                TokenKind::Str => {
                    if let Some(s) = tok.str_value(&file.text) {
                        strings.push(s.to_string());
                    }
                }
                TokenKind::Ident => {
                    idents.insert(tok.text(&file.text).to_string());
                }
                _ => {}
            }
        }
    }
    (strings, idents)
}

/// `perturb_average` → `PerturbAverage`.
fn camel(name: &str) -> String {
    name.split('_')
        .map(|part| {
            let mut chars = part.chars();
            match chars.next() {
                Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_extraction() {
        let text = "\
request: {\"verb\":\"submit\",\"label\":\"x\"}\n\
| event | payload |\n|---|---|\n| `done` | `job` stuff |\n| `failed` | `kind` |\n";
        assert_eq!(
            doc_json_names(text, "verb").into_iter().collect::<Vec<_>>(),
            vec!["submit"]
        );
        let events = doc_table_names(text);
        assert!(events.contains("done") && events.contains("failed"));
        assert!(!events.contains("event"));
    }

    #[test]
    fn camel_case_variants() {
        assert_eq!(camel("submit"), "Submit");
        assert_eq!(camel("perturb_average"), "PerturbAverage");
    }
}
