//! A hand-rolled Rust lexer: comment-, string-, and char-literal-aware,
//! producing a flat token stream with byte spans and line/column positions.
//!
//! This is deliberately *not* a full Rust parser. The lints in this crate
//! work on token-pattern matching (`.lock` `(` `)`, `env` `::` `var` `(`
//! `"…"` `)`, brace-matched regions), for which a correct token stream with
//! faithful spans is sufficient — and a lexer, unlike a parser, can be
//! exhaustively property-tested: for any input, the emitted spans must
//! tile the source exactly (every byte is either inside exactly one token
//! span or inside the whitespace/comment gap between two), and every
//! token's recorded text must equal the source slice of its span. The
//! `tests/lexer_props.rs` quickprop suite pins both invariants over
//! generated source.
//!
//! Handled forms: line and (nested) block comments, doc comments, string
//! literals with escapes, raw strings `r#"…"#` (any hash depth), byte and
//! byte-raw strings, char literals (including `'\''` and `'\\'`),
//! lifetimes (disambiguated from char literals), raw identifiers `r#ident`,
//! numeric literals with underscores/exponents/suffixes, and multi-byte
//! UTF-8 (columns count characters, not bytes).

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are not distinguished), including
    /// raw identifiers (`r#fn` lexes as an `Ident` with text `r#fn`).
    Ident,
    /// A lifetime such as `'a` (including `'static`, `'_`).
    Lifetime,
    /// A numeric literal (integer or float, any base, any suffix).
    Number,
    /// A string literal of any flavor (`"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`). [`Token::str_value`] yields the inner text.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexed token: its class, its byte span in the source, and its
/// 1-based line / column (column counts `char`s, matching rustc).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The source slice this token covers.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }

    /// For [`TokenKind::Str`] tokens, the text between the quotes (escape
    /// sequences are *not* decoded — the lints match plain substrings that
    /// never contain escapes). `None` for any other kind.
    pub fn str_value<'a>(&self, source: &'a str) -> Option<&'a str> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let text = self.text(source);
        let open = text.find('"')?;
        // The closing quote is the last `"`; raw strings additionally have
        // their trailing hashes after it.
        let close = text.rfind('"')?;
        (close > open).then(|| &text[open + 1..close])
    }
}

/// Lexes `source` into its token stream. Comments and whitespace are
/// skipped (they form the gaps between token spans); unterminated strings
/// or comments consume to end-of-input rather than erroring, so the lexer
/// is total over arbitrary text.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining line/col. Only call on ASCII; for
    /// multi-byte characters use [`advance_char`](Self::advance_char).
    fn advance(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    /// Advances one whole `char` (counts one column).
    fn advance_char(&mut self) {
        let c = self.src[self.pos..].chars().next().expect("in bounds");
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += c.len_utf8();
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.advance(),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) || !b.is_ascii() => self.ident_or_char(),
                _ => self.punct(),
            }
        }
        self.tokens
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.advance_char();
        }
    }

    fn block_comment(&mut self) {
        // `/*` already peeked; consume it, then track nesting.
        self.advance();
        self.advance();
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.advance();
                self.advance();
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.advance();
                self.advance();
            } else {
                self.advance_char();
            }
        }
    }

    /// Dispatches the `r` / `b` / `br` / `rb`-prefixed literal forms and
    /// raw identifiers. Returns `true` if it consumed a token; `false`
    /// leaves the `r`/`b` to be lexed as a plain identifier start.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        let b0 = self.bytes[self.pos];
        // r"…" / r#"…"# / r#ident
        if b0 == b'r' {
            match self.peek(1) {
                Some(b'"') => {
                    self.advance();
                    self.raw_string_body(0);
                    self.emit(TokenKind::Str, start, line, col);
                    return true;
                }
                Some(b'#') => {
                    // Count hashes; a quote after them is a raw string, an
                    // identifier character is a raw identifier.
                    let mut hashes = 0usize;
                    while self.peek(1 + hashes) == Some(b'#') {
                        hashes += 1;
                    }
                    match self.peek(1 + hashes) {
                        Some(b'"') => {
                            self.advance(); // r
                            for _ in 0..hashes {
                                self.advance();
                            }
                            self.raw_string_body(hashes);
                            self.emit(TokenKind::Str, start, line, col);
                            return true;
                        }
                        Some(c) if hashes == 1 && is_ident_start(c) => {
                            self.advance(); // r
                            self.advance(); // #
                            self.ident_tail();
                            self.emit(TokenKind::Ident, start, line, col);
                            return true;
                        }
                        _ => return false,
                    }
                }
                _ => return false,
            }
        }
        // b"…" / b'…' / br"…" / br#"…"#
        if b0 == b'b' {
            match self.peek(1) {
                Some(b'"') => {
                    self.advance();
                    self.string();
                    // `string` emitted a token starting at the quote;
                    // widen it to include the prefix.
                    let token = self.tokens.last_mut().expect("string emitted");
                    token.start = start;
                    token.col = col;
                    return true;
                }
                Some(b'\'') => {
                    self.advance();
                    self.char_literal();
                    let token = self.tokens.last_mut().expect("char emitted");
                    token.start = start;
                    token.col = col;
                    return true;
                }
                Some(b'r') => {
                    let mut hashes = 0usize;
                    while self.peek(2 + hashes) == Some(b'#') {
                        hashes += 1;
                    }
                    if self.peek(2 + hashes) == Some(b'"') {
                        self.advance(); // b
                        self.advance(); // r
                        for _ in 0..hashes {
                            self.advance();
                        }
                        self.raw_string_body(hashes);
                        self.emit(TokenKind::Str, start, line, col);
                        return true;
                    }
                    return false;
                }
                _ => return false,
            }
        }
        false
    }

    /// Consumes from the opening `"` of a raw string through the closing
    /// `"` followed by `hashes` hash characters.
    fn raw_string_body(&mut self, hashes: usize) {
        debug_assert_eq!(self.bytes[self.pos], b'"');
        self.advance();
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut all = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        all = false;
                        break;
                    }
                }
                if all {
                    self.advance();
                    for _ in 0..hashes {
                        self.advance();
                    }
                    return;
                }
            }
            self.advance_char();
        }
    }

    /// A regular (escaped) string literal, starting at the opening quote.
    fn string(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        self.advance(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.advance();
                    if self.pos < self.bytes.len() {
                        self.advance_char();
                    }
                }
                b'"' => {
                    self.advance();
                    break;
                }
                _ => self.advance_char(),
            }
        }
        self.emit(TokenKind::Str, start, line, col);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): a quote two
    /// characters after the opening one (or an escape right after it)
    /// means char literal.
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some(b'\\') => self.char_literal(),
            Some(c) if is_ident_start(c) => {
                // `'x'` is a char, `'xyz` a lifetime. Find where the
                // identifier run ends; a quote there means char literal
                // only if the run is exactly one character long.
                let mut len = 1;
                while self.peek(1 + len).is_some_and(is_ident_continue) {
                    len += 1;
                }
                if self.peek(1 + len) == Some(b'\'') && len == 1 {
                    self.char_literal();
                } else {
                    let start = self.pos;
                    let (line, col) = (self.line, self.col);
                    self.advance();
                    self.ident_tail();
                    self.emit(TokenKind::Lifetime, start, line, col);
                }
            }
            _ => self.char_literal(),
        }
    }

    /// A char literal starting at `'`: consumes through the closing quote,
    /// honoring escapes (`'\''`, `'\\'`, `'\u{1F600}'`).
    fn char_literal(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        self.advance(); // opening '
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.advance();
                    if self.pos < self.bytes.len() {
                        self.advance_char();
                    }
                }
                b'\'' => {
                    self.advance();
                    break;
                }
                _ => self.advance_char(),
            }
        }
        self.emit(TokenKind::Char, start, line, col);
    }

    fn number(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        // Integer part (any base prefix rides along as ident-continue).
        while self
            .peek(0)
            .is_some_and(|b| is_ident_continue(b) || b == b'.')
        {
            // `1..10` — the range dots are punctuation, not a float.
            if self.bytes[self.pos] == b'.' {
                if self.peek(1) == Some(b'.') {
                    break;
                }
                // `1.method()` — a dot followed by an identifier start is
                // a method call on an integer literal.
                if self.peek(1).is_some_and(is_ident_start) {
                    break;
                }
            }
            // Exponent sign: `1e-9` / `1E+9`.
            if (self.bytes[self.pos] == b'e' || self.bytes[self.pos] == b'E')
                && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                && self.peek(2).is_some_and(|b| b.is_ascii_digit())
            {
                self.advance();
                self.advance();
                continue;
            }
            self.advance();
        }
        self.emit(TokenKind::Number, start, line, col);
    }

    fn ident_or_char(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        self.ident_tail();
        self.emit(TokenKind::Ident, start, line, col);
    }

    /// Consumes an identifier run (start byte included); multi-byte
    /// characters are accepted as continue characters (XID approximation:
    /// good enough for source that compiles).
    fn ident_tail(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if is_ident_continue(b) {
                self.advance();
            } else if !b.is_ascii() {
                self.advance_char();
            } else {
                break;
            }
        }
    }

    fn punct(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        self.advance_char();
        self.emit(TokenKind::Punct, start, line, col);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_confused() {
        let src = r#"let a = "// not a comment"; // real "not a string"
        /* block "quote" /* nested */ still comment */ b"#;
        let toks = kinds(src);
        assert_eq!(toks[3].0, TokenKind::Str);
        assert_eq!(toks[3].1, "\"// not a comment\"");
        assert_eq!(toks.last().unwrap().1, "b");
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r##"r"plain" r#"with "quote" inside"# br#"bytes"#"##;
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert!(toks.iter().all(|(k, _)| *k == TokenKind::Str));
        let lexed = lex(src);
        assert_eq!(lexed[1].str_value(src), Some("with \"quote\" inside"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "'a 'static '_ 'x' '\\'' '\\\\' b'z'";
        let toks = kinds(src);
        assert_eq!(
            toks.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#fn r#type normal");
        assert_eq!(toks[0], (TokenKind::Ident, "r#fn".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "r#type".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "normal".into()));
    }

    #[test]
    fn numbers_with_everything() {
        let toks = kinds("0xFF_u8 1_000 2.5e-9 1..10 3.max(4)");
        assert_eq!(toks[0], (TokenKind::Number, "0xFF_u8".into()));
        assert_eq!(toks[1], (TokenKind::Number, "1_000".into()));
        assert_eq!(toks[2], (TokenKind::Number, "2.5e-9".into()));
        assert_eq!(toks[3], (TokenKind::Number, "1".into()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[6], (TokenKind::Number, "10".into()));
        assert_eq!(toks[7], (TokenKind::Number, "3".into()));
        assert_eq!(toks[8], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[9], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn line_and_column_positions() {
        let src = "ab\n  cd \"é\" x";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        // The 2-byte é counts as one column inside the string.
        let x = toks.last().unwrap();
        assert_eq!((x.line, x.col), (2, 10));
        assert_eq!(x.text(src), "x");
    }

    #[test]
    fn unterminated_forms_consume_to_eof_without_panicking() {
        for src in ["\"abc", "'", "/* never closed", "r#\"open", "b\"oops"] {
            let toks = lex(src);
            assert!(toks.len() <= 1, "{src:?} lexes totally");
        }
    }
}
