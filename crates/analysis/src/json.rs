//! A minimal JSON value and emitter — just enough to write the machine-
//! readable lint report without pulling in serde (this crate is
//! dependency-free by design). Emission only; nothing in the lint engine
//! parses JSON.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so reports are stable
/// across runs (diffs stay reviewable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj([
            ("name", Json::str("lock-order")),
            ("count", Json::num(3)),
            ("clean", Json::Bool(true)),
            ("edges", Json::Arr(vec![Json::str("a->b")])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = v.render();
        assert!(text.contains("\"name\": \"lock-order\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let v = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }
}
