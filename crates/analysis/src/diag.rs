//! Diagnostics: what a lint reports, and how findings are rendered in the
//! rustc-style `file:line:col` text form.

use std::fmt;

/// Finding severity. `Warn` findings fail the build under
/// `--deny-warnings` unless allowlisted; `Note` findings are informational
/// (e.g. an allowlist entry that no longer matches anything) but still
/// fail under `--deny-warnings` so the allowlist cannot silently rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warn,
    Note,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Note => "note",
        }
    }
}

/// One finding from one lint at one source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The lint that produced this, e.g. `lock-order`.
    pub lint: &'static str,
    /// Workspace-relative path (empty for whole-workspace findings such as
    /// a documented-but-unimplemented env var).
    pub file: String,
    /// 1-based; 0 when the finding has no precise location.
    pub line: u32,
    pub col: u32,
    pub severity: Severity,
    pub message: String,
    /// Set by allowlist matching after the lints run: an allowed finding
    /// is reported in the JSON report but does not affect the exit code.
    pub allowed: bool,
}

impl Diagnostic {
    pub fn new(
        lint: &'static str,
        file: impl Into<String>,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            lint,
            file: file.into(),
            line,
            col,
            severity: Severity::Warn,
            message: message.into(),
            allowed: false,
        }
    }

    pub fn note(
        lint: &'static str,
        file: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            lint,
            file: file.into(),
            line: 0,
            col: 0,
            severity: Severity::Note,
            message: message.into(),
            allowed: false,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.severity.as_str())?;
        if self.allowed {
            write!(f, " (allowed)")?;
        }
        write!(f, ": [{}] ", self.lint)?;
        if !self.file.is_empty() {
            write!(f, "{}", self.file)?;
            if self.line > 0 {
                write!(f, ":{}:{}", self.line, self.col)?;
            }
            write!(f, ": ")?;
        }
        write!(f, "{}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_rustc_style() {
        let d = Diagnostic::new("lock-order", "crates/engine/src/pool.rs", 42, 9, "cycle");
        assert_eq!(
            d.to_string(),
            "warning: [lock-order] crates/engine/src/pool.rs:42:9: cycle"
        );
        let mut d = d;
        d.allowed = true;
        assert!(d.to_string().starts_with("warning (allowed):"));
        let n = Diagnostic::note("env-registry", "", "MARQSIM_GONE documented but unused");
        assert_eq!(
            n.to_string(),
            "note: [env-registry] MARQSIM_GONE documented but unused"
        );
    }
}
