//! Workspace discovery: walks the repository, loads and lexes every Rust
//! source file, classifies each (library vs. test vs. bench code), marks
//! `#[cfg(test)]` regions, and extracts function bodies by token-level
//! brace matching. Also loads the Markdown docs the consistency lints
//! compare against.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// How a source file participates in the build — lints apply different
/// rules to library code than to tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` of a crate (excluding `src/bin`).
    Lib,
    /// `src/bin/**` — binary entry points (CLI code may panic more freely,
    /// but still goes through panic hygiene).
    Bin,
    /// `tests/**` — integration tests.
    Test,
    /// `benches/**`.
    Bench,
    /// `examples/**`.
    Example,
}

impl FileKind {
    /// Test-like files are exempt from panic hygiene and lock-order
    /// analysis (test code unwraps and locks however it pleases).
    pub fn is_test_like(self) -> bool {
        matches!(self, FileKind::Test | FileKind::Bench | FileKind::Example)
    }
}

/// A function extracted from the token stream: its name and the token
/// range of its body (the tokens strictly between the outer braces).
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Token index of the opening `{` of the body.
    pub body_open: usize,
    /// Token index of the matching closing `}`.
    pub body_close: usize,
    /// Line of the `fn` keyword, for diagnostics.
    pub line: u32,
}

/// One loaded, lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Short crate label: the directory under `crates/` (`engine`, `obs`,
    /// …), or `marqsim` for the root facade.
    pub crate_name: String,
    pub kind: FileKind,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Byte ranges covered by `#[cfg(test)]`-gated items.
    test_ranges: Vec<(usize, usize)>,
    /// Functions in source order (nested functions and closures are not
    /// extracted separately; a closure's tokens belong to its enclosing
    /// function, which is the right granularity for lock analysis).
    pub functions: Vec<Function>,
}

impl SourceFile {
    /// Whether the byte offset lies inside a `#[cfg(test)]` region.
    pub fn is_test_code(&self, offset: usize) -> bool {
        self.kind.is_test_like()
            || self
                .test_ranges
                .iter()
                .any(|&(start, end)| offset >= start && offset < end)
    }

    /// The file stem (`pool` for `crates/engine/src/pool.rs`), used to
    /// qualify lock names.
    pub fn stem(&self) -> &str {
        let base = self.rel.rsplit('/').next().unwrap_or(&self.rel);
        base.strip_suffix(".rs").unwrap_or(base)
    }

    pub fn token_text(&self, index: usize) -> &str {
        self.tokens[index].text(&self.text)
    }
}

/// A Markdown document loaded for the doc-consistency lints.
#[derive(Debug)]
pub struct DocFile {
    pub rel: String,
    pub text: String,
}

/// The loaded workspace: every lexed Rust file plus the docs.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    pub docs: Vec<DocFile>,
}

impl Workspace {
    /// Loads the workspace rooted at `root`. Skips `target/`, `.git/`,
    /// `vendor/` (third-party stand-ins follow their own conventions) and
    /// the lint engine's own test fixtures (which contain deliberate
    /// violations).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut docs = Vec::new();
        walk(root, root, &mut files, &mut docs)?;
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        docs.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            docs,
        })
    }

    /// Builds a workspace from in-memory sources — used by the fixture
    /// tests. Each entry is `(relative path, text)`; docs entries are
    /// recognized by their `.md` extension.
    pub fn from_sources(entries: &[(&str, &str)]) -> Workspace {
        let mut files = Vec::new();
        let mut docs = Vec::new();
        for (rel, text) in entries {
            if rel.ends_with(".md") {
                docs.push(DocFile {
                    rel: rel.to_string(),
                    text: text.to_string(),
                });
            } else {
                files.push(load_source(rel, text.to_string()));
            }
        }
        Workspace {
            root: PathBuf::from("."),
            files,
            docs,
        }
    }

    pub fn doc(&self, rel: &str) -> Option<&DocFile> {
        self.docs.iter().find(|d| d.rel == rel)
    }
}

fn walk(
    root: &Path,
    dir: &Path,
    files: &mut Vec<SourceFile>,
    docs: &mut Vec<DocFile>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if matches!(&*name, "target" | ".git" | "vendor" | "node_modules") {
                continue;
            }
            // The lint engine's own fixtures contain deliberate violations.
            let rel = rel_of(root, &path);
            if rel.starts_with("crates/analysis/tests/fixtures") {
                continue;
            }
            walk(root, &path, files, docs)?;
        } else if name.ends_with(".rs") {
            let rel = rel_of(root, &path);
            if !is_scanned_rust_path(&rel) {
                continue;
            }
            let text = fs::read_to_string(&path)?;
            files.push(load_source(&rel, text));
        } else if name.ends_with(".md") {
            let rel = rel_of(root, &path);
            if rel == "README.md" || rel.starts_with("docs/") {
                let text = fs::read_to_string(&path)?;
                docs.push(DocFile { rel, text });
            }
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Only source under a recognized build root is scanned; stray `.rs`
/// files (scripts, codegen output at the top level) are not part of any
/// crate and would only produce noise.
fn is_scanned_rust_path(rel: &str) -> bool {
    let in_crate = rel.strip_prefix("crates/").map(|rest| {
        rest.split_once('/')
            .map(|(_, tail)| tail)
            .unwrap_or(rest)
            .to_string()
    });
    let tail = match in_crate {
        Some(tail) => tail,
        None => rel.to_string(),
    };
    ["src/", "tests/", "benches/", "examples/"]
        .iter()
        .any(|prefix| tail.starts_with(prefix))
}

fn classify(rel: &str) -> (String, FileKind) {
    let (crate_name, tail) = match rel.strip_prefix("crates/") {
        Some(rest) => match rest.split_once('/') {
            Some((name, tail)) => (name.to_string(), tail),
            None => (rest.to_string(), ""),
        },
        None => ("marqsim".to_string(), rel),
    };
    let kind = if tail.starts_with("src/bin/") {
        FileKind::Bin
    } else if tail.starts_with("src/") {
        FileKind::Lib
    } else if tail.starts_with("tests/") {
        FileKind::Test
    } else if tail.starts_with("benches/") {
        FileKind::Bench
    } else {
        FileKind::Example
    };
    (crate_name, kind)
}

fn load_source(rel: &str, text: String) -> SourceFile {
    let tokens = lex(&text);
    let test_ranges = find_test_ranges(&text, &tokens);
    let functions = find_functions(&text, &tokens);
    let (crate_name, kind) = classify(rel);
    SourceFile {
        rel: rel.to_string(),
        crate_name,
        kind,
        text,
        tokens,
        test_ranges,
        functions,
    }
}

fn is(tokens: &[Token], src: &str, i: usize, kind: TokenKind, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == kind && t.text(src) == text)
}

/// Finds the token index of the `}` matching the `{` at `open`, or the
/// last token if unbalanced (total over malformed input).
pub fn matching_brace(tokens: &[Token], src: &str, open: usize) -> usize {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        if tok.kind == TokenKind::Punct {
            match tok.text(src) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Byte ranges of `#[cfg(test)]`-gated items: the attribute pattern
/// `#` `[` `cfg` `(` `test` `)` `]` followed (possibly via further
/// attributes) by an item whose body is brace-matched. Handles both
/// `#[cfg(test)] mod tests { … }` and `#[cfg(test)] fn helper() { … }`.
fn find_test_ranges(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let matched = is(tokens, src, i, TokenKind::Punct, "#")
            && is(tokens, src, i + 1, TokenKind::Punct, "[")
            && is(tokens, src, i + 2, TokenKind::Ident, "cfg")
            && is(tokens, src, i + 3, TokenKind::Punct, "(")
            && is(tokens, src, i + 4, TokenKind::Ident, "test")
            && is(tokens, src, i + 5, TokenKind::Punct, ")")
            && is(tokens, src, i + 6, TokenKind::Punct, "]");
        if !matched {
            i += 1;
            continue;
        }
        // Skip any further attributes, then find the item's opening brace
        // (or terminating `;` for e.g. `#[cfg(test)] use …;`).
        let mut j = i + 7;
        while is(tokens, src, j, TokenKind::Punct, "#")
            && is(tokens, src, j + 1, TokenKind::Punct, "[")
        {
            // Skip to the matching `]`.
            let mut depth = 0usize;
            while j < tokens.len() {
                match (tokens[j].kind, tokens[j].text(src)) {
                    (TokenKind::Punct, "[") => depth += 1,
                    (TokenKind::Punct, "]") => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let mut open = None;
        let mut k = j;
        while k < tokens.len() {
            match (tokens[k].kind, tokens[k].text(src)) {
                (TokenKind::Punct, "{") => {
                    open = Some(k);
                    break;
                }
                (TokenKind::Punct, ";") => break,
                _ => k += 1,
            }
        }
        if let Some(open) = open {
            let close = matching_brace(tokens, src, open);
            ranges.push((tokens[i].start, tokens[close].end));
            i = close + 1;
        } else {
            i = k + 1;
        }
    }
    ranges
}

/// Extracts `fn` items by scanning for the `fn` keyword, taking the next
/// identifier as the name, and brace-matching the first `{` reached at
/// paren/bracket depth zero (a `;` first means a bodiless trait method /
/// extern decl, which is skipped).
fn find_functions(src: &str, tokens: &[Token]) -> Vec<Function> {
    let mut functions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Ident && tokens[i].text(src) == "fn") {
            i += 1;
            continue;
        }
        let fn_line = tokens[i].line;
        let name = match tokens.get(i + 1) {
            Some(t) if t.kind == TokenKind::Ident => t.text(src).to_string(),
            // `fn(` — a function-pointer type, not an item.
            _ => {
                i += 1;
                continue;
            }
        };
        let mut depth = 0isize;
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            match (tokens[j].kind, tokens[j].text(src)) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => depth -= 1,
                (TokenKind::Punct, "{") if depth == 0 => {
                    open = Some(j);
                    break;
                }
                (TokenKind::Punct, ";") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        match open {
            Some(open) => {
                let close = matching_brace(tokens, src, open);
                functions.push(Function {
                    name,
                    body_open: open,
                    body_close: close,
                    line: fn_line,
                });
                // Continue scanning *inside* the body too: nested fns are
                // their own items, and the outer entry already spans them.
                i = open + 1;
            }
            None => i = j + 1,
        }
    }
    functions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/engine/src/pool.rs").0, "engine");
        assert_eq!(classify("crates/engine/src/pool.rs").1, FileKind::Lib);
        assert_eq!(
            classify("crates/serve/src/bin/marqsim_served.rs").1,
            FileKind::Bin
        );
        assert_eq!(
            classify("crates/engine/tests/pool_stress.rs").1,
            FileKind::Test
        );
        assert_eq!(classify("src/lib.rs").0, "marqsim");
        assert_eq!(classify("src/lib.rs").1, FileKind::Lib);
    }

    #[test]
    fn scanned_paths() {
        assert!(is_scanned_rust_path("crates/engine/src/pool.rs"));
        assert!(is_scanned_rust_path("src/lib.rs"));
        assert!(is_scanned_rust_path("tests/e2e.rs"));
        assert!(!is_scanned_rust_path("scripts/gen.rs"));
    }

    #[test]
    fn cfg_test_regions_are_found() {
        let src = r#"
            pub fn lib_code() { value.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { other.unwrap(); }
            }
        "#;
        let file = load_source("crates/x/src/lib.rs", src.to_string());
        let lib_unwrap = src.find("value.unwrap").unwrap();
        let test_unwrap = src.find("other.unwrap").unwrap();
        assert!(!file.is_test_code(lib_unwrap));
        assert!(file.is_test_code(test_unwrap));
    }

    #[test]
    fn functions_with_tricky_signatures() {
        let src = r#"
            fn plain() { body(); }
            fn generic<T: Fn() -> u8>(f: T) -> Result<Vec<u8>, Error>
            where T: Clone { inner(); }
            trait T { fn bodiless(&self); fn with_default(&self) { x(); } }
            type F = fn(u8) -> u8;
        "#;
        let file = load_source("crates/x/src/lib.rs", src.to_string());
        let names: Vec<_> = file.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["plain", "generic", "with_default"]);
    }

    #[test]
    fn nested_functions_are_separate_entries() {
        let src = "fn outer() { fn inner() { a(); } b(); }";
        let file = load_source("crates/x/src/lib.rs", src.to_string());
        let names: Vec<_> = file.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
