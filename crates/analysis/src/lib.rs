//! marqsim-analysis: workspace-specific static analysis.
//!
//! This crate is the lint engine behind `cargo run -p marqsim-analysis`
//! (the `marqsim-lint` binary). It is deliberately dependency-free — no
//! syn, no proc-macro2 — so it builds and runs even when the rest of the
//! workspace does not, and so the lint layer can never be the thing that
//! drags in a supply chain. Instead of a full parser it uses a hand-rolled
//! span-aware [`lexer`] plus token-pattern matching, which is exactly
//! enough for the workspace-specific properties checked here:
//!
//! - [`lints::lock_order`] — reconstructs the workspace lock graph from
//!   `.lock()` / `.read()` / `.write()` call sites, propagates acquisitions
//!   inter-procedurally, and flags cycles (potential deadlocks) plus locks
//!   held across thread-pool / channel-send boundaries.
//! - [`lints::panic_hygiene`] — `unwrap()` / `expect()` / `panic!` in
//!   non-test library code, with existing debt enumerated (not hidden) in
//!   the checked-in allowlist `analysis/allow.toml`.
//! - [`lints::env_registry`] — every `MARQSIM_*` env var must be read
//!   through a designated config module and documented, and every
//!   documented var must still exist in code.
//! - [`lints::telemetry_names`] — metric and span names at `obs` call
//!   sites must match the naming grammar and the `docs/observability.md`
//!   catalog, both ways.
//! - [`lints::protocol_doc`] — serve verbs and events in `protocol.rs`
//!   must match `docs/serve-protocol.md` and be exercised by tests.
//!
//! The static pass is complemented by a *runtime* witness in
//! `marqsim-obs` (`obs::lockcheck`): a debug-assertions-only lock-order
//! checker wired into the same locks the static lint models, so the
//! stress suites dynamically validate what the static pass claims.
//!
//! See `docs/analysis.md` for the lint catalog, the allowlist format, and
//! how to add a lint.

pub mod allow;
pub mod diag;
pub mod json;
pub mod lexer;
pub mod lint;
pub mod lints;
pub mod source;

pub use allow::Allowlist;
pub use diag::{Diagnostic, Severity};
pub use lint::{run_lints, LintSink, Report};
pub use source::{FileKind, SourceFile, Workspace};
