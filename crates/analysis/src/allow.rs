//! The checked-in allowlist (`analysis/allow.toml`): existing debt is
//! enumerated, not hidden. Parsed with a hand-rolled TOML-subset reader
//! (this crate is dependency-free), which accepts exactly the shape the
//! allowlist uses:
//!
//! ```toml
//! # comment
//! [[allow]]
//! lint = "panic-hygiene"
//! path = "crates/engine/src/engine.rs"
//! contains = "spawn job coordinator"   # optional message substring
//! count = 1                            # optional exact expected matches
//! reason = "thread spawn failure at submit time is unrecoverable"
//! ```
//!
//! Every entry must carry a `reason`. If `count` is set, the number of
//! matching findings must equal it exactly — fewer means the debt was
//! paid down and the entry is stale, more means new debt crept in under
//! an existing entry; both are reported so the allowlist tracks reality.

use std::fmt;

use crate::diag::{Diagnostic, Severity};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    pub lint: String,
    /// Workspace-relative path; a trailing `*` makes it a prefix match.
    pub path: String,
    /// If set, only findings whose message contains this substring match.
    pub contains: Option<String>,
    /// If set, exactly this many findings must match.
    pub count: Option<usize>,
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for error reporting.
    pub line: u32,
}

impl AllowEntry {
    fn matches(&self, diag: &Diagnostic) -> bool {
        if diag.lint != self.lint {
            return false;
        }
        let path_ok = match self.path.strip_suffix('*') {
            Some(prefix) => diag.file.starts_with(prefix),
            None => diag.file == self.path,
        };
        if !path_ok {
            return false;
        }
        self.contains
            .as_ref()
            .is_none_or(|needle| diag.message.contains(needle))
    }
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

/// A parse failure: line number and what went wrong.
#[derive(Debug)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allow.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Allowlist, ParseError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for (index, raw) in text.lines().enumerate() {
            let line_no = index as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(done) = current.take() {
                    entries.push(validate(done)?);
                }
                current = Some(AllowEntry {
                    lint: String::new(),
                    path: String::new(),
                    contains: None,
                    count: None,
                    reason: String::new(),
                    line: line_no,
                });
                continue;
            }
            let entry = current.as_mut().ok_or_else(|| ParseError {
                line: line_no,
                message: "expected [[allow]] before key assignments".into(),
            })?;
            let (key, value) = line.split_once('=').ok_or_else(|| ParseError {
                line: line_no,
                message: format!("expected `key = value`, got {line:?}"),
            })?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "lint" => entry.lint = parse_string(value, line_no)?,
                "path" => entry.path = parse_string(value, line_no)?,
                "contains" => entry.contains = Some(parse_string(value, line_no)?),
                "reason" => entry.reason = parse_string(value, line_no)?,
                "count" => {
                    entry.count = Some(value.parse().map_err(|_| ParseError {
                        line: line_no,
                        message: format!("count must be a non-negative integer, got {value:?}"),
                    })?)
                }
                other => {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("unknown key {other:?}"),
                    })
                }
            }
        }
        if let Some(done) = current.take() {
            entries.push(validate(done)?);
        }
        Ok(Allowlist { entries })
    }

    /// Marks every diagnostic matched by some entry as `allowed`, and
    /// appends drift notes: entries matching nothing, and entries whose
    /// `count` no longer equals the number of matches.
    pub fn apply(&self, diags: &mut Vec<Diagnostic>) {
        let mut matched = vec![0usize; self.entries.len()];
        for diag in diags.iter_mut() {
            // Notes produced by the engine itself (drift notes from a
            // previous stage) are never allowlisted.
            if diag.severity == Severity::Note {
                continue;
            }
            for (i, entry) in self.entries.iter().enumerate() {
                if entry.matches(diag) {
                    diag.allowed = true;
                    matched[i] += 1;
                    break;
                }
            }
        }
        for (entry, &hits) in self.entries.iter().zip(&matched) {
            if hits == 0 {
                diags.push(Diagnostic::note(
                    "allowlist",
                    "analysis/allow.toml",
                    format!(
                        "stale entry (line {}): no finding matches lint={:?} path={:?}",
                        entry.line, entry.lint, entry.path
                    ),
                ));
            } else if let Some(expected) = entry.count {
                if hits != expected {
                    diags.push(Diagnostic::note(
                        "allowlist",
                        "analysis/allow.toml",
                        format!(
                            "count drift (line {}): entry for lint={:?} path={:?} expects {} finding(s), matched {}",
                            entry.line, entry.lint, entry.path, expected, hits
                        ),
                    ));
                }
            }
        }
    }
}

fn validate(entry: AllowEntry) -> Result<AllowEntry, ParseError> {
    for (field, value) in [
        ("lint", &entry.lint),
        ("path", &entry.path),
        ("reason", &entry.reason),
    ] {
        if value.is_empty() {
            return Err(ParseError {
                line: entry.line,
                message: format!("[[allow]] entry is missing required key {field:?}"),
            });
        }
    }
    Ok(entry)
}

/// Strips a trailing `#` comment, honoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_string(value: &str, line: u32) -> Result<String, ParseError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected a double-quoted string, got {value}"),
        })?;
    // Unescape the two sequences the allowlist can need; anything else
    // passes through literally.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# workspace debt register
[[allow]]
lint = "panic-hygiene"
path = "crates/engine/src/engine.rs"
contains = "expect"  # message substring
count = 2
reason = "startup-time spawn failures are unrecoverable"

[[allow]]
lint = "lock-order"
path = "crates/serve/src/*"
reason = "gate ordering requires send under lock"
"##;

    #[test]
    fn parses_entries() {
        let list = Allowlist::parse(SAMPLE).expect("parses");
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].lint, "panic-hygiene");
        assert_eq!(list.entries[0].count, Some(2));
        assert_eq!(list.entries[0].contains.as_deref(), Some("expect"));
        assert_eq!(list.entries[1].path, "crates/serve/src/*");
        assert!(list.entries[1].count.is_none());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = Allowlist::parse("[[allow]]\nlint = \"x\"\npath = \"y\"\n").unwrap_err();
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn apply_marks_allowed_and_reports_drift() {
        let list = Allowlist::parse(SAMPLE).expect("parses");
        let mut diags = vec![
            Diagnostic::new(
                "panic-hygiene",
                "crates/engine/src/engine.rs",
                10,
                5,
                "expect() in library code",
            ),
            Diagnostic::new(
                "lock-order",
                "crates/serve/src/server.rs",
                20,
                9,
                "lock held across send",
            ),
            Diagnostic::new("panic-hygiene", "crates/obs/src/log.rs", 3, 1, "unwrap()"),
        ];
        list.apply(&mut diags);
        assert!(diags[0].allowed);
        assert!(diags[1].allowed);
        assert!(!diags[2].allowed);
        // count=2 but only 1 matched → drift note.
        assert!(diags
            .iter()
            .any(|d| d.lint == "allowlist" && d.message.contains("count drift")));
    }

    #[test]
    fn stale_entries_are_noted() {
        let list =
            Allowlist::parse("[[allow]]\nlint = \"x\"\npath = \"gone.rs\"\nreason = \"old\"\n")
                .expect("parses");
        let mut diags = Vec::new();
        list.apply(&mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("stale entry"));
    }
}
