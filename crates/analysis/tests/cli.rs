//! End-to-end tests of the `marqsim-lint` binary: exit codes, the JSON
//! report, and flag handling, driven over the on-disk fixture workspaces.

use std::path::PathBuf;
use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_marqsim-lint"))
        .args(args)
        .output()
        .expect("run marqsim-lint")
}

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn clean_fixture_exits_zero_even_under_deny_warnings() {
    let out = lint(&["--root", &fixture("clean"), "--deny-warnings"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "expected success, stderr:\n{stderr}");
    assert!(stderr.contains("0 warning(s)"), "{stderr}");
}

#[test]
fn violating_fixture_exits_nonzero_and_names_the_lints() {
    let out = lint(&["--root", &fixture("bad")]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[lock-order]"), "{stderr}");
    assert!(stderr.contains("[panic-hygiene]"), "{stderr}");
    assert!(stderr.contains("[env-registry]"), "{stderr}");
    assert!(stderr.contains("lock-order cycle"), "{stderr}");
}

#[test]
fn lint_filter_restricts_the_run() {
    let out = lint(&["--root", &fixture("bad"), "--lint", "env-registry"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[env-registry]"), "{stderr}");
    assert!(!stderr.contains("[panic-hygiene]"), "{stderr}");
}

#[test]
fn json_report_is_written_and_carries_the_lock_graph() {
    let path =
        std::env::temp_dir().join(format!("marqsim-lint-report-{}.json", std::process::id()));
    let path_str = path.to_string_lossy().into_owned();
    let out = lint(&["--root", &fixture("bad"), "--json", &path_str]);
    assert_eq!(out.status.code(), Some(1));
    let report = std::fs::read_to_string(&path).expect("report written");
    let _ = std::fs::remove_file(&path);
    assert!(report.contains("\"tool\": \"marqsim-lint\""), "{report}");
    assert!(report.contains("\"clean\": false"), "{report}");
    assert!(report.contains("\"lock_graph\""), "{report}");
    assert!(report.contains("demo/lib.alpha"), "{report}");
}

#[test]
fn unknown_lint_name_is_a_usage_error() {
    let out = lint(&["--lint", "no-such-lint"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_prints_every_registered_lint() {
    let out = lint(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "lock-order",
        "panic-hygiene",
        "env-registry",
        "telemetry-names",
        "protocol-doc",
    ] {
        assert!(stdout.contains(name), "{stdout}");
    }
}
