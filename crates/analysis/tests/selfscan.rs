//! The lint engine run against the live workspace: the repo must scan
//! clean modulo `analysis/allow.toml`, and the reconstructed lock graph
//! must contain the locks the runtime witness shadows — with no cycles.

use std::path::Path;

use marqsim_analysis::json::Json;
use marqsim_analysis::{run_lints, Allowlist, Workspace};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn live_report() -> marqsim_analysis::Report {
    let root = workspace_root();
    let ws = Workspace::load(root).expect("workspace loads");
    let allow_text = std::fs::read_to_string(root.join("analysis/allow.toml"))
        .expect("analysis/allow.toml is checked in");
    let allow = Allowlist::parse(&allow_text).expect("allowlist parses");
    run_lints(&ws, &allow, None)
}

#[test]
fn workspace_is_clean_modulo_allowlist() {
    let report = live_report();
    let active: Vec<String> = report.active_findings().map(|d| d.to_string()).collect();
    assert!(
        active.is_empty(),
        "live workspace has unallowed findings (fix them or extend \
         analysis/allow.toml with a reviewed reason):\n{}",
        active.join("\n")
    );
}

#[test]
fn lock_graph_names_the_witnessed_locks_and_has_no_cycles() {
    let report = live_report();
    let graph = report
        .sections
        .iter()
        .find(|(name, _)| *name == "lock_graph")
        .map(|(_, value)| value)
        .expect("lock-order lint contributes a lock_graph section");
    let Json::Obj(pairs) = graph else {
        panic!("lock_graph is an object");
    };
    let field = |key: &str| {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("lock_graph has a `{key}` field"))
    };

    let Json::Arr(nodes) = field("nodes") else {
        panic!("nodes is an array");
    };
    let names: Vec<&str> = nodes
        .iter()
        .filter_map(|node| match node {
            Json::Obj(fields) => fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("name", Json::Str(s)) => Some(s.as_str()),
                _ => None,
            }),
            _ => None,
        })
        .collect();
    // The locks the runtime witness (obs::lockcheck) shadows must all be
    // visible to the static analysis under their source names.
    for expected in ["engine/pool.state", "engine/shard.shards", "obs/trace.SINK"] {
        assert!(
            names.contains(&expected),
            "lock graph should contain `{expected}`; nodes: {names:?}"
        );
    }

    let Json::Arr(cycles) = field("cycles") else {
        panic!("cycles is an array");
    };
    assert!(
        cycles.is_empty(),
        "live workspace lock graph has cycles: {cycles:?}"
    );
}
