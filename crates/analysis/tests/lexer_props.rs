//! Property tests for the span-aware lexer: spans must exactly tile the
//! token text, stay ordered and in bounds on arbitrary input, and survive
//! a whitespace-normalizing round trip.

use marqsim_analysis::lexer::{lex, TokenKind};
use quickprop::{check, Config, Gen};

/// Building blocks a generated source file is assembled from. Comments
/// and raw/byte literals are included deliberately — they are where the
/// hand-rolled scanner has the most edge cases.
const FRAGMENTS: &[&str] = &[
    "fn",
    "pub",
    "let",
    "self",
    "match",
    "identifier",
    "x2",
    "r#async",
    "0",
    "42",
    "0xFF_u8",
    "0b1010",
    "2.5",
    "1e9",
    "3.25e-4",
    "7_000",
    "\"plain string\"",
    "\"esc \\\" aped\"",
    "r\"raw\"",
    "r#\"raw # quote \"#",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "'x'",
    "'\\n'",
    "b'z'",
    "'static",
    "'a",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    ",",
    ";",
    ".",
    ":",
    "#",
    "!",
    "&",
    "|",
    "=",
    "+",
    "-",
    "*",
    "/",
    "?",
    "@",
    "// line comment\n",
    "/* block */",
    "/* nested /* deeper */ out */",
    " ",
    "\n",
    "\t",
];

fn generate_source(gen: &mut Gen) -> String {
    let parts = gen.vec_of(0..60, |g| *g.choose(FRAGMENTS));
    // Space-join so fragments cannot merge into different tokens (e.g. two
    // `/` puncts becoming a line comment).
    parts.join(" ")
}

/// Spans are strictly ordered, in bounds, on char boundaries, and each
/// token's `text()` is exactly the source slice it claims.
fn span_invariants(source: &str) -> Result<(), String> {
    let tokens = lex(source);
    let mut cursor = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.start >= tok.end {
            return Err(format!(
                "token {i} has empty span {}..{}",
                tok.start, tok.end
            ));
        }
        if tok.start < cursor {
            return Err(format!("token {i} overlaps the previous one"));
        }
        if tok.end > source.len() {
            return Err(format!("token {i} ends past the source"));
        }
        if !source.is_char_boundary(tok.start) || !source.is_char_boundary(tok.end) {
            return Err(format!("token {i} span not on char boundaries"));
        }
        if tok.text(source) != &source[tok.start..tok.end] {
            return Err(format!("token {i} text disagrees with its span"));
        }
        cursor = tok.end;
    }
    Ok(())
}

#[test]
fn spans_tile_generated_sources() {
    check(
        "lexer span invariants",
        Config::default().with_seed(0x1E8E1).with_cases(200),
        generate_source,
        |source| span_invariants(source),
    );
}

#[test]
fn relex_of_token_texts_preserves_kinds() {
    check(
        "lexer round trip",
        Config::default().with_seed(0xB0B).with_cases(200),
        generate_source,
        |source| {
            let tokens = lex(source);
            let kinds: Vec<TokenKind> = tokens.iter().map(|t| t.kind).collect();
            let rejoined = tokens
                .iter()
                .map(|t| t.text(source))
                .collect::<Vec<_>>()
                .join(" ");
            let relexed: Vec<TokenKind> = lex(&rejoined).iter().map(|t| t.kind).collect();
            if kinds != relexed {
                return Err(format!(
                    "kinds changed after round trip:\n  source: {source:?}\n  rejoined: {rejoined:?}"
                ));
            }
            Ok(())
        },
    );
}

/// The lexer must be total: arbitrary junk — including unterminated
/// strings, stray quotes, and non-ASCII — must lex without panicking and
/// still satisfy the span invariants.
#[test]
fn lexing_is_total_on_arbitrary_text() {
    check(
        "lexer totality",
        Config::default().with_seed(0xDEAD).with_cases(300),
        |gen| {
            let chars: Vec<char> = gen.vec_of(0..80, |g| {
                *g.choose(&[
                    'a', 'Z', '0', '9', '_', ' ', '\n', '\t', '"', '\'', '\\', '/', '*', '#', 'r',
                    'b', '{', '}', '(', ')', '.', 'é', 'λ', '€', '中',
                ])
            });
            chars.into_iter().collect::<String>()
        },
        |source: &String| span_invariants(source),
    );
}
