//! Per-lint fixture tests: each lint is run over a small in-memory
//! workspace containing a known-good and a known-bad example, asserting
//! both that violations are reported and that clean code stays quiet.

use marqsim_analysis::{run_lints, Allowlist, Workspace};

/// Runs one lint over in-memory sources and returns the rendered
/// diagnostics.
fn scan(entries: &[(&str, &str)], lint: &str) -> Vec<String> {
    let ws = Workspace::from_sources(entries);
    run_lints(&ws, &Allowlist::default(), Some(&[lint]))
        .diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect()
}

// -- lock-order -------------------------------------------------------------

const INCONSISTENT_ORDER: &str = r#"
use std::sync::Mutex;
pub struct Pair { alpha: Mutex<u32>, beta: Mutex<u32> }
impl Pair {
    pub fn alpha_then_beta(&self) -> u32 {
        let alpha = self.alpha.lock().unwrap();
        let beta = self.beta.lock().unwrap();
        *alpha + *beta
    }
    pub fn beta_then_alpha(&self) -> u32 {
        let beta = self.beta.lock().unwrap();
        let alpha = self.alpha.lock().unwrap();
        *alpha - *beta
    }
}
"#;

#[test]
fn lock_order_flags_inconsistent_acquisition_order() {
    let diags = scan(
        &[("crates/demo/src/lib.rs", INCONSISTENT_ORDER)],
        "lock-order",
    );
    assert!(
        diags.iter().any(|d| d.contains("lock-order cycle")),
        "expected a cycle diagnostic, got: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.contains("demo/lib.alpha")),
        "cycle should name the locks: {diags:?}"
    );
}

#[test]
fn lock_order_accepts_consistent_order() {
    let src = r#"
use std::sync::Mutex;
pub struct Pair { alpha: Mutex<u32>, beta: Mutex<u32> }
impl Pair {
    pub fn sum(&self) -> u32 {
        let alpha = self.alpha.lock().unwrap();
        let beta = self.beta.lock().unwrap();
        *alpha + *beta
    }
    pub fn product(&self) -> u32 {
        let alpha = self.alpha.lock().unwrap();
        let beta = self.beta.lock().unwrap();
        *alpha * *beta
    }
}
"#;
    let diags = scan(&[("crates/demo/src/lib.rs", src)], "lock-order");
    assert!(diags.is_empty(), "consistent order is clean: {diags:?}");
}

#[test]
fn lock_order_flags_guard_held_across_send() {
    let src = r#"
use std::sync::{mpsc::Sender, Mutex};
pub fn drain(queue: &Mutex<Vec<u32>>, tx: &Sender<u32>) {
    let guard = queue.lock().unwrap();
    for item in guard.iter() {
        let _ = tx.send(*item);
    }
}
"#;
    let diags = scan(&[("crates/demo/src/lib.rs", src)], "lock-order");
    assert!(
        diags.iter().any(|d| d.contains("held across `.send(`")),
        "expected a boundary diagnostic: {diags:?}"
    );
}

#[test]
fn lock_order_allows_send_after_guard_dropped() {
    let src = r#"
use std::sync::{mpsc::Sender, Mutex};
pub fn drain(queue: &Mutex<Vec<u32>>, tx: &Sender<u32>) {
    let guard = queue.lock().unwrap();
    let items = guard.clone();
    drop(guard);
    for item in items {
        let _ = tx.send(item);
    }
}
"#;
    let diags = scan(&[("crates/demo/src/lib.rs", src)], "lock-order");
    assert!(diags.is_empty(), "send after drop is clean: {diags:?}");
}

// -- panic-hygiene ----------------------------------------------------------

#[test]
fn panic_hygiene_flags_library_unwrap_but_not_tests() {
    let lib = r#"
pub fn first(values: &[u32]) -> u32 {
    *values.first().unwrap()
}
#[cfg(test)]
mod tests {
    #[test]
    fn gated() { let _ = "x".parse::<u32>().unwrap(); }
}
"#;
    let test_file = r#"
#[test]
fn integration() { let _ = "1".parse::<u32>().unwrap(); }
"#;
    let diags = scan(
        &[
            ("crates/demo/src/lib.rs", lib),
            ("crates/demo/tests/it.rs", test_file),
        ],
        "panic-hygiene",
    );
    assert_eq!(diags.len(), 1, "only the library unwrap: {diags:?}");
    assert!(diags[0].contains("crates/demo/src/lib.rs:3"));
}

#[test]
fn panic_hygiene_flags_expect_and_panic_with_messages() {
    let lib = r#"
pub fn load(path: &str) -> String {
    std::fs::read_to_string(path).expect("config present")
}
pub fn boom() { panic!("unreachable state"); }
"#;
    let diags = scan(&[("crates/demo/src/lib.rs", lib)], "panic-hygiene");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags[0].contains("config present"));
    assert!(diags[1].contains("panic!"));
}

// -- env-registry -----------------------------------------------------------

#[test]
fn env_registry_flags_stray_and_undocumented_reads() {
    let lib = r#"
pub fn threads() -> Option<String> { std::env::var("MARQSIM_STRAY").ok() }
"#;
    let diags = scan(&[("crates/demo/src/lib.rs", lib)], "env-registry");
    assert!(
        diags.iter().any(|d| d.contains("outside a config module")),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.contains("not documented")),
        "{diags:?}"
    );
}

#[test]
fn env_registry_accepts_documented_read_in_config_module() {
    let config = r#"
pub fn level() -> Option<String> { std::env::var("MARQSIM_LOG").ok() }
"#;
    let doc = "The `MARQSIM_LOG` variable sets the level.\n";
    let diags = scan(
        &[
            ("crates/obs/src/log.rs", config),
            ("docs/observability.md", doc),
        ],
        "env-registry",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn env_registry_flags_documented_but_vanished_var() {
    let diags = scan(
        &[
            ("crates/demo/src/lib.rs", "pub fn nothing() {}\n"),
            ("docs/config.md", "Set `MARQSIM_GONE` to enable it.\n"),
        ],
        "env-registry",
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].contains("MARQSIM_GONE") && diags[0].contains("no longer exists"));
}

// -- telemetry-names --------------------------------------------------------

const OBS_DOC: &str = "\
| name | kind |\n|---|---|\n| `marqsim_demo_hits_total` | counter |\n\n\
| span | emitted by |\n|---|---|\n| `demo_phase` | demo |\n";

#[test]
fn telemetry_names_accepts_cataloged_conforming_names() {
    let lib = r#"
pub fn instruments(registry: &Registry) {
    let _ = registry.counter("marqsim_demo_hits_total");
    let _span = Span::enter("demo_phase");
}
"#;
    let diags = scan(
        &[
            ("crates/demo/src/lib.rs", lib),
            ("docs/observability.md", OBS_DOC),
        ],
        "telemetry-names",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn telemetry_names_flags_grammar_and_catalog_drift() {
    let lib = r#"
pub fn instruments(registry: &Registry) {
    let _ = registry.counter("demo_hits");
    let _ = registry.gauge("marqsim_demo_depth");
}
"#;
    let diags = scan(
        &[
            ("crates/demo/src/lib.rs", lib),
            ("docs/observability.md", OBS_DOC),
        ],
        "telemetry-names",
    );
    // `demo_hits`: bad grammar + not in catalog; `marqsim_demo_depth`:
    // conforming gauge but undocumented; catalog counter + span unused.
    assert!(
        diags
            .iter()
            .any(|d| d.contains("does not match the grammar")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.contains("`marqsim_demo_depth` is not in")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.contains("`marqsim_demo_hits_total` has no registration site")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.contains("`demo_phase` is never emitted")),
        "{diags:?}"
    );
}

// -- protocol-doc -----------------------------------------------------------

#[test]
fn protocol_doc_flags_drift_in_both_directions() {
    let protocol = r#"
pub fn encode() {
    let _ = ("verb", "submit");
    let _ = ("verb", "zap");
}
"#;
    let doc = "Request: {\"verb\":\"submit\"}\nAlso documented: {\"verb\":\"gone\"}\n";
    let tests = r#"
#[test]
fn covers() { let _ = ("submit", "zap", "gone"); }
"#;
    let diags = scan(
        &[
            ("crates/serve/src/protocol.rs", protocol),
            ("crates/serve/tests/proto.rs", tests),
            ("docs/serve-protocol.md", doc),
        ],
        "protocol-doc",
    );
    assert!(
        diags
            .iter()
            .any(|d| d.contains("verb `zap` is implemented but not documented")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.contains("documented verb `gone` is not implemented")),
        "{diags:?}"
    );
}

#[test]
fn protocol_doc_flags_missing_test_coverage() {
    let protocol = r#"
pub fn encode() { let _ = ("verb", "submit"); }
"#;
    let doc = "Request: {\"verb\":\"submit\"}\n";
    let diags = scan(
        &[
            ("crates/serve/src/protocol.rs", protocol),
            ("docs/serve-protocol.md", doc),
        ],
        "protocol-doc",
    );
    assert!(
        diags
            .iter()
            .any(|d| d.contains("verb `submit` has no test coverage")),
        "{diags:?}"
    );
}

// -- allowlist --------------------------------------------------------------

#[test]
fn allowlist_suppresses_counts_and_reports_drift() {
    let lib = r#"
pub fn first(values: &[u32]) -> u32 { *values.first().unwrap() }
"#;
    let ws = Workspace::from_sources(&[("crates/demo/src/lib.rs", lib)]);
    let allow = marqsim_analysis::Allowlist::parse(
        r#"
[[allow]]
lint = "panic-hygiene"
path = "crates/demo/src/lib.rs"
count = 1
reason = "fixture"

[[allow]]
lint = "panic-hygiene"
path = "crates/demo/src/gone.rs"
reason = "stale"
"#,
    )
    .expect("allowlist parses");
    let report = run_lints(&ws, &allow, Some(&["panic-hygiene"]));
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    // The unwrap is allowed; the unmatched entry surfaces as a stale note,
    // which keeps the report non-clean so drift cannot hide.
    assert!(
        rendered.iter().any(|d| d.contains("(allowed)")),
        "{rendered:?}"
    );
    assert!(rendered.iter().any(|d| d.contains("stale")), "{rendered:?}");
    assert!(!report.is_clean());
}
