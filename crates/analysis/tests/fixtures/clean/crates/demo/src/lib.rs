//! Fixture: a well-behaved library file — consistent lock order, no
//! panicking calls in library code, no stray env reads.

use std::sync::{Mutex, PoisonError};

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let first = self.first.lock().unwrap_or_else(PoisonError::into_inner);
        let second = self.second.lock().unwrap_or_else(PoisonError::into_inner);
        *first + *second
    }

    pub fn product(&self) -> u32 {
        let first = self.first.lock().unwrap_or_else(PoisonError::into_inner);
        let second = self.second.lock().unwrap_or_else(PoisonError::into_inner);
        *first * *second
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let _ = "1".parse::<u32>().unwrap();
    }
}
