//! Fixture: deliberate violations — an inconsistent lock order between
//! the two methods (a cycle) and library-code unwraps.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn alpha_then_beta(&self) -> u32 {
        let alpha = self.alpha.lock().unwrap();
        let beta = self.beta.lock().unwrap();
        *alpha + *beta
    }

    pub fn beta_then_alpha(&self) -> u32 {
        let beta = self.beta.lock().unwrap();
        let alpha = self.alpha.lock().unwrap();
        *alpha - *beta
    }
}
