//! Fixture: an env read outside any config module, of a variable no doc
//! registers.

pub fn sneaky() -> Option<String> {
    std::env::var("MARQSIM_FIXTURE_ONLY").ok()
}
