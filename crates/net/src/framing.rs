//! Bounded line framing over short reads.
//!
//! A nonblocking socket delivers bytes in arbitrary chunks — a request line
//! can arrive split across many reads, or many lines can arrive in one.
//! [`LineAssembler`] turns that byte stream back into `\n`-terminated
//! lines with a hard per-line size bound, the reactor-side equivalent of
//! the blocking server's bounded `read_line`:
//!
//! * returned lines have every trailing `\n` / `\r` stripped;
//! * a line whose bytes (terminator included) would exceed the bound is a
//!   framing error — the connection is hostile or broken and should close;
//! * bytes must be valid UTF-8 once a full line is assembled (the wire
//!   protocol is JSON text).

use std::collections::VecDeque;

/// Why the byte stream cannot be framed; the connection should close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramingError {
    /// A single line exceeds the configured size bound.
    Oversized {
        /// The configured bound (bytes, terminator included).
        limit: usize,
    },
    /// A completed line is not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for FramingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FramingError::Oversized { limit } => {
                write!(f, "request line exceeds the size limit ({limit} bytes)")
            }
            FramingError::InvalidUtf8 => write!(f, "request line is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FramingError {}

/// Reassembles `\n`-terminated lines from arbitrarily chunked reads.
pub struct LineAssembler {
    buf: VecDeque<u8>,
    /// Bytes of `buf` already scanned for `\n`, so repeated `next_line`
    /// calls over a slowly growing buffer stay linear overall.
    scanned: usize,
    /// Maximum accepted line length in bytes, terminator included.
    max_line: usize,
}

impl LineAssembler {
    /// An empty assembler accepting lines up to `max_line` bytes
    /// (terminator included).
    pub fn new(max_line: usize) -> LineAssembler {
        LineAssembler {
            buf: VecDeque::new(),
            scanned: 0,
            max_line: max_line.max(1),
        }
    }

    /// Appends one read's worth of bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes.iter().copied());
    }

    /// Bytes buffered but not yet returned as lines.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete line, trailing `\r`/`\n` stripped. `None`
    /// means more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`FramingError::Oversized`] once the pending line cannot possibly
    /// fit the bound; [`FramingError::InvalidUtf8`] for non-UTF-8 lines.
    /// Both are terminal for the stream.
    pub fn next_line(&mut self) -> Result<Option<String>, FramingError> {
        let newline = self
            .buf
            .iter()
            .skip(self.scanned)
            .position(|&b| b == b'\n')
            .map(|offset| self.scanned + offset);
        match newline {
            Some(index) => {
                if index + 1 > self.max_line {
                    return Err(FramingError::Oversized {
                        limit: self.max_line,
                    });
                }
                let mut line: Vec<u8> = self.buf.drain(..=index).collect();
                self.scanned = 0;
                while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                    line.pop();
                }
                match String::from_utf8(line) {
                    Ok(line) => Ok(Some(line)),
                    Err(_) => Err(FramingError::InvalidUtf8),
                }
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() >= self.max_line {
                    return Err(FramingError::Oversized {
                        limit: self.max_line,
                    });
                }
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassembles_lines_across_arbitrary_chunking() {
        let mut assembler = LineAssembler::new(1024);
        for chunk in [&b"he"[..], b"llo\nwo", b"", b"rld\r\n", b"tail"] {
            assembler.push(chunk);
        }
        assert_eq!(assembler.next_line().unwrap(), Some("hello".to_string()));
        assert_eq!(assembler.next_line().unwrap(), Some("world".to_string()));
        assert_eq!(assembler.next_line().unwrap(), None, "tail is incomplete");
        assembler.push(b"\n");
        assert_eq!(assembler.next_line().unwrap(), Some("tail".to_string()));
        assert_eq!(assembler.buffered(), 0);
    }

    #[test]
    fn oversized_lines_error_before_completion() {
        let mut assembler = LineAssembler::new(8);
        assembler.push(b"123456789");
        assert!(matches!(
            assembler.next_line(),
            Err(FramingError::Oversized { limit: 8 })
        ));
    }

    #[test]
    fn line_exactly_at_the_bound_fits() {
        // 7 content bytes + '\n' == the 8-byte bound.
        let mut assembler = LineAssembler::new(8);
        assembler.push(b"1234567\n");
        assert_eq!(assembler.next_line().unwrap(), Some("1234567".to_string()));
    }

    #[test]
    fn invalid_utf8_is_a_framing_error() {
        let mut assembler = LineAssembler::new(64);
        assembler.push(&[0xff, 0xfe, b'\n']);
        assert_eq!(assembler.next_line(), Err(FramingError::InvalidUtf8));
    }

    #[test]
    fn empty_lines_come_back_empty() {
        let mut assembler = LineAssembler::new(64);
        assembler.push(b"\n\r\n");
        assert_eq!(assembler.next_line().unwrap(), Some(String::new()));
        assert_eq!(assembler.next_line().unwrap(), Some(String::new()));
    }
}
