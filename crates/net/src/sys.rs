//! Raw syscall bindings for the reactor.
//!
//! The workspace has no registry access, so there is no `libc` crate to
//! lean on. `std` already links the platform C library, which means the
//! handful of symbols the reactor needs — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, and `poll` — can be declared here directly and resolve at
//! link time. Everything else (socket creation, nonblocking mode, fd
//! lifecycle, `errno`) goes through `std`: [`std::io::Error::last_os_error`]
//! reads `errno`, and [`std::os::fd::OwnedFd`] closes on drop.
//!
//! All wrappers retry on `EINTR` and translate failures into
//! [`std::io::Error`], so callers never see a raw return code.

use std::io;
use std::net::SocketAddr;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: an error condition is pending (always reported).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hang-up (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: the peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// `EPOLL_CLOEXEC` == `O_CLOEXEC`.
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// The kernel's `struct epoll_event`. Packed on x86-64, where the kernel
/// ABI lays the 64-bit payload directly after the 32-bit event mask.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-owned payload, returned verbatim with each readiness event.
    pub data: u64,
}

/// The kernel's `struct pollfd`, for single-fd blocking waits.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;

/// `AF_INET`: IPv4 socket domain.
const AF_INET: u16 = 2;
/// `AF_INET6`: IPv6 socket domain.
const AF_INET6: u16 = 10;
/// `SOCK_STREAM`: byte-stream socket type.
const SOCK_STREAM: i32 = 1;
/// `SOCK_NONBLOCK`: create the socket already in nonblocking mode.
const SOCK_NONBLOCK: i32 = 0o4000;
/// `SOCK_CLOEXEC`: create the socket close-on-exec.
const SOCK_CLOEXEC: i32 = 0o2000000;
/// `SOL_SOCKET`: socket-level option namespace.
const SOL_SOCKET: i32 = 1;
/// `SO_ERROR`: fetch-and-clear the pending socket error.
const SO_ERROR: i32 = 4;
/// `EINPROGRESS`: a nonblocking connect has started but not finished.
const EINPROGRESS: i32 = 115;

/// The kernel's `struct sockaddr_in` (IPv4).
#[repr(C)]
struct SockAddrIn {
    family: u16,
    /// Port in network byte order.
    port: u16,
    /// Address in network byte order.
    addr: u32,
    zero: [u8; 8],
}

/// The kernel's `struct sockaddr_in6` (IPv6).
#[repr(C)]
struct SockAddrIn6 {
    family: u16,
    /// Port in network byte order.
    port: u16,
    flowinfo: u32,
    /// Address as 16 big-endian bytes.
    addr: [u8; 16],
    scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
    fn getsockopt(fd: i32, level: i32, optname: i32, optval: *mut u8, optlen: *mut u32) -> i32;
}

/// Converts an optional wait bound to the millisecond convention poll-style
/// syscalls use: `None` → `-1` (block forever), sub-millisecond non-zero
/// durations round *up* so a short timeout never degenerates into a busy
/// spin, and very long durations clamp to `i32::MAX`.
pub fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

/// Creates a close-on-exec epoll instance and returns its fd.
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers cross the boundary; the return value is checked.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

fn epoll_op(epfd: RawFd, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
    let mut event = event;
    let ptr = event
        .as_mut()
        .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
    // SAFETY: `ptr` is null (DEL) or points at a live, properly laid out
    // `EpollEvent` for the duration of the call.
    let rc = unsafe { epoll_ctl(epfd, op, fd, ptr) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// `EPOLL_CTL_ADD` with the given event mask and payload.
pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    epoll_op(epfd, EPOLL_CTL_ADD, fd, Some(EpollEvent { events, data }))
}

/// `EPOLL_CTL_MOD` with the given event mask and payload.
pub fn epoll_modify(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    epoll_op(epfd, EPOLL_CTL_MOD, fd, Some(EpollEvent { events, data }))
}

/// `EPOLL_CTL_DEL`.
pub fn epoll_delete(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    epoll_op(epfd, EPOLL_CTL_DEL, fd, None)
}

/// Blocks until the epoll set has readiness events or the timeout elapses;
/// fills `events` and returns the count. Retries on `EINTR`.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout: Option<Duration>,
) -> io::Result<usize> {
    let ms = timeout_ms(timeout);
    loop {
        // SAFETY: `events` is a live, correctly sized buffer of the
        // kernel's event layout for the duration of the call.
        let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let error = io::Error::last_os_error();
        if error.kind() != io::ErrorKind::Interrupted {
            return Err(error);
        }
    }
}

fn poll_one(fd: RawFd, events: i16, timeout: Option<Duration>) -> io::Result<bool> {
    let ms = timeout_ms(timeout);
    let mut pollfd = PollFd {
        fd,
        events,
        revents: 0,
    };
    loop {
        // SAFETY: `pollfd` lives on this stack frame for the whole call.
        let rc = unsafe { poll(&mut pollfd, 1, ms) };
        if rc > 0 {
            return Ok(true);
        }
        if rc == 0 {
            return Ok(false);
        }
        let error = io::Error::last_os_error();
        if error.kind() != io::ErrorKind::Interrupted {
            return Err(error);
        }
    }
}

/// Blocks until `fd` is readable (or has a pending error/hang-up — `poll`
/// always reports those) or the timeout elapses; `false` means timeout.
pub fn wait_readable(fd: RawFd, timeout: Option<Duration>) -> io::Result<bool> {
    poll_one(fd, POLLIN, timeout)
}

/// Blocks until `fd` is writable or the timeout elapses; `false` means
/// timeout.
pub fn wait_writable(fd: RawFd, timeout: Option<Duration>) -> io::Result<bool> {
    poll_one(fd, POLLOUT, timeout)
}

/// Whether a nonblocking connect finished inside the `connect` call itself
/// or is still in flight when [`connect_nonblocking`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectProgress {
    /// The three-way handshake already completed (typical on loopback).
    Ready,
    /// The kernel reported `EINPROGRESS`; wait for writability, then read
    /// the outcome with [`take_socket_error`].
    InProgress,
}

/// Starts a nonblocking TCP connect to `addr` and returns the socket with
/// its progress. The fd is created `SOCK_NONBLOCK | SOCK_CLOEXEC`, so no
/// separate mode change can race the handshake.
///
/// # Errors
///
/// Propagates socket creation failure and any connect error the kernel
/// reports synchronously (e.g. immediate `ECONNREFUSED` on loopback).
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<(OwnedFd, ConnectProgress)> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: no pointers cross the boundary; the return value is checked.
    let raw = unsafe { socket(domain as i32, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if raw < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: `raw` is a freshly created, owned, open fd.
    let fd = unsafe { OwnedFd::from_raw_fd(raw) };

    let outcome = match addr {
        SocketAddr::V4(v4) => {
            let sockaddr = SockAddrIn {
                family: AF_INET,
                port: v4.port().to_be(),
                addr: u32::from_ne_bytes(v4.ip().octets()),
                zero: [0; 8],
            };
            connect_with(raw, &sockaddr)
        }
        SocketAddr::V6(v6) => {
            let sockaddr = SockAddrIn6 {
                family: AF_INET6,
                port: v6.port().to_be(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            connect_with(raw, &sockaddr)
        }
    };
    match outcome {
        0 => Ok((fd, ConnectProgress::Ready)),
        EINPROGRESS => Ok((fd, ConnectProgress::InProgress)),
        error => Err(io::Error::from_raw_os_error(error)),
    }
}

/// Issues the `connect` syscall with a concrete sockaddr layout, retrying
/// on `EINTR` (the kernel keeps an interrupted connect in flight, so the
/// retry surfaces as `EALREADY`/`EINPROGRESS`, both mapped to in-progress).
/// Returns `0` on synchronous success, otherwise the failing errno.
fn connect_with<A>(fd: RawFd, sockaddr: &A) -> i32 {
    loop {
        // SAFETY: `sockaddr` is a live `#[repr(C)]` sockaddr for the call.
        let rc = unsafe {
            connect(
                fd,
                (sockaddr as *const A).cast::<u8>(),
                std::mem::size_of::<A>() as u32,
            )
        };
        if rc == 0 {
            return 0;
        }
        let errno = io::Error::last_os_error().raw_os_error().unwrap_or(0);
        // EINTR (4): retry; EALREADY (114): the interrupted attempt is
        // still in flight — report in-progress.
        match errno {
            4 => continue,
            114 => return EINPROGRESS,
            _ => return errno,
        }
    }
}

/// Reads and clears the pending socket error (`SO_ERROR`) — the outcome of
/// an in-progress connect once the fd turns writable.
///
/// # Errors
///
/// Returns the stored socket error (e.g. `ECONNREFUSED`), or propagates
/// the `getsockopt` failure itself.
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut error: i32 = 0;
    let mut len = std::mem::size_of::<i32>() as u32;
    // SAFETY: `error` and `len` live on this stack frame; `len` tells the
    // kernel the buffer size.
    let rc = unsafe {
        getsockopt(
            fd,
            SOL_SOCKET,
            SO_ERROR,
            (&mut error as *mut i32).cast::<u8>(),
            &mut len,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    if error != 0 {
        return Err(io::Error::from_raw_os_error(error));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_conversion_rounds_up_and_clamps() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(10))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(
            timeout_ms(Some(Duration::from_secs(u64::MAX / 2))),
            i32::MAX
        );
    }

    #[test]
    fn wait_readable_times_out_on_a_silent_socket() {
        use std::os::fd::AsRawFd;
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        let ready = wait_readable(a.as_raw_fd(), Some(Duration::from_millis(10))).unwrap();
        assert!(!ready, "no bytes were written, the wait must time out");
    }

    #[test]
    fn wait_readable_sees_written_bytes() {
        use std::io::Write;
        use std::os::fd::AsRawFd;
        let (a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.write_all(&[7]).unwrap();
        let ready = wait_readable(a.as_raw_fd(), Some(Duration::from_secs(5))).unwrap();
        assert!(ready);
    }
}
