//! Nonblocking listener and stream wrappers.
//!
//! Thin adapters that put `WouldBlock` into the type: reactor code matches
//! on [`IoStatus`] instead of re-deriving the three-way outcome (progress /
//! try later / gone) from `io::Error` at every call site. `Interrupted` is
//! retried internally; any other error means the connection is dead.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};

/// Outcome of one nonblocking read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStatus {
    /// `n` bytes moved (`n > 0`).
    Ready(usize),
    /// The operation would block; wait for readiness and retry.
    WouldBlock,
    /// Orderly end of stream (read side only).
    Closed,
}

/// A nonblocking accept loop over a bound [`TcpListener`].
pub struct Listener {
    inner: TcpListener,
}

impl Listener {
    /// Puts `listener` into nonblocking mode and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates the mode change failure.
    pub fn from_std(listener: TcpListener) -> io::Result<Listener> {
        listener.set_nonblocking(true)?;
        Ok(Listener { inner: listener })
    }

    /// Accepts one pending connection, or `None` when the backlog is
    /// empty. Transient per-connection errors (peer reset before accept)
    /// also come back as `None` — the listener itself is fine.
    ///
    /// # Errors
    ///
    /// Propagates listener-level failures (e.g. fd exhaustion).
    pub fn accept(&self) -> io::Result<Option<(TcpStream, SocketAddr)>> {
        loop {
            match self.inner.accept() {
                Ok(pair) => return Ok(Some(pair)),
                Err(error) => match error.kind() {
                    io::ErrorKind::WouldBlock => return Ok(None),
                    io::ErrorKind::Interrupted | io::ErrorKind::ConnectionAborted => continue,
                    _ => return Err(error),
                },
            }
        }
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}

/// A nonblocking TCP stream with status-typed reads and writes.
pub struct Stream {
    inner: TcpStream,
}

impl Stream {
    /// Puts `stream` into nonblocking mode and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates the mode change failure.
    pub fn from_std(stream: TcpStream) -> io::Result<Stream> {
        stream.set_nonblocking(true)?;
        Ok(Stream { inner: stream })
    }

    /// Reads into `buf` once.
    ///
    /// # Errors
    ///
    /// Propagates fatal socket errors (`WouldBlock` / EOF are statuses,
    /// not errors; `Interrupted` is retried).
    pub fn read(&mut self, buf: &mut [u8]) -> io::Result<IoStatus> {
        loop {
            match self.inner.read(buf) {
                Ok(0) => return Ok(IoStatus::Closed),
                Ok(n) => return Ok(IoStatus::Ready(n)),
                Err(error) => match error.kind() {
                    io::ErrorKind::WouldBlock => return Ok(IoStatus::WouldBlock),
                    io::ErrorKind::Interrupted => continue,
                    _ => return Err(error),
                },
            }
        }
    }

    /// Writes from `buf` once; short writes are normal under backpressure.
    ///
    /// # Errors
    ///
    /// Propagates fatal socket errors.
    pub fn write(&mut self, buf: &[u8]) -> io::Result<IoStatus> {
        loop {
            match self.inner.write(buf) {
                Ok(n) => return Ok(IoStatus::Ready(n)),
                Err(error) => match error.kind() {
                    io::ErrorKind::WouldBlock => return Ok(IoStatus::WouldBlock),
                    io::ErrorKind::Interrupted => continue,
                    _ => return Err(error),
                },
            }
        }
    }

    /// The wrapped socket (peer address, nodelay, shutdown).
    pub fn std(&self) -> &TcpStream {
        &self.inner
    }
}

impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn accept_returns_none_on_an_empty_backlog() {
        let listener = Listener::from_std(TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
        assert!(listener.accept().unwrap().is_none());
    }

    #[test]
    fn read_write_round_trip_with_statuses() {
        let listener = Listener::from_std(TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();

        let accepted = loop {
            if let Some((stream, _)) = listener.accept().unwrap() {
                break stream;
            }
        };
        let mut server_side = Stream::from_std(accepted).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(server_side.read(&mut buf).unwrap(), IoStatus::WouldBlock);

        {
            use std::io::Write as _;
            let mut client = &client;
            client.write_all(b"ping").unwrap();
        }
        // The bytes are in flight; poll until they land.
        let n = loop {
            match server_side.read(&mut buf).unwrap() {
                IoStatus::Ready(n) => break n,
                IoStatus::WouldBlock => std::thread::sleep(std::time::Duration::from_millis(1)),
                IoStatus::Closed => panic!("client is still connected"),
            }
        };
        assert_eq!(&buf[..n], b"ping");

        drop(client);
        let status = loop {
            match server_side.read(&mut buf).unwrap() {
                IoStatus::WouldBlock => std::thread::sleep(std::time::Duration::from_millis(1)),
                status => break status,
            }
        };
        assert_eq!(status, IoStatus::Closed);
    }
}
