//! Nonblocking listener and stream wrappers.
//!
//! Thin adapters that put `WouldBlock` into the type: reactor code matches
//! on [`IoStatus`] instead of re-deriving the three-way outcome (progress /
//! try later / gone) from `io::Error` at every call site. `Interrupted` is
//! retried internally; any other error means the connection is dead.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, IntoRawFd, RawFd};

use crate::sys;

/// Outcome of one nonblocking read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStatus {
    /// `n` bytes moved (`n > 0`).
    Ready(usize),
    /// The operation would block; wait for readiness and retry.
    WouldBlock,
    /// Orderly end of stream (read side only).
    Closed,
}

/// Outcome of starting a nonblocking [`Stream::connect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectStatus {
    /// The handshake completed inside the `connect` call itself.
    Ready,
    /// The handshake is in flight: register the stream for write interest
    /// (or [`crate::wait_writable`]) and call [`Stream::connect_result`]
    /// once it turns writable.
    InProgress,
}

/// A nonblocking accept loop over a bound [`TcpListener`].
pub struct Listener {
    inner: TcpListener,
}

impl Listener {
    /// Puts `listener` into nonblocking mode and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates the mode change failure.
    pub fn from_std(listener: TcpListener) -> io::Result<Listener> {
        listener.set_nonblocking(true)?;
        Ok(Listener { inner: listener })
    }

    /// Accepts one pending connection, or `None` when the backlog is
    /// empty. Transient per-connection errors (peer reset before accept)
    /// also come back as `None` — the listener itself is fine.
    ///
    /// # Errors
    ///
    /// Propagates listener-level failures (e.g. fd exhaustion).
    pub fn accept(&self) -> io::Result<Option<(TcpStream, SocketAddr)>> {
        loop {
            match self.inner.accept() {
                Ok(pair) => return Ok(Some(pair)),
                Err(error) => match error.kind() {
                    io::ErrorKind::WouldBlock => return Ok(None),
                    io::ErrorKind::Interrupted | io::ErrorKind::ConnectionAborted => continue,
                    _ => return Err(error),
                },
            }
        }
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}

/// A nonblocking TCP stream with status-typed reads and writes.
pub struct Stream {
    inner: TcpStream,
}

impl Stream {
    /// Puts `stream` into nonblocking mode and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates the mode change failure.
    pub fn from_std(stream: TcpStream) -> io::Result<Stream> {
        stream.set_nonblocking(true)?;
        Ok(Stream { inner: stream })
    }

    /// Starts a nonblocking outbound connect to `addr`. On
    /// [`ConnectStatus::InProgress`], the stream is not usable until it
    /// turns writable and [`connect_result`](Stream::connect_result)
    /// confirms the handshake.
    ///
    /// # Errors
    ///
    /// Propagates socket creation failure and synchronously reported
    /// connect errors (e.g. immediate `ECONNREFUSED` on loopback).
    pub fn connect(addr: &SocketAddr) -> io::Result<(Stream, ConnectStatus)> {
        let (fd, progress) = sys::connect_nonblocking(addr)?;
        // SAFETY: `fd` is an owned, open socket fd; ownership transfers
        // into the `TcpStream`, which closes it on drop.
        let inner = unsafe { TcpStream::from_raw_fd(fd.into_raw_fd()) };
        let status = match progress {
            sys::ConnectProgress::Ready => ConnectStatus::Ready,
            sys::ConnectProgress::InProgress => ConnectStatus::InProgress,
        };
        Ok((Stream { inner }, status))
    }

    /// The outcome of an in-progress connect, valid once the stream has
    /// turned writable: reads and clears `SO_ERROR`.
    ///
    /// # Errors
    ///
    /// Returns the stored connect failure (e.g. `ECONNREFUSED`).
    pub fn connect_result(&self) -> io::Result<()> {
        sys::take_socket_error(self.inner.as_raw_fd())
    }

    /// Reads into `buf` once.
    ///
    /// # Errors
    ///
    /// Propagates fatal socket errors (`WouldBlock` / EOF are statuses,
    /// not errors; `Interrupted` is retried).
    pub fn read(&mut self, buf: &mut [u8]) -> io::Result<IoStatus> {
        loop {
            match self.inner.read(buf) {
                Ok(0) => return Ok(IoStatus::Closed),
                Ok(n) => return Ok(IoStatus::Ready(n)),
                Err(error) => match error.kind() {
                    io::ErrorKind::WouldBlock => return Ok(IoStatus::WouldBlock),
                    io::ErrorKind::Interrupted => continue,
                    _ => return Err(error),
                },
            }
        }
    }

    /// Writes from `buf` once; short writes are normal under backpressure.
    ///
    /// # Errors
    ///
    /// Propagates fatal socket errors.
    pub fn write(&mut self, buf: &[u8]) -> io::Result<IoStatus> {
        loop {
            match self.inner.write(buf) {
                Ok(n) => return Ok(IoStatus::Ready(n)),
                Err(error) => match error.kind() {
                    io::ErrorKind::WouldBlock => return Ok(IoStatus::WouldBlock),
                    io::ErrorKind::Interrupted => continue,
                    _ => return Err(error),
                },
            }
        }
    }

    /// The wrapped socket (peer address, nodelay, shutdown).
    pub fn std(&self) -> &TcpStream {
        &self.inner
    }
}

impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn accept_returns_none_on_an_empty_backlog() {
        let listener = Listener::from_std(TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
        assert!(listener.accept().unwrap().is_none());
    }

    #[test]
    fn read_write_round_trip_with_statuses() {
        let listener = Listener::from_std(TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();

        let accepted = loop {
            if let Some((stream, _)) = listener.accept().unwrap() {
                break stream;
            }
        };
        let mut server_side = Stream::from_std(accepted).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(server_side.read(&mut buf).unwrap(), IoStatus::WouldBlock);

        {
            use std::io::Write as _;
            let mut client = &client;
            client.write_all(b"ping").unwrap();
        }
        // The bytes are in flight; poll until they land.
        let n = loop {
            match server_side.read(&mut buf).unwrap() {
                IoStatus::Ready(n) => break n,
                IoStatus::WouldBlock => std::thread::sleep(std::time::Duration::from_millis(1)),
                IoStatus::Closed => panic!("client is still connected"),
            }
        };
        assert_eq!(&buf[..n], b"ping");

        drop(client);
        let status = loop {
            match server_side.read(&mut buf).unwrap() {
                IoStatus::WouldBlock => std::thread::sleep(std::time::Duration::from_millis(1)),
                status => break status,
            }
        };
        assert_eq!(status, IoStatus::Closed);
    }

    /// Drives an outbound connect to completion, whichever of the two
    /// kernel-reported shapes it takes.
    fn finish_connect(stream: &Stream, status: ConnectStatus) -> std::io::Result<()> {
        match status {
            ConnectStatus::Ready => Ok(()),
            ConnectStatus::InProgress => {
                use std::os::fd::AsRawFd as _;
                let writable = crate::wait_writable(
                    stream.as_raw_fd(),
                    Some(std::time::Duration::from_secs(5)),
                )
                .unwrap();
                assert!(writable, "in-progress connect never resolved");
                stream.connect_result()
            }
        }
    }

    #[test]
    fn connect_to_a_live_listener_completes_and_moves_bytes() {
        let listener = Listener::from_std(TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();

        let (mut client, status) = Stream::connect(&addr).unwrap();
        finish_connect(&client, status).expect("connect to a live listener succeeds");

        let accepted = loop {
            if let Some((stream, _)) = listener.accept().unwrap() {
                break stream;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        let mut server_side = Stream::from_std(accepted).unwrap();

        loop {
            match client.write(b"hello").unwrap() {
                IoStatus::Ready(5) => break,
                IoStatus::Ready(_) | IoStatus::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                IoStatus::Closed => panic!("listener is still connected"),
            }
        }
        let mut buf = [0u8; 16];
        let n = loop {
            match server_side.read(&mut buf).unwrap() {
                IoStatus::Ready(n) => break n,
                IoStatus::WouldBlock => std::thread::sleep(std::time::Duration::from_millis(1)),
                IoStatus::Closed => panic!("client is still connected"),
            }
        };
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn connect_to_a_dead_port_reports_refused() {
        // Bind then drop: the port was just free, so nothing is listening.
        let addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        // The refusal may surface synchronously from `connect` or
        // asynchronously through `SO_ERROR`; both are correct.
        let outcome = match Stream::connect(&addr) {
            Ok((stream, status)) => finish_connect(&stream, status),
            Err(error) => Err(error),
        };
        let error = outcome.expect_err("nothing is listening on the probed port");
        assert_eq!(error.kind(), std::io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn in_progress_connect_is_not_an_error() {
        // A remote (non-loopback, TEST-NET-1) address cannot complete the
        // handshake synchronously, so the kernel must report in-progress
        // rather than failing the call.
        let addr: SocketAddr = "192.0.2.1:9".parse().unwrap();
        match Stream::connect(&addr) {
            Ok((_, status)) => assert_eq!(status, ConnectStatus::InProgress),
            // Sandboxes without an external route may refuse outright;
            // what matters is that `connect` never panics or hangs.
            Err(error) => assert!(error.raw_os_error().is_some()),
        }
    }
}
