//! Cross-thread wakeup for a blocked event loop.
//!
//! An event loop parked in [`Poller::wait`](crate::Poller::wait) cannot see
//! an in-process notification (a finished job, a shutdown request) — only
//! fd readiness. [`Wakeup`] bridges the gap with a nonblocking socketpair:
//! the loop registers the read end like any other fd, and any thread holding
//! a [`WakeHandle`] makes the loop's next `wait` return by writing one byte.
//!
//! Wakeups **coalesce**: if the loop has not drained yet, further wakes hit
//! a full pipe buffer and are dropped — which is fine, because one pending
//! byte already guarantees a wake, and the waking threads' actual payloads
//! travel through whatever shared queue the loop drains after
//! [`Wakeup::drain`].

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use crate::instruments;

/// The read end, owned by the event loop. Register [`Wakeup::reader`] with
/// the poller; on readiness, call [`Wakeup::drain`].
pub struct Wakeup {
    reader: UnixStream,
    writer: Arc<UnixStream>,
}

/// The write end: cheap to clone, send one to every thread that needs to
/// nudge the loop.
#[derive(Clone)]
pub struct WakeHandle {
    writer: Arc<UnixStream>,
}

impl Wakeup {
    /// Creates a connected wakeup pair, both ends nonblocking.
    ///
    /// # Errors
    ///
    /// Propagates socketpair creation failure.
    pub fn new() -> io::Result<Wakeup> {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        Ok(Wakeup {
            reader,
            writer: Arc::new(writer),
        })
    }

    /// The fd to register with the poller (readable interest).
    pub fn reader(&self) -> &UnixStream {
        &self.reader
    }

    /// A cloneable handle for waking threads.
    pub fn handle(&self) -> WakeHandle {
        WakeHandle {
            writer: Arc::clone(&self.writer),
        }
    }

    /// Consumes every pending wake byte. Call once per readiness event on
    /// the reader before draining the shared work queue.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.reader).read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
}

impl WakeHandle {
    /// Makes the event loop's current (or next) `wait` return. Never
    /// blocks: a full pipe means a wake is already pending, and any error
    /// means the loop is gone — both are fine to ignore.
    pub fn wake(&self) {
        instruments().wakeups.inc();
        let _ = (&*self.writer).write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interest, PollEvent, Poller, Token};
    use std::time::Duration;

    #[test]
    fn wake_unblocks_a_poller_and_drain_resets_it() {
        let mut poller = Poller::new().unwrap();
        let wakeup = Wakeup::new().unwrap();
        poller
            .register(wakeup.reader(), Token(0), Interest::READABLE)
            .unwrap();

        let handle = wakeup.handle();
        let waker = std::thread::spawn(move || handle.wake());

        let mut events: Vec<PollEvent> = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        waker.join().unwrap();

        wakeup.drain();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained wakeup no longer reports readable");
    }

    #[test]
    fn wakes_coalesce_without_blocking() {
        let wakeup = Wakeup::new().unwrap();
        let handle = wakeup.handle();
        // Far more wakes than the pipe buffer holds; none may block.
        for _ in 0..100_000 {
            handle.wake();
        }
        wakeup.drain();
    }
}
