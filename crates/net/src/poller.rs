//! The readiness poller: a thin, typed wrapper over one epoll instance.
//!
//! [`Poller::wait`] is **level-triggered**: a registered fd keeps reporting
//! readiness until the caller drains it, so a handler that reads less than
//! everything available is woken again rather than wedged — the forgiving
//! mode for a single-threaded event loop. Writable interest is meant to be
//! registered only while there is something queued to write (see
//! [`Interest`]), otherwise every idle socket would report writable on
//! every wait.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
use std::time::Duration;

use crate::instruments;
use crate::sys;

/// Caller-chosen identity delivered back with every readiness event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// Which readiness directions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the idle-connection steady state.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions — a connection with queued outbound data.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if self.readable {
            mask |= sys::EPOLLIN;
        }
        if self.writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: Token,
    /// The fd is readable (includes peer hang-up, which reads as EOF).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error / hang-up condition: the connection is dead or dying. The
    /// caller should still attempt a read to observe the precise error.
    pub closed: bool,
}

/// How many kernel events one `wait` call can harvest.
const EVENT_CAPACITY: usize = 1024;

/// One epoll instance plus the scratch buffer `wait` fills from the
/// kernel.
pub struct Poller {
    epoll: OwnedFd,
    scratch: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates an empty poller.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        let fd = sys::epoll_create()?;
        // SAFETY: `epoll_create` returned a freshly created fd we own.
        let epoll = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Poller {
            epoll,
            scratch: vec![sys::EpollEvent::default(); EVENT_CAPACITY],
        })
    }

    /// Registers `fd` with the given interest; readiness events carry
    /// `token` back.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd is already registered).
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_add(
            self.epoll.as_raw_fd(),
            fd.as_raw_fd(),
            interest.mask(),
            token.0,
        )
    }

    /// Changes an existing registration's interest (and token).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd is not registered).
    pub fn reregister(
        &self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        sys::epoll_modify(
            self.epoll.as_raw_fd(),
            fd.as_raw_fd(),
            interest.mask(),
            token.0,
        )
    }

    /// Removes a registration. Safe to call on an already-closed fd (the
    /// error is swallowed — the kernel removed it with the fd).
    pub fn deregister(&self, fd: &impl AsRawFd) {
        let _ = sys::epoll_delete(self.epoll.as_raw_fd(), fd.as_raw_fd());
    }

    /// Blocks until readiness events arrive or `timeout` elapses
    /// (`None` = forever), appends them to `events`, and returns how many
    /// were delivered. A timeout delivers zero events and is not an error.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure (never `EINTR`, which is retried).
    pub fn wait(
        &mut self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let count = sys::epoll_wait_events(self.epoll.as_raw_fd(), &mut self.scratch, timeout)?;
        let net = instruments();
        net.polls.inc();
        net.events.add(count as u64);
        for raw in &self.scratch[..count] {
            // Copy out of the (possibly packed) kernel struct before use.
            let mask = raw.events;
            let data = raw.data;
            events.push(PollEvent {
                token: Token(data),
                readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: mask & sys::EPOLLOUT != 0,
                closed: mask & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_event_carries_the_token() {
        let mut poller = Poller::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.register(&a, Token(42), Interest::READABLE).unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "nothing written yet");

        b.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, Token(42));
        assert!(events[0].readable);
        assert!(!events[0].closed);
    }

    #[test]
    fn level_triggered_readiness_persists_until_drained() {
        let mut poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.register(&a, Token(1), Interest::READABLE).unwrap();
        b.write_all(b"xy").unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);

        // Read one of the two bytes; the fd must still report readable.
        let mut byte = [0u8; 1];
        a.read_exact(&mut byte).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "level-triggered: one byte remains");
    }

    #[test]
    fn hangup_reports_closed() {
        let mut poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.register(&a, Token(9), Interest::READABLE).unwrap();
        drop(b);

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].closed);
        assert!(events[0].readable, "hang-up reads as EOF");
    }

    #[test]
    fn reregister_switches_interest() {
        let mut poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.register(&a, Token(3), Interest::READABLE).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        // An idle socket with plenty of send-buffer space is writable.
        poller.reregister(&a, Token(3), Interest::BOTH).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);

        poller.deregister(&a);
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fds deliver nothing");
    }
}
