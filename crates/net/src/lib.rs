//! # marqsim-net — the readiness reactor under the serve front-end
//!
//! One event-loop thread cannot block on any single socket; it needs the
//! kernel to say *which* of thousands of fds has work. This crate is that
//! layer, built directly on `epoll` with no external dependencies (the
//! workspace has no registry access; the few syscalls `std` does not wrap
//! are declared in [`sys`] and resolve against the C library `std` already
//! links):
//!
//! * [`Poller`] / [`Token`] / [`Interest`] — a level-triggered readiness
//!   poller over one epoll instance;
//! * [`Listener`] / [`Stream`] / [`IoStatus`] — nonblocking accept/read/
//!   write wrappers that put `WouldBlock` into the type, plus outbound
//!   nonblocking [`Stream::connect`] with a typed [`ConnectStatus`] (the
//!   cluster router dials its nodes from inside the event loop);
//! * [`Wakeup`] / [`WakeHandle`] — a socketpair-backed channel for waking
//!   a parked event loop from other threads (job completions, shutdown);
//! * [`DeadlineWheel`] / [`TimerKey`] — ordered timeouts (idle
//!   connections, slow-consumer force-close) that bound the poll wait;
//! * [`LineAssembler`] — bounded `\n`-framing over short reads, the
//!   reactor-side twin of a bounded blocking `read_line`;
//! * [`wait_readable`] / [`wait_writable`] — single-fd poll waits for
//!   *blocking* callers (the serve client) that must compose with a
//!   nonblocking peer.
//!
//! The reactor exposes its own instruments (`marqsim_net_polls_total`,
//! `marqsim_net_events_total`, `marqsim_net_wakeups_total`,
//! `marqsim_net_timers_expired_total`) through the global `marqsim-obs`
//! registry; see `docs/net.md` for the architecture and
//! `docs/observability.md` for the catalog.

pub mod framing;
pub mod poller;
pub mod stream;
pub mod sys;
pub mod wakeup;
pub mod wheel;

pub use framing::{FramingError, LineAssembler};
pub use poller::{Interest, PollEvent, Poller, Token};
pub use stream::{ConnectStatus, IoStatus, Listener, Stream};
pub use sys::{wait_readable, wait_writable};
pub use wakeup::{WakeHandle, Wakeup};
pub use wheel::{DeadlineWheel, TimerKey};

use std::sync::{Arc, OnceLock};

use marqsim_obs::metrics;

/// Process-wide reactor instruments in the global metrics registry,
/// resolved once.
struct NetInstruments {
    /// `epoll_wait` calls that returned.
    polls: Arc<metrics::Counter>,
    /// Readiness events those calls delivered.
    events: Arc<metrics::Counter>,
    /// Cross-thread wakes requested through a [`WakeHandle`].
    wakeups: Arc<metrics::Counter>,
    /// Deadline-wheel timers that came due.
    timers_expired: Arc<metrics::Counter>,
}

fn instruments() -> &'static NetInstruments {
    static INSTRUMENTS: OnceLock<NetInstruments> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let registry = metrics::global();
        NetInstruments {
            polls: registry.counter("marqsim_net_polls_total"),
            events: registry.counter("marqsim_net_events_total"),
            wakeups: registry.counter("marqsim_net_wakeups_total"),
            timers_expired: registry.counter("marqsim_net_timers_expired_total"),
        }
    })
}
