//! Deadlines for an event loop: who times out next, and when to wake.
//!
//! [`DeadlineWheel`] is an ordered multi-map from [`Instant`] to a
//! caller-chosen payload. The event loop asks [`next_deadline`]
//! (`DeadlineWheel::next_deadline`) to bound its poll wait, then calls
//! [`expire`](DeadlineWheel::expire) after every wait to collect whatever
//! came due. Timers are cancelled by the [`TimerKey`] returned at arm time;
//! cancellation and expiry both detach the key, so a stale key is a cheap
//! no-op rather than a misfire.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use crate::instruments;

/// Identity of one armed timer, returned by [`DeadlineWheel::arm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerKey(u64);

/// An ordered deadline map with O(log n) arm/cancel and O(log n) per
/// expired timer.
pub struct DeadlineWheel<T> {
    /// Monotonic sequence breaking ties between equal deadlines, so two
    /// timers armed for the same instant expire in arm order.
    seq: u64,
    by_deadline: BTreeMap<(Instant, u64), T>,
    by_key: HashMap<u64, Instant>,
}

impl<T> Default for DeadlineWheel<T> {
    fn default() -> Self {
        DeadlineWheel::new()
    }
}

impl<T> DeadlineWheel<T> {
    /// An empty wheel.
    pub fn new() -> DeadlineWheel<T> {
        DeadlineWheel {
            seq: 0,
            by_deadline: BTreeMap::new(),
            by_key: HashMap::new(),
        }
    }

    /// Arms a timer for `at` carrying `payload`; keep the key to cancel.
    pub fn arm(&mut self, at: Instant, payload: T) -> TimerKey {
        let seq = self.seq;
        self.seq += 1;
        self.by_deadline.insert((at, seq), payload);
        self.by_key.insert(seq, at);
        TimerKey(seq)
    }

    /// Cancels an armed timer; returns its payload, or `None` if the key
    /// already expired or was cancelled.
    pub fn cancel(&mut self, key: TimerKey) -> Option<T> {
        let at = self.by_key.remove(&key.0)?;
        self.by_deadline.remove(&(at, key.0))
    }

    /// The earliest armed deadline, for bounding the poll wait.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.by_deadline.keys().next().map(|(at, _)| *at)
    }

    /// Detaches every timer due at or before `now` and appends
    /// `(key, payload)` pairs to `expired`, in deadline order. Returns how
    /// many expired.
    pub fn expire(&mut self, now: Instant, expired: &mut Vec<(TimerKey, T)>) -> usize {
        let mut count = 0;
        while let Some(entry) = self.by_deadline.first_entry() {
            let (at, seq) = *entry.key();
            if at > now {
                break;
            }
            let payload = entry.remove();
            self.by_key.remove(&seq);
            expired.push((TimerKey(seq), payload));
            count += 1;
        }
        if count > 0 {
            instruments().timers_expired.add(count as u64);
        }
        count
    }

    /// How many timers are armed.
    pub fn len(&self) -> usize {
        self.by_deadline.len()
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.by_deadline.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn expires_in_deadline_order_with_stable_ties() {
        let mut wheel = DeadlineWheel::new();
        let base = Instant::now();
        wheel.arm(base + Duration::from_millis(20), "late");
        wheel.arm(base + Duration::from_millis(10), "early-a");
        wheel.arm(base + Duration::from_millis(10), "early-b");

        assert_eq!(
            wheel.next_deadline(),
            Some(base + Duration::from_millis(10))
        );

        let mut expired = Vec::new();
        let n = wheel.expire(base + Duration::from_millis(15), &mut expired);
        assert_eq!(n, 2);
        let payloads: Vec<_> = expired.iter().map(|(_, p)| *p).collect();
        assert_eq!(payloads, ["early-a", "early-b"], "ties expire in arm order");
        assert_eq!(wheel.len(), 1);

        expired.clear();
        wheel.expire(base + Duration::from_millis(25), &mut expired);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].1, "late");
        assert!(wheel.is_empty());
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut wheel = DeadlineWheel::new();
        let base = Instant::now();
        let key = wheel.arm(base, 7u32);
        assert_eq!(wheel.cancel(key), Some(7));
        assert_eq!(wheel.cancel(key), None, "double cancel is a no-op");

        let mut expired = Vec::new();
        assert_eq!(wheel.expire(base + Duration::from_secs(1), &mut expired), 0);
        assert!(expired.is_empty());
    }

    /// Expiry order is fully determined by `(deadline, arm order)` even
    /// when many timers collide on few distinct deadlines — the regime an
    /// event loop hits when a burst of connections arms identical idle
    /// timeouts within one tick.
    #[test]
    fn expiry_order_is_deadline_then_arm_order_under_duplicates() {
        use quickprop::{check, Config};

        check(
            "wheel expiry order under duplicate deadlines",
            Config::default().with_cases(48).with_seed(0xD11E),
            |g| {
                // Few distinct offsets over many timers forces duplicates;
                // a cancel mask exercises detachment mid-sequence.
                g.vec_of(1..64, |g| (g.u64_in(0..=4), g.bool(0.2)))
            },
            |timers| {
                let base = Instant::now();
                let mut wheel = DeadlineWheel::new();
                let mut keys = Vec::new();
                for (i, (offset, _)) in timers.iter().enumerate() {
                    keys.push(wheel.arm(base + Duration::from_millis(*offset), i));
                }
                let mut kept: Vec<(u64, usize)> = Vec::new();
                for (i, (offset, cancel)) in timers.iter().enumerate() {
                    if *cancel {
                        if wheel.cancel(keys[i]) != Some(i) {
                            return Err(format!("cancel of timer {i} lost its payload"));
                        }
                    } else {
                        kept.push((*offset, i));
                    }
                }
                // Stable sort mirrors the contract: deadline first, then
                // arm order among equal deadlines.
                kept.sort_by_key(|&(offset, _)| offset);
                let expected: Vec<usize> = kept.iter().map(|&(_, i)| i).collect();

                let mut expired = Vec::new();
                wheel.expire(base + Duration::from_millis(10), &mut expired);
                let got: Vec<usize> = expired.iter().map(|&(_, payload)| payload).collect();
                if got != expected {
                    return Err(format!("expiry order {got:?}, expected {expected:?}"));
                }
                if !wheel.is_empty() {
                    return Err("wheel not drained after expiring everything".to_string());
                }
                Ok(())
            },
        );
    }

    #[test]
    fn expired_keys_go_stale() {
        let mut wheel = DeadlineWheel::new();
        let base = Instant::now();
        let key = wheel.arm(base, ());
        let mut expired = Vec::new();
        wheel.expire(base, &mut expired);
        assert_eq!(expired.len(), 1);
        assert_eq!(wheel.cancel(key), None, "expired key no longer cancels");
    }
}
