//! # marqsim-serve — the job-submission front-end over the engine
//!
//! The `marqsim-engine` crate runs workloads inside one process. This
//! crate puts a network protocol on top, the next step toward the
//! ROADMAP's "serve heavy traffic to remote clients" north star: a
//! `marqsim-served` daemon accepts concurrent TCP connections, multiplexes
//! every client's jobs onto **one shared engine** (one worker pool, one
//! transition cache — two clients sweeping the same Hamiltonian share the
//! min-cost-flow solve), streams per-job progress, bounds each
//! connection's in-flight jobs (admission control), and supports
//! cooperative cancellation.
//!
//! The module layering mirrors the protocol stack:
//!
//! * [`wire`] — a hand-rolled, dependency-free JSON codec (the build
//!   environment has no registry access, so no `serde`). Line-delimited:
//!   one JSON object per `\n`-terminated line in each direction. `u64`
//!   ids/seeds are exact; finite floats use shortest-round-trip encoding,
//!   so results cross the wire **bit-identically**.
//! * [`protocol`] — typed [`Request`] verbs (`submit`, `status`, `cancel`,
//!   `stats`, `metrics`) and [`Event`] streams (`hello`, `submitted`,
//!   `busy`, `progress`, `done`, `failed`, `status`, `stats`, `metrics`,
//!   `error`). The `metrics` verb (protocol v4) answers with the
//!   process-wide Prometheus-style exposition from `marqsim-obs` plus the
//!   connection's own request/byte counters — see `docs/observability.md`.
//! * [`registry`] — the open end of the protocol: `submit` names a
//!   workload *kind* plus a params object, and the
//!   [`WorkloadRegistry`] maps kinds to decoders/encoders. The four
//!   built-in kinds (`sweep`, `compile`, `perturb_average`,
//!   `benchmark_suite`) cover the evaluation; custom
//!   [`Workload`](marqsim_engine::Workload)s register new kinds with **no
//!   protocol surgery**.
//! * [`server`] — the TCP accept loop; one reader/writer thread pair per
//!   connection over the shared [`Engine`](marqsim_engine::Engine), with
//!   per-connection admission control.
//! * [`client`] — a blocking client used by the tests, the `serve_smoke`
//!   binary, and the `serve_roundtrip` example.
//!
//! # Determinism over the wire
//!
//! A sweep submitted through `marqsim-served` returns results
//! bit-identical to the same sweep run through `Engine::run_sweep`
//! in-process: the engine side is the deterministic job machinery (seeded
//! per-point RNG streams, index-ordered reassembly), and the wire side
//! encodes every number losslessly. The `tests/serve.rs` integration test
//! in the workspace root asserts exactly this, point by point, bit by bit.
//!
//! # Environment (the `marqsim-served` binary)
//!
//! * `MARQSIM_SERVE_ADDR=HOST:PORT` — listen address (default
//!   `127.0.0.1:7878`; port `0` lets the OS pick and prints the result).
//! * `MARQSIM_SERVE_THREADS=N` — engine worker count for the served
//!   engine; unset falls back to `MARQSIM_THREADS`, then to all cores.
//! * `MARQSIM_SERVE_MAX_IN_FLIGHT=N` — per-connection in-flight job bound
//!   (a submit's `options.max_in_flight` can tighten it per request, never
//!   raise it; default [`server::DEFAULT_MAX_IN_FLIGHT`]).
//! * `MARQSIM_MAX_ACTIVE_JOBS=N` — engine-wide active-job bound across
//!   **all** connections (unset = unlimited); submits over it bounce with
//!   the structured `busy` event, and the bound is surfaced in `stats`.
//! * `MARQSIM_SERVE_IDLE_TIMEOUT_MS=N` — reap connections that send no
//!   request bytes for `N` milliseconds: their unfinished jobs are
//!   cancelled and a structured `error` event precedes the close (unset =
//!   never reap; in-process: [`Server::with_idle_timeout`]).
//! * The engine cache/solver variables (`MARQSIM_CACHE`,
//!   `MARQSIM_CACHE_CAP`, `MARQSIM_CACHE_DIR`, `MARQSIM_FLOW_SOLVER`)
//!   apply unchanged; a submit's `options.flow_solver` selects the
//!   min-cost-flow backend per job.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use marqsim_engine::{Engine, EngineConfig};
//! use marqsim_serve::{Client, Outcome, Server};
//! use marqsim_core::experiment::SweepConfig;
//! use marqsim_core::TransitionStrategy;
//! use marqsim_pauli::Hamiltonian;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
//! let server = Server::bind("127.0.0.1:0", engine)?.spawn()?;
//!
//! let mut client = Client::connect(server.addr())?;
//! let ham = Hamiltonian::parse("0.9 ZZ + 0.5 XX + 0.3 YY")?;
//! let job = client.submit_sweep(
//!     "example",
//!     &ham,
//!     &TransitionStrategy::QDrift,
//!     &SweepConfig::quick(0.5),
//! )?;
//! let result = client.wait(job)?;
//! match result.outcome {
//!     Outcome::Sweep(sweep) => assert_eq!(sweep.points.len(), 6),
//!     _ => unreachable!(),
//! }
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod protocol;
pub mod registry;
pub mod router;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, JobResult, MetricsReport};
pub use protocol::{
    compile_params, perturb_params, suite_params, sweep_params, CompileSummary, Event, NodeStats,
    Outcome, Request, Role, ServerStats, PROTOCOL_VERSION,
};
pub use registry::WorkloadRegistry;
pub use router::{Router, RouterHandle};
pub use server::{Server, ServerHandle};
pub use wire::{Json, WireError};

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_core::experiment::SweepConfig;
    use marqsim_core::TransitionStrategy;
    use marqsim_engine::{Engine, EngineConfig, SubmitOptions};
    use marqsim_pauli::Hamiltonian;
    use std::sync::Arc;

    fn ham() -> Hamiltonian {
        Hamiltonian::parse("0.9 ZZZZ + 0.7 XXII + 0.5 IYYI + 0.3 IIZZ").unwrap()
    }

    fn spawn_server(threads: usize) -> ServerHandle {
        spawn_server_with(threads, |server| server)
    }

    /// A workload that runs until cancelled — the deterministic
    /// "occupy an admission slot" blocker. A real sweep can finish before
    /// the next submit's round trip on a loaded machine, which made the
    /// admission tests flaky; this cannot.
    struct BlockUntilCancelled(String);

    impl marqsim_engine::Workload for BlockUntilCancelled {
        fn label(&self) -> &str {
            &self.0
        }

        fn total_units(&self) -> usize {
            1
        }

        fn run(
            &self,
            ctx: &marqsim_engine::WorkloadCtx<'_>,
        ) -> Result<marqsim_engine::WorkloadOutput, marqsim_engine::EngineError> {
            loop {
                ctx.ensure_active()?;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }

    /// Spawns a server whose registry carries the built-ins plus the
    /// `block` kind, with `configure` applied to the server before spawn.
    fn spawn_server_with(threads: usize, configure: impl FnOnce(Server) -> Server) -> ServerHandle {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(threads)));
        let mut registry = WorkloadRegistry::builtin();
        registry.register(
            "block",
            |label, _params| {
                Ok(Box::new(BlockUntilCancelled(label.to_string()))
                    as Box<dyn marqsim_engine::Workload>)
            },
            |_output| Ok(Json::obj([("kind", "block".into())])),
        );
        configure(
            Server::bind("127.0.0.1:0", engine)
                .expect("bind")
                .with_registry(registry),
        )
        .spawn()
        .expect("spawn")
    }

    /// Cancels the blocking job and consumes its `cancelled` terminal
    /// event, releasing the admission slot it occupied.
    fn release_blocker(client: &mut Client, job: u64) {
        client.cancel(job).unwrap();
        match client.wait(job) {
            Err(ClientError::JobFailed { kind, .. }) => assert_eq!(kind, "cancelled"),
            other => panic!("expected the blocker to cancel, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_sweep_with_progress() {
        let server = spawn_server(2);
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.threads(), 2);
        assert_eq!(
            client.workloads(),
            &[
                "benchmark_suite",
                "block",
                "compile",
                "perturb_average",
                "sweep"
            ],
            "hello advertises the registered kinds, sorted"
        );

        let config = SweepConfig::quick(0.5);
        let job = client
            .submit_sweep("t/sweep", &ham(), &TransitionStrategy::QDrift, &config)
            .unwrap();
        let mut progress_calls = 0usize;
        let result = client
            .wait_with_progress(job, |completed, total| {
                progress_calls += 1;
                assert!(completed <= total);
                assert_eq!(total, 6);
            })
            .unwrap();
        match result.outcome {
            Outcome::Sweep(sweep) => {
                assert_eq!(sweep.points.len(), 6);
                assert_eq!(sweep.label, "Baseline");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(progress_calls, 6, "every point reports progress");
        server.shutdown();
    }

    #[test]
    fn compile_jobs_report_summaries() {
        let server = spawn_server(2);
        let mut client = Client::connect(server.addr()).unwrap();
        let job = client
            .submit(
                "t/compile",
                "compile",
                compile_params(
                    "0.6 XZ + 0.4 ZY + 0.3 XX",
                    &TransitionStrategy::QDrift,
                    0.4,
                    0.05,
                    2,
                    true,
                ),
            )
            .unwrap();
        let result = client.wait(job).unwrap();
        match result.outcome {
            Outcome::Compile(summary) => {
                assert!(summary.num_samples > 0);
                assert!(summary.lambda > 0.0);
                let fidelity = summary.fidelity.expect("fidelity requested");
                assert!(fidelity > 0.9 && fidelity <= 1.0 + 1e-9);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn perturb_average_jobs_round_trip_the_matrix() {
        use marqsim_core::perturb::{perturbed_matrix_sample, PerturbationConfig};
        use marqsim_markov::combine::combine;

        let server = spawn_server(2);
        let mut client = Client::connect(server.addr()).unwrap();
        let small = Hamiltonian::parse("0.6 XZ + 0.4 ZY + 0.3 XX").unwrap();
        let config = PerturbationConfig {
            samples: 4,
            seed: 5,
            ..Default::default()
        };
        let job = client
            .submit(
                "t/prp",
                "perturb_average",
                perturb_params(&small.to_string(), &config),
            )
            .unwrap();
        let result = client.wait(job).unwrap();
        let matrices: Vec<_> = (0..config.samples)
            .map(|i| perturbed_matrix_sample(&small, &config, i).unwrap())
            .collect();
        let expected = combine(&matrices, &[0.25; 4]).unwrap();
        match result.outcome {
            Outcome::PerturbAverage(back) => {
                assert_eq!(back.samples, 4);
                assert_eq!(back.matrix, expected, "matrix crosses the wire bit-exactly");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn status_and_stats_verbs_answer() {
        let server = spawn_server(1);
        let mut client = Client::connect(server.addr()).unwrap();

        // Unknown job: known=false.
        match client.status(999).unwrap() {
            Event::Status { known, .. } => assert!(!known),
            other => panic!("unexpected {other:?}"),
        }

        let job = client
            .submit_sweep(
                "t/status",
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        client.wait(job).unwrap();
        match client.status(job).unwrap() {
            Event::Status {
                known,
                finished,
                completed,
                total,
                ..
            } => {
                assert!(known);
                assert!(finished);
                assert_eq!(completed, total);
            }
            other => panic!("unexpected {other:?}"),
        }

        let stats = client.stats().unwrap();
        assert_eq!(stats.threads, 1);
        assert!(stats.cache.misses >= 1, "the sweep populated the cache");
        assert_eq!(stats.in_flight, 0, "the finished job freed its slot");
        server.shutdown();
    }

    #[test]
    fn admission_control_rejects_submits_over_the_bound() {
        let server = spawn_server(1);
        let mut client = Client::connect(server.addr()).unwrap();
        // A job that runs until cancelled occupies the single admission
        // slot...
        let options = SubmitOptions::new().with_max_in_flight(1);
        let blocker = client
            .submit_with_options("t/occupy", "block", Json::obj([]), options.clone())
            .unwrap();
        // ...so a second submit under the same bound is rejected, with the
        // structured busy payload.
        match client.submit_with_options(
            "t/rejected",
            "sweep",
            sweep_params(
                &ham().to_string(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            ),
            options,
        ) {
            Err(ClientError::Busy { in_flight, limit }) => {
                assert_eq!(in_flight, 1);
                assert_eq!(limit, 1);
            }
            other => panic!("expected busy, got {other:?}"),
        }
        // The stats verb reports the gauge.
        let stats = client.stats().unwrap();
        assert_eq!(stats.in_flight, 1);
        // Once the blocker is released, the slot frees and submits flow
        // again.
        release_blocker(&mut client, blocker);
        let job = client
            .submit_sweep(
                "t/after-busy",
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        assert!(client.wait(job).is_ok());
        server.shutdown();
    }

    #[test]
    fn engine_wide_admission_bounds_jobs_across_connections() {
        // A global MARQSIM_MAX_ACTIVE_JOBS-style bound of one: a blocker on
        // connection A makes a submit on connection B bounce with the
        // structured busy event, even though B has zero in-flight jobs of
        // its own.
        let server = spawn_server_with(1, |server| server.with_max_active_jobs(1));
        let mut client_a = Client::connect(server.addr()).unwrap();
        let mut client_b = Client::connect(server.addr()).unwrap();

        let blocker = client_a
            .submit("t/global-occupy", "block", Json::obj([]))
            .unwrap();
        match client_b.submit_sweep(
            "t/global-rejected",
            &ham(),
            &TransitionStrategy::QDrift,
            &SweepConfig::quick(0.5),
        ) {
            Err(ClientError::Busy { in_flight, limit }) => {
                assert_eq!(in_flight, 1, "engine-wide active jobs, not B's own");
                assert_eq!(limit, 1);
            }
            other => panic!("expected busy from the global bound, got {other:?}"),
        }
        // The bound and the engine-wide gauge are surfaced in stats on
        // every connection.
        let stats = client_b.stats().unwrap();
        assert_eq!(stats.max_active_jobs, 1);
        assert_eq!(stats.active_jobs, 1);
        assert_eq!(stats.in_flight, 0, "B itself has nothing in flight");

        // Releasing A's blocker frees the engine-wide slot for B.
        release_blocker(&mut client_a, blocker);
        let job = client_b
            .submit_sweep(
                "t/global-after",
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        assert!(client_b.wait(job).is_ok());
        server.shutdown();
    }

    #[test]
    fn clients_cannot_raise_the_server_admission_bound() {
        // The server's bound is 1; a request asking for a million in-flight
        // jobs must still be held to 1 (the per-request value only
        // tightens).
        let server = spawn_server_with(1, |server| server.with_max_in_flight(1));
        let mut client = Client::connect(server.addr()).unwrap();
        let greedy = SubmitOptions::new().with_max_in_flight(1_000_000);
        let blocker = client
            .submit_with_options("t/greedy-1", "block", Json::obj([]), greedy.clone())
            .unwrap();
        match client.submit_with_options(
            "t/greedy-2",
            "sweep",
            sweep_params(
                &ham().to_string(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            ),
            greedy,
        ) {
            Err(ClientError::Busy { limit, .. }) => {
                assert_eq!(limit, 1, "server bound wins over the client's ask")
            }
            other => panic!("expected busy at the server bound, got {other:?}"),
        }
        release_blocker(&mut client, blocker);
        server.shutdown();
    }

    #[test]
    fn flow_solver_selection_round_trips_over_the_wire() {
        use marqsim_engine::SolverKind;
        let server = spawn_server(2);
        let mut client = Client::connect(server.addr()).unwrap();
        // The hello handshake advertises the backends and the default
        // (the engine-level default is the size-adaptive `auto`).
        assert_eq!(client.flow_solver(), SolverKind::Auto);
        assert_eq!(
            client.flow_solvers(),
            [
                "ssp".to_string(),
                "network_simplex".to_string(),
                "auto".to_string()
            ]
        );

        // A GC sweep under the non-default backend: accepted, solved by the
        // simplex (per-backend attribution in the job's cache delta), and
        // the done event echoes the backend.
        let job = client
            .submit_with_options(
                "t/ns-sweep",
                "sweep",
                sweep_params(
                    &ham().to_string(),
                    &TransitionStrategy::marqsim_gc(),
                    &SweepConfig::quick(0.5),
                ),
                SubmitOptions::new().with_flow_solver(SolverKind::NetworkSimplex),
            )
            .unwrap();
        let result = client.wait(job).unwrap();
        assert_eq!(result.flow_solver, SolverKind::NetworkSimplex);
        assert_eq!(result.cache_delta.flow_solves_simplex, 1);
        assert_eq!(result.cache_delta.flow_solves_ssp, 0);
        match result.outcome {
            Outcome::Sweep(sweep) => assert_eq!(sweep.points.len(), 6),
            other => panic!("unexpected outcome {other:?}"),
        }

        // Stats report the engine's default backend.
        let stats = client.stats().unwrap();
        assert_eq!(stats.flow_solver, SolverKind::Auto);
        assert_eq!(stats.max_active_jobs, 0, "no global bound configured");
        server.shutdown();
    }

    #[test]
    fn metrics_verb_reports_exposition_and_connection_counters() {
        let server = spawn_server(2);
        let mut client = Client::connect(server.addr()).unwrap();

        // A min-cost-flow workload so the backend histograms have samples.
        let job = client
            .submit_sweep(
                "t/metrics",
                &ham(),
                &TransitionStrategy::marqsim_gc(),
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        client.wait(job).unwrap();

        let report = client.metrics().unwrap();
        assert!(
            report.requests >= 2,
            "submit + metrics decoded on this connection, got {}",
            report.requests
        );
        assert!(report.bytes_in > 0, "request bytes counted");
        assert!(
            report.bytes_out > 0,
            "hello/submitted/progress/done bytes counted"
        );

        // The exposition carries every subsystem's instruments: cache,
        // flow backends, pool, engine, and the serve layer itself.
        for needle in [
            "# TYPE marqsim_cache_hits_total counter",
            "marqsim_cache_misses_total",
            "marqsim_flow_solve_seconds_bucket",
            "marqsim_flow_solves_total{backend=\"ssp\"}",
            "marqsim_pool_queue_depth",
            "marqsim_pool_queue_wait_seconds_count",
            "marqsim_engine_jobs_total",
            "marqsim_serve_connections_total",
            "marqsim_serve_requests_total{verb=\"submit\"}",
            "marqsim_serve_bytes_read_total",
        ] {
            assert!(
                report.exposition.contains(needle),
                "exposition is missing {needle:?}:\n{}",
                report.exposition
            );
        }
        server.shutdown();
    }

    #[test]
    fn unknown_kinds_are_rejected_naming_the_known_ones() {
        let server = spawn_server(1);
        let mut client = Client::connect(server.addr()).unwrap();
        match client.submit("t/unknown", "teleport", Json::obj([])) {
            Err(ClientError::Protocol(message)) => {
                assert!(message.contains("teleport"), "{message}");
                assert!(message.contains("sweep"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The connection survives the rejection.
        let job = client
            .submit_sweep(
                "t/after-unknown",
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        assert!(client.wait(job).is_ok());
        server.shutdown();
    }

    #[test]
    fn cancelled_jobs_fail_with_the_cancelled_kind() {
        let server = spawn_server(1);
        let mut client = Client::connect(server.addr()).unwrap();
        // The victim only resolves on cancellation, so the cancel round
        // trip can never race a natural completion. A sweep runs alongside
        // it to show cancellation is per job, not per connection.
        let job = client.submit("t/cancel", "block", Json::obj([])).unwrap();
        let survivor = client
            .submit_sweep(
                "t/survivor",
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        match client.cancel(job).unwrap() {
            Event::Status {
                known, cancelled, ..
            } => {
                assert!(known);
                assert!(cancelled);
            }
            other => panic!("unexpected {other:?}"),
        }
        match client.wait(job) {
            Err(ClientError::JobFailed { kind, .. }) => assert_eq!(kind, "cancelled"),
            other => panic!("expected cancellation, got {other:?}"),
        }
        assert!(client.wait(survivor).is_ok(), "survivor runs to completion");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_keep_the_connection_alive() {
        let server = spawn_server(1);
        let mut client = Client::connect(server.addr()).unwrap();
        // Protocol errors surface on the next read...
        use std::io::Write;
        // Reach into the protocol: an invalid verb and invalid JSON.
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        {
            use std::io::{BufRead, BufReader};
            let mut reader = BufReader::new(raw.try_clone().unwrap());
            let mut hello = String::new();
            reader.read_line(&mut hello).unwrap();
            assert!(hello.contains("hello"));
            raw.write_all(b"this is not json\n").unwrap();
            let mut error_line = String::new();
            reader.read_line(&mut error_line).unwrap();
            assert!(error_line.contains("\"error\""), "{error_line}");
            raw.write_all(br#"{"verb":"submit","label":"x","kind":"sweep","params":{"hamiltonian":"not a ham","strategy":{"kind":"qdrift"},"config":{"time":0.5,"epsilons":[0.1],"repeats":1,"base_seed":1,"evaluate_fidelity":false}}}"#).unwrap();
            raw.write_all(b"\n").unwrap();
            let mut error_line = String::new();
            reader.read_line(&mut error_line).unwrap();
            assert!(error_line.contains("invalid hamiltonian"), "{error_line}");
        }
        // The well-behaved client still works against the same server.
        let job = client
            .submit_sweep(
                "t/after-errors",
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        assert!(client.wait(job).is_ok());
        server.shutdown();
    }

    #[test]
    fn auto_flow_solver_resolves_per_instance_and_shares_the_cache() {
        use marqsim_engine::SolverKind;
        let server = spawn_server(2);
        let mut client = Client::connect(server.addr()).unwrap();

        // An auto GC sweep on a small Hamiltonian: the done event echoes
        // the requested policy, while the cache delta attributes the solve
        // to the backend it resolved to (ssp at 4 strings).
        let params = sweep_params(
            &ham().to_string(),
            &TransitionStrategy::marqsim_gc(),
            &SweepConfig::quick(0.5),
        );
        let job = client
            .submit_with_options(
                "t/auto-sweep",
                "sweep",
                params.clone(),
                SubmitOptions::new().with_flow_solver(SolverKind::Auto),
            )
            .unwrap();
        let auto_result = client.wait(job).unwrap();
        assert_eq!(auto_result.flow_solver, SolverKind::Auto);
        assert_eq!(auto_result.cache_delta.flow_solves_ssp, 1);
        assert_eq!(auto_result.cache_delta.flow_solves_simplex, 0);

        // The same sweep requested with the explicit resolved backend hits
        // the cache entry the auto job built (flow_solves delta 0): auto
        // and its resolution share one cache key.
        let job = client
            .submit_with_options(
                "t/ssp-sweep",
                "sweep",
                params,
                SubmitOptions::new().with_flow_solver(SolverKind::SuccessiveShortestPath),
            )
            .unwrap();
        let ssp_result = client.wait(job).unwrap();
        assert_eq!(ssp_result.cache_delta.flow_solves, 0);

        // Parity: identical sweep results, point for point.
        match (auto_result.outcome, ssp_result.outcome) {
            (Outcome::Sweep(auto_sweep), Outcome::Sweep(ssp_sweep)) => {
                assert_eq!(auto_sweep.points.len(), ssp_sweep.points.len());
                for (a, s) in auto_sweep.points.iter().zip(ssp_sweep.points.iter()) {
                    assert_eq!(a.epsilon.to_bits(), s.epsilon.to_bits());
                    assert_eq!(a.seed, s.seed);
                    assert_eq!(a.stats, s.stats);
                }
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_and_their_jobs_cancelled() {
        use std::io::{BufRead, BufReader, Write};
        let server = spawn_server_with(2, |server| {
            server.with_idle_timeout(std::time::Duration::from_millis(200))
        });

        // A half-open client: submits a blocker, then goes silent (never
        // writes again). Inbound bytes are the only activity that counts,
        // so running jobs do not keep the connection alive.
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("hello"), "{line}");
        raw.write_all(b"{\"verb\":\"submit\",\"label\":\"t/idle-blocker\",\"kind\":\"block\",\"params\":{}}\n")
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("submitted"), "{line}");
        assert_eq!(server.engine().active_jobs(), 1);

        // The reaper tells us why before closing, then the stream ends.
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("idle timeout"),
            "expected the idle-timeout error event, got {line:?}"
        );
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

        // The blocker was cancelled by the reap, not abandoned.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.engine().active_jobs() != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "reaped connection's job was never cancelled"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // A connection that keeps talking is not reaped: the idle deadline
        // is pushed out by every request.
        let mut client = Client::connect(server.addr()).unwrap();
        for _ in 0..4 {
            std::thread::sleep(std::time::Duration::from_millis(120));
            let stats = client.stats().unwrap();
            assert_eq!(stats.active_jobs, 0);
        }
        server.shutdown();
    }

    #[test]
    fn auth_token_gates_non_loopback_grade_servers() {
        let server = spawn_server_with(1, |server| server.with_token("fleet-secret"));

        // No token: the hello advertises auth and the client refuses to
        // proceed rather than trip the server's rejection.
        match Client::connect(server.addr()) {
            Err(ClientError::Protocol(message)) => {
                assert!(message.contains("requires authentication"), "{message}");
            }
            Err(other) => panic!("expected an auth refusal, got {other:?}"),
            Ok(_) => panic!("expected an auth refusal, got a connection"),
        }

        // A wrong token is rejected server-side with a structured error.
        match Client::connect_with_token(server.addr(), Some("wrong")) {
            Err(ClientError::Protocol(message)) => {
                assert!(message.contains("authentication failed"), "{message}");
            }
            Err(other) => panic!("expected a bad-token rejection, got {other:?}"),
            Ok(_) => panic!("expected a bad-token rejection, got a connection"),
        }

        // The right token unlocks normal service end to end.
        let mut client = Client::connect_with_token(server.addr(), Some("fleet-secret")).unwrap();
        let job = client
            .submit_sweep(
                "t/authed",
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        assert!(client.wait(job).is_ok());
        server.shutdown();
    }

    /// Spawns `n` node servers (each with the `block` kind registered)
    /// and returns their handles plus their `host:port` fleet names.
    fn spawn_fleet(n: usize, token: Option<&'static str>) -> (Vec<ServerHandle>, Vec<String>) {
        let mut handles = Vec::new();
        let mut names = Vec::new();
        for _ in 0..n {
            let handle = spawn_server_with(2, |server| match token {
                Some(token) => server.with_token(token),
                None => server,
            });
            names.push(handle.addr().to_string());
            handles.push(handle);
        }
        (handles, names)
    }

    /// Polls the router's stats until `n` nodes report real stats (a
    /// connected node has threads > 0; a placeholder is all zeros).
    fn wait_for_fleet(client: &mut Client, n: usize) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let stats = client.stats().unwrap();
            let ready = stats
                .per_node
                .iter()
                .filter(|part| part.stats.threads > 0)
                .count();
            if ready == n {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "fleet never became ready: {:?}",
                stats.per_node
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    #[test]
    fn router_routes_jobs_and_aggregates_the_fleet() {
        let (handles, names) = spawn_fleet(2, Some("fleet-secret"));
        let router = Router::bind("127.0.0.1:0", &names)
            .unwrap()
            .with_token("fleet-secret")
            .spawn()
            .unwrap();

        // The router's own front door is gated by the same token.
        assert!(Client::connect(router.addr()).is_err());
        let mut client = Client::connect_with_token(router.addr(), Some("fleet-secret")).unwrap();
        assert_eq!(client.role(), Role::Router);
        assert_eq!(client.nodes().len(), 2);
        wait_for_fleet(&mut client, 2);

        // Distinct Hamiltonians spread over the ring; every job comes back
        // correct regardless of which node ran it, with progress relayed.
        for (i, text) in [
            "0.9 ZZ + 0.5 XX",
            "0.8 XZ + 0.3 ZY + 0.2 YY",
            "0.7 ZI + 0.4 IX",
            "1.1 YZ + 0.6 ZX",
        ]
        .iter()
        .enumerate()
        {
            let ham = Hamiltonian::parse(text).unwrap();
            let job = client
                .submit_sweep(
                    &format!("t/fleet-{i}"),
                    &ham,
                    &TransitionStrategy::QDrift,
                    &SweepConfig::quick(0.5),
                )
                .unwrap();
            let mut progress = 0usize;
            let result = client
                .wait_with_progress(job, |_, total| {
                    progress += 1;
                    assert_eq!(total, 6);
                })
                .unwrap();
            match result.outcome {
                Outcome::Sweep(sweep) => assert_eq!(sweep.points.len(), 6),
                other => panic!("unexpected outcome {other:?}"),
            }
            assert_eq!(progress, 6, "progress events relay through the router");
        }

        // The aggregate view sums the fleet; the breakdown names both
        // nodes as up.
        let stats = client.stats().unwrap();
        assert_eq!(stats.threads, 4, "2 nodes x 2 threads");
        assert_eq!(stats.per_node.len(), 2);
        assert!(stats.per_node.iter().all(|part| part.health == "up"));
        assert!(
            stats.cache.flow_solves
                <= stats
                    .per_node
                    .iter()
                    .map(|p| p.stats.cache.flow_solves)
                    .sum()
        );

        // Status and cancel round-trip through the job-id translation.
        let blocker = client
            .submit("t/fleet-block", "block", Json::obj([]))
            .unwrap();
        match client.status(blocker).unwrap() {
            Event::Status { known, .. } => assert!(known),
            other => panic!("unexpected {other:?}"),
        }
        release_blocker(&mut client, blocker);

        // Draining a node removes it from the fleet; the survivor keeps
        // serving every key.
        let drained = names[0].clone();
        assert_eq!(client.drain(&drained).unwrap(), 0, "nothing in flight");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let stats = client.stats().unwrap();
            if stats.per_node.len() == 1 {
                assert_ne!(stats.per_node[0].node, drained);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "drained node never left the fleet: {:?}",
                stats.per_node
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let job = client
            .submit_sweep(
                "t/post-drain",
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        assert!(client.wait(job).is_ok());

        router.shutdown();
        for handle in handles {
            handle.shutdown();
        }
    }

    #[test]
    fn router_reports_lost_nodes_and_keeps_serving() {
        let (mut handles, names) = spawn_fleet(2, None);
        let router = Router::bind("127.0.0.1:0", &names)
            .unwrap()
            .spawn()
            .unwrap();
        let mut client = Client::connect(router.addr()).unwrap();
        wait_for_fleet(&mut client, 2);

        // A job that only ends on cancellation pins down its node; the
        // per-node breakdown tells us which one got it.
        let blocker = client.submit("t/doomed", "block", Json::obj([])).unwrap();
        let victim = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                let stats = client.stats().unwrap();
                if let Some(part) = stats
                    .per_node
                    .iter()
                    .find(|part| part.stats.active_jobs == 1)
                {
                    break part.node.clone();
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "blocker never showed up in the breakdown"
                );
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        };

        // Kill that node out from under the router.
        let index = names.iter().position(|name| *name == victim).unwrap();
        handles.remove(index).shutdown();

        // The router notices, fails the orphaned job with the structured
        // node_lost kind, and stays up.
        match client.wait(blocker) {
            Err(ClientError::JobFailed { kind, message, .. }) => {
                assert_eq!(kind, "node_lost");
                assert!(message.contains(&victim), "{message}");
            }
            other => panic!("expected node_lost, got {other:?}"),
        }

        // The survivor absorbs the dead node's keyspace: new work (any
        // Hamiltonian) still completes.
        let job = client
            .submit_sweep(
                "t/survivor-takes-over",
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
        assert!(client.wait(job).is_ok());

        // The breakdown reports the loss instead of hiding it.
        let stats = client.stats().unwrap();
        let lost = stats
            .per_node
            .iter()
            .find(|part| part.node == victim)
            .expect("dead node stays visible");
        assert!(
            lost.health == "suspect" || lost.health == "down",
            "unexpected health {:?}",
            lost.health
        );

        router.shutdown();
        for handle in handles {
            handle.shutdown();
        }
    }
}
