//! A blocking client for the serve protocol.
//!
//! [`Client`] owns one connection and exposes the verbs as methods. Events
//! for different jobs interleave on the wire (progress of job 1 can arrive
//! while waiting for job 2), so the client keeps an internal buffer of
//! not-yet-consumed events: [`Client::wait`] returns the terminal event of
//! *its* job and leaves everything else buffered for later calls.
//!
//! Submission is open-ended: [`Client::submit`] takes a workload kind plus
//! a raw params object (see [`protocol::sweep_params`](crate::protocol::sweep_params)
//! and friends for the built-in shapes), so a client can drive any kind the
//! server's registry knows — including custom ones — without client-side
//! code changes. An admission rejection surfaces as [`ClientError::Busy`].
//!
//! This is the client the integration tests, the `serve_smoke` benchmark
//! binary, and the `serve_roundtrip` example use; it is deliberately
//! synchronous (one thread), but built on a nonblocking socket with
//! poll-based readiness waits rather than blocking reads: every read and
//! write parks in `poll(2)` until the socket is ready or a deadline
//! expires, so a stalled server surfaces as a timeout instead of a
//! busy-retry loop or an indefinite hang. While waiting on a long job,
//! [`Client::wait_with_progress`] additionally sends a keepalive `status`
//! poll for the awaited job whenever the socket has been silent for
//! [`KEEPALIVE_INTERVAL`] — inbound requests are what the server's idle
//! timeout counts, so a patient waiter is never mistaken for a half-open
//! peer. The acks of those polls are consumed internally and never
//! surface to callers.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use marqsim_core::experiment::SweepConfig;
use marqsim_core::TransitionStrategy;
use marqsim_engine::{CacheStats, SolverKind, SubmitOptions};
use marqsim_net::{wait_readable, wait_writable, LineAssembler};
use marqsim_pauli::Hamiltonian;

use crate::protocol::{sweep_params, Event, Outcome, Request, Role, ServerStats};
use crate::wire::{Json, WireError};

/// Per-event read deadline. Long enough for any reduced-scale sweep;
/// prevents a wedged server from hanging a test suite forever.
const READ_TIMEOUT: Duration = Duration::from_secs(300);

/// Socket-silence span after which [`Client::wait_with_progress`] sends a
/// keepalive `status` poll for the awaited job (see the module docs).
/// Comfortably inside any reasonable server idle timeout.
pub const KEEPALIVE_INTERVAL: Duration = Duration::from_secs(30);

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something the protocol layer cannot decode.
    Wire(WireError),
    /// The server answered with an `error` event, or violated the protocol
    /// (e.g. no `hello` on connect).
    Protocol(String),
    /// A submit was rejected by admission control; resubmit after one of
    /// the connection's jobs finishes.
    Busy {
        /// In-flight jobs on this connection at rejection time.
        in_flight: usize,
        /// The effective admission bound.
        limit: usize,
    },
    /// The awaited job terminated with a `failed` event.
    JobFailed {
        /// The failure kind (`"compile"`, `"panic"`, `"cancelled"`, …).
        kind: String,
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "malformed server message: {e}"),
            ClientError::Protocol(message) => write!(f, "protocol violation: {message}"),
            ClientError::Busy { in_flight, limit } => {
                write!(
                    f,
                    "rejected by admission control ({in_flight} jobs in flight, limit {limit})"
                )
            }
            ClientError::JobFailed { kind, message } => {
                write!(f, "job failed ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A finished job as reported by the server.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The result payload.
    pub outcome: Outcome,
    /// Cache-counter delta the server attributed to this job.
    pub cache_delta: CacheStats,
    /// The min-cost-flow backend the job's solves used.
    pub flow_solver: SolverKind,
}

/// The telemetry snapshot returned by [`Client::metrics`]: the server's
/// process-wide Prometheus-style exposition plus this connection's own
/// request/byte counters (as the server's event loop counts them).
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Prometheus-style text exposition of the server's metrics registry.
    pub exposition: String,
    /// Requests the server has decoded on this connection (including this
    /// `metrics` request itself).
    pub requests: u64,
    /// Request-line bytes the server has read on this connection.
    pub bytes_in: u64,
    /// Event bytes the server has written on this connection.
    pub bytes_out: u64,
}

/// One connection to a `marqsim-served` instance.
pub struct Client {
    /// The nonblocking socket; all waits go through `poll(2)`.
    stream: TcpStream,
    /// Reassembles wire lines from whatever chunks the socket delivers.
    assembler: LineAssembler,
    /// Events read off the wire but not yet consumed by a waiter.
    pending: VecDeque<Event>,
    /// Keepalive `status` polls sent but not yet acknowledged; matching
    /// status events are swallowed instead of surfacing to callers.
    keepalives_outstanding: usize,
    /// Server worker-thread count from the `hello` event.
    threads: usize,
    /// Workload kinds the server advertised in `hello`.
    workloads: Vec<String>,
    /// The server's default min-cost-flow backend from `hello`.
    flow_solver: SolverKind,
    /// Backends the server advertised in `hello`.
    flow_solvers: Vec<String>,
    /// Whether the peer is a single node or a fleet router (from `hello`).
    role: Role,
    /// Fleet node names a router advertised in `hello` (empty for nodes).
    nodes: Vec<String>,
}

impl Client {
    /// Connects and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// Fails on connection errors, a missing/invalid `hello`, or a protocol
    /// version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with_token(addr, None)
    }

    /// [`connect`](Self::connect) with a shared secret: if the server's
    /// `hello` advertises `auth: true` (it was started with
    /// `MARQSIM_SERVE_TOKEN`), the handshake sends the `auth` verb and
    /// waits for `auth_ok` before the client is handed back.
    ///
    /// # Errors
    ///
    /// In addition to [`connect`](Self::connect)'s failures: the server
    /// requires a token and none was supplied, or the server rejected the
    /// token (a structured `error` surfacing as [`ClientError::Protocol`]).
    pub fn connect_with_token(
        addr: impl ToSocketAddrs,
        token: Option<&str>,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let mut client = Client {
            stream,
            // Events are as large as their result payloads (a perturb
            // matrix is megabytes); the client trusts its server and keeps
            // line reassembly unbounded, exactly like the old buffered
            // reader.
            assembler: LineAssembler::new(usize::MAX),
            pending: VecDeque::new(),
            keepalives_outstanding: 0,
            threads: 0,
            workloads: Vec::new(),
            flow_solver: SolverKind::default(),
            flow_solvers: Vec::new(),
            role: Role::default(),
            nodes: Vec::new(),
        };
        let auth_required = match client.read_event()? {
            Event::Hello {
                protocol,
                threads,
                workloads,
                flow_solver,
                flow_solvers,
                role,
                nodes,
                auth,
            } => {
                if protocol != crate::protocol::PROTOCOL_VERSION {
                    return Err(ClientError::Protocol(format!(
                        "server speaks protocol {protocol}, client speaks {}",
                        crate::protocol::PROTOCOL_VERSION
                    )));
                }
                client.threads = threads;
                client.workloads = workloads;
                client.flow_solver = flow_solver;
                client.flow_solvers = flow_solvers;
                client.role = role;
                client.nodes = nodes;
                auth
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected hello, got {other:?}"
                )))
            }
        };
        match (auth_required, token) {
            (true, None) => {
                return Err(ClientError::Protocol(
                    "server requires authentication and no token was supplied".to_string(),
                ))
            }
            // An open server accepts (and acks) any auth verb, so a
            // token-configured client works against both.
            (_, Some(token)) => {
                client.send(&Request::Auth {
                    token: token.to_string(),
                })?;
                match client.read_event()? {
                    Event::AuthOk => {}
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "expected auth_ok, got {other:?}"
                        )))
                    }
                }
            }
            (false, None) => {}
        }
        Ok(client)
    }

    /// The server's engine worker-thread count (from `hello`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The workload kinds the server advertised (from `hello`).
    pub fn workloads(&self) -> &[String] {
        &self.workloads
    }

    /// The server's default min-cost-flow backend (from `hello`).
    pub fn flow_solver(&self) -> SolverKind {
        self.flow_solver
    }

    /// The min-cost-flow backends the server advertised (from `hello`).
    pub fn flow_solvers(&self) -> &[String] {
        &self.flow_solvers
    }

    /// Whether the peer is a single node or a fleet router (from `hello`).
    pub fn role(&self) -> Role {
        self.role
    }

    /// Fleet node names a router advertised in `hello` (empty when the
    /// peer is a plain node).
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Asks a router to drain `node`: stop routing new work to it, let its
    /// in-flight jobs finish, then drop it from the fleet. Returns the
    /// in-flight count at drain start.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, or with [`ClientError::Protocol`] when
    /// the peer is a plain node or does not know `node`.
    pub fn drain(&mut self, node: &str) -> Result<usize, ClientError> {
        self.send(&Request::Drain {
            node: node.to_string(),
        })?;
        match self.wait_for(|event| matches!(event, Event::Draining { .. }))? {
            Event::Draining { in_flight, .. } => Ok(in_flight),
            _ => unreachable!("matcher admits only draining events"),
        }
    }

    /// Writes one request line, parking in `poll(2)` whenever the socket's
    /// send buffer is full (never a busy-retry on `WouldBlock`).
    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut line = request.encode();
        line.push('\n');
        let bytes = line.as_bytes();
        let deadline = Instant::now() + READ_TIMEOUT;
        let mut written = 0;
        while written < bytes.len() {
            match (&self.stream).write(&bytes[written..]) {
                Ok(0) => {
                    return Err(ClientError::Protocol(
                        "server closed the connection".to_string(),
                    ))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero()
                        || !wait_writable(self.stream.as_raw_fd(), Some(remaining))?
                    {
                        return Err(ClientError::Io(ErrorKind::TimedOut.into()));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn read_event(&mut self) -> Result<Event, ClientError> {
        self.read_event_by(Instant::now() + READ_TIMEOUT)
    }

    /// Returns the next event, parking in `poll(2)` until bytes arrive or
    /// `deadline` passes (a timeout surfaces as [`ClientError::Io`] with
    /// [`ErrorKind::TimedOut`], like the old blocking read timeout).
    fn read_event_by(&mut self, deadline: Instant) -> Result<Event, ClientError> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            while let Some(line) = self
                .assembler
                .next_line()
                .map_err(|e| ClientError::Protocol(e.to_string()))?
            {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                // A protocol-level error event aborts whatever we were
                // doing.
                return match Event::decode(trimmed)? {
                    Event::Error { message } => Err(ClientError::Protocol(message)),
                    event => Ok(event),
                };
            }
            match (&self.stream).read(&mut buf) {
                Ok(0) => {
                    return Err(ClientError::Protocol(
                        "server closed the connection".to_string(),
                    ))
                }
                Ok(n) => self.assembler.push(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero()
                        || !wait_readable(self.stream.as_raw_fd(), Some(remaining))?
                    {
                        return Err(ClientError::Io(ErrorKind::TimedOut.into()));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// [`read_event`](Self::read_event) with the keepalive policy for a
    /// long wait on `job`: after [`KEEPALIVE_INTERVAL`] of socket silence,
    /// send a `status` poll for the job (counting it outstanding) and keep
    /// waiting; swallow the matching status acks so they never surface.
    fn read_event_keepalive(&mut self, job: u64) -> Result<Event, ClientError> {
        let mut deadline = Instant::now() + READ_TIMEOUT;
        loop {
            let poll_at = Instant::now() + KEEPALIVE_INTERVAL;
            let event = match self.read_event_by(deadline.min(poll_at)) {
                Err(ClientError::Io(e))
                    if e.kind() == ErrorKind::TimedOut && poll_at < deadline =>
                {
                    self.send(&Request::Status { job })?;
                    self.keepalives_outstanding += 1;
                    continue;
                }
                other => other?,
            };
            match event {
                Event::Status { job: j, .. } if j == job && self.keepalives_outstanding > 0 => {
                    self.keepalives_outstanding -= 1;
                    // The ack proves the server is alive; refresh the
                    // per-event deadline like any other received event.
                    deadline = Instant::now() + READ_TIMEOUT;
                }
                event => return Ok(event),
            }
        }
    }

    /// Returns the first event satisfying `matcher`: scans the buffer of
    /// already-received events once, then reads fresh events off the
    /// socket, buffering non-matching ones. (The buffer is never re-read
    /// inside the socket loop — re-queuing a just-popped event would spin
    /// without ever touching the socket.)
    fn wait_for(&mut self, mut matcher: impl FnMut(&Event) -> bool) -> Result<Event, ClientError> {
        if let Some(index) = self.pending.iter().position(&mut matcher) {
            return Ok(self.pending.remove(index).expect("index in range"));
        }
        loop {
            let event = self.read_event()?;
            if matcher(&event) {
                return Ok(event);
            }
            self.pending.push_back(event);
        }
    }

    /// Submits a workload of `kind` with default options and returns its
    /// server-assigned id.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an admission rejection
    /// ([`ClientError::Busy`]), or a server-side rejection of the kind or
    /// params.
    pub fn submit(&mut self, label: &str, kind: &str, params: Json) -> Result<u64, ClientError> {
        self.submit_with_options(label, kind, params, SubmitOptions::default())
    }

    /// Submits a workload with explicit [`SubmitOptions`] (priority,
    /// admission bound, progress cadence).
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_with_options(
        &mut self,
        label: &str,
        kind: &str,
        params: Json,
        options: SubmitOptions,
    ) -> Result<u64, ClientError> {
        self.send(&Request::Submit {
            label: label.to_string(),
            kind: kind.to_string(),
            params,
            options,
        })?;
        // Submit acks (and busy rejections) are emitted in request order,
        // so the first such event to arrive after this request is ours
        // (events of earlier jobs may interleave and are buffered).
        match self
            .wait_for(|event| matches!(event, Event::Submitted { .. } | Event::Busy { .. }))?
        {
            Event::Submitted { job, .. } => Ok(job),
            Event::Busy {
                in_flight, limit, ..
            } => Err(ClientError::Busy { in_flight, limit }),
            _ => unreachable!("matcher admits only submitted/busy events"),
        }
    }

    /// Convenience: submits a sweep job for `ham` (serialized in the
    /// `Hamiltonian::parse` textual format).
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_sweep(
        &mut self,
        label: &str,
        ham: &Hamiltonian,
        strategy: &TransitionStrategy,
        config: &SweepConfig,
    ) -> Result<u64, ClientError> {
        self.submit(
            label,
            "sweep",
            sweep_params(&ham.to_string(), strategy, config),
        )
    }

    /// Blocks until `job` reaches a terminal event. Progress events of the
    /// job are passed to `on_progress`; events of other jobs are buffered.
    ///
    /// # Errors
    ///
    /// Fails on transport errors; a `failed` terminal event becomes
    /// [`ClientError::JobFailed`].
    pub fn wait_with_progress(
        &mut self,
        job: u64,
        on_progress: impl FnMut(usize, usize),
    ) -> Result<JobResult, ClientError> {
        let result = self.wait_with_progress_inner(job, on_progress);
        // Keepalive acks that raced the terminal event are stale; drop any
        // already buffered and forget the rest (an ack still in flight will
        // be buffered as an ordinary status event, which later waiters
        // ignore — `status` is advisory and inherently racy).
        if self.keepalives_outstanding > 0 {
            let mut stale = self.keepalives_outstanding;
            self.pending.retain(|event| {
                let is_ack =
                    stale > 0 && matches!(event, Event::Status { job: j, .. } if *j == job);
                if is_ack {
                    stale -= 1;
                }
                !is_ack
            });
            self.keepalives_outstanding = 0;
        }
        result
    }

    fn wait_with_progress_inner(
        &mut self,
        job: u64,
        mut on_progress: impl FnMut(usize, usize),
    ) -> Result<JobResult, ClientError> {
        // Drain buffered progress of this job (a progress event can be
        // enqueued by the engine's coordinator before the reader thread's
        // submitted ack, so it may already sit in the buffer), then scan
        // for an already-buffered terminal event.
        self.pending.retain(|event| match *event {
            Event::Progress {
                job: j,
                completed,
                total,
                ..
            } if j == job => {
                on_progress(completed, total);
                false
            }
            _ => true,
        });
        if let Some(index) = self.pending.iter().position(|event| {
            matches!(event, Event::Done { job: j, .. } | Event::Failed { job: j, .. } if *j == job)
        }) {
            let event = self.pending.remove(index).expect("index in range");
            return Self::terminal(event);
        }
        loop {
            match self.read_event_keepalive(job)? {
                Event::Progress {
                    job: j,
                    completed,
                    total,
                    ..
                } if j == job => on_progress(completed, total),
                event @ (Event::Done { .. } | Event::Failed { .. })
                    if Self::event_job(&event) == Some(job) =>
                {
                    return Self::terminal(event);
                }
                other => self.pending.push_back(other),
            }
        }
    }

    /// Blocks until `job` finishes, discarding its progress events.
    ///
    /// # Errors
    ///
    /// See [`wait_with_progress`](Self::wait_with_progress).
    pub fn wait(&mut self, job: u64) -> Result<JobResult, ClientError> {
        self.wait_with_progress(job, |_, _| {})
    }

    fn event_job(event: &Event) -> Option<u64> {
        match event {
            Event::Done { job, .. } | Event::Failed { job, .. } => Some(*job),
            _ => None,
        }
    }

    fn terminal(event: Event) -> Result<JobResult, ClientError> {
        match event {
            Event::Done {
                outcome,
                cache_delta,
                flow_solver,
                ..
            } => Ok(JobResult {
                outcome,
                cache_delta,
                flow_solver,
            }),
            Event::Failed { kind, message, .. } => Err(ClientError::JobFailed { kind, message }),
            other => Err(ClientError::Protocol(format!(
                "not a terminal event: {other:?}"
            ))),
        }
    }

    /// Requests cooperative cancellation of `job` and returns the server's
    /// status snapshot.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn cancel(&mut self, job: u64) -> Result<Event, ClientError> {
        self.send(&Request::Cancel { job })?;
        self.await_status(job)
    }

    /// Queries one job's status.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn status(&mut self, job: u64) -> Result<Event, ClientError> {
        self.send(&Request::Status { job })?;
        self.await_status(job)
    }

    fn await_status(&mut self, job: u64) -> Result<Event, ClientError> {
        self.wait_for(|event| matches!(event, Event::Status { job: j, .. } if *j == job))
    }

    /// Fetches engine-wide statistics plus this connection's in-flight
    /// gauge.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.send(&Request::Stats)?;
        match self.wait_for(|event| matches!(event, Event::Stats { .. }))? {
            Event::Stats(stats) => Ok(stats),
            _ => unreachable!("matcher admits only stats events"),
        }
    }

    /// Fetches the server's metrics exposition plus this connection's
    /// request/byte counters (protocol v4).
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        self.send(&Request::Metrics)?;
        match self.wait_for(|event| matches!(event, Event::Metrics { .. }))? {
            Event::Metrics {
                exposition,
                requests,
                bytes_in,
                bytes_out,
            } => Ok(MetricsReport {
                exposition,
                requests,
                bytes_in,
                bytes_out,
            }),
            _ => unreachable!("matcher admits only metrics events"),
        }
    }
}
