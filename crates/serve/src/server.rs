//! The TCP server: concurrent client connections over one shared engine.
//!
//! Each accepted connection gets a **reader/writer thread pair**:
//!
//! * the reader thread parses one [`Request`] per line and acts on it —
//!   `submit` resolves the workload kind through the server's
//!   [`WorkloadRegistry`] and goes to [`Engine::submit_with_options`],
//!   `status`/`cancel` hit the connection's job registry, `stats`
//!   snapshots the shared cache plus the engine's load gauges;
//! * the writer thread owns the socket's write half and drains an mpsc
//!   channel of encoded [`Event`] lines, so progress callbacks (which fire
//!   on engine coordinator threads) and request acknowledgements (reader
//!   thread) can both emit events without sharing the socket.
//!
//! All connections share one [`Engine`] — and therefore one worker pool and
//! one transition cache. Two clients sweeping the same Hamiltonian share
//! the min-cost-flow solve exactly as two jobs of one in-process batch
//! would; the `cache_delta` field of each `done` event makes that visible
//! per job (a warm-cache job reports `flow_solves=0`).
//!
//! # Admission control
//!
//! Two layers, both rejected with the structured `busy` event before any
//! decoding work. First the **engine-wide** bound
//! ([`Server::with_max_active_jobs`], `MARQSIM_MAX_ACTIVE_JOBS` on the
//! daemon; `0` = unlimited): a `submit` arriving while the shared engine
//! already has that many unfinished jobs — across *all* connections — is
//! rejected, so a swarm of polite clients cannot overload the daemon
//! collectively. Then the **per-connection** in-flight gauge (jobs
//! submitted but not yet finished): a `submit` at or above the effective
//! bound — the smaller of the request's `options.max_in_flight` and the
//! server's default ([`Server::with_max_in_flight`],
//! `MARQSIM_SERVE_MAX_IN_FLIGHT` on the daemon); a client can tighten its
//! bound but never raise it — is rejected, so one greedy client cannot
//! queue unbounded coordinator threads either. The `stats` event reports
//! the connection's gauge alongside the engine-wide active-job count, the
//! global bound, and the pool queue depth.
//!
//! Job ids are engine-assigned and engine-unique, but the `status` and
//! `cancel` verbs only resolve ids submitted on the **same connection** —
//! one client cannot cancel another's jobs.
//!
//! Disconnect policy: when a client hangs up, its unfinished jobs are
//! cancelled (cooperatively), so an interrupted sweep stops consuming the
//! pool.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

use marqsim_engine::{Engine, JobControl, Progress, SolverKind, SubmitOptions};
use marqsim_obs::{lockcheck, metrics, warn};

use crate::protocol::{failure_kind, Event, Request, ServerStats, PROTOCOL_VERSION};
use crate::registry::WorkloadRegistry;

/// Maximum accepted request-line length (bytes). Bounds per-connection
/// memory against hostile input; a sweep submit is a few hundred bytes, and
/// even thousand-term Hamiltonians stay far below this.
const MAX_LINE_BYTES: u64 = 8 * 1024 * 1024;

/// Once a connection tracks this many jobs, finished entries are evicted
/// from its registry before the next submit, so a long-lived connection
/// submitting in a loop stays bounded. Consequence: `status` of a job that
/// finished more than ~this many submissions ago may answer `known=false`.
const MAX_TRACKED_JOBS: usize = 1024;

/// Default per-connection in-flight job bound when neither the submit's
/// `options.max_in_flight` nor [`Server::with_max_in_flight`] overrides it.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 32;

/// Process-wide serve instruments in the global [`metrics`] registry,
/// resolved once. Request counters are labelled by verb so the exposition
/// separates cheap `status` polls from `submit` work.
struct ServeInstruments {
    connections: Arc<metrics::Counter>,
    bytes_read: Arc<metrics::Counter>,
    bytes_written: Arc<metrics::Counter>,
    /// Per-verb request counters, indexed like [`VERBS`].
    requests: [Arc<metrics::Counter>; VERBS.len()],
    bad_requests: Arc<metrics::Counter>,
}

/// Verb labels for `marqsim_serve_requests_total`, in [`Request`] variant
/// order: submit, status, cancel, stats, metrics.
const VERBS: [&str; 5] = ["submit", "status", "cancel", "stats", "metrics"];

fn serve_instruments() -> &'static ServeInstruments {
    static INSTRUMENTS: OnceLock<ServeInstruments> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let registry = metrics::global();
        ServeInstruments {
            connections: registry.counter("marqsim_serve_connections_total"),
            bytes_read: registry.counter("marqsim_serve_bytes_read_total"),
            bytes_written: registry.counter("marqsim_serve_bytes_written_total"),
            requests: VERBS.map(|verb| {
                registry.counter_with("marqsim_serve_requests_total", &[("verb", verb)])
            }),
            bad_requests: registry.counter("marqsim_serve_bad_requests_total"),
        }
    })
}

/// A bound listener plus the engine it serves.
///
/// Construct with [`Server::bind`] (optionally [`with_registry`](Server::with_registry)
/// / [`with_max_in_flight`](Server::with_max_in_flight)), then either
/// [`run`](Server::run) on the current thread or [`spawn`](Server::spawn) a
/// background accept loop and keep the returned [`ServerHandle`] for the
/// address and shutdown.
pub struct Server {
    engine: Arc<Engine>,
    listener: TcpListener,
    registry: Arc<WorkloadRegistry>,
    max_in_flight: usize,
    max_active_jobs: usize,
    /// Jobs holding an engine-wide admission slot (reserved at submit,
    /// released when the job reaches its terminal event). A shared atomic
    /// rather than a read of the engine's gauge, so concurrent submits on
    /// different connections cannot all pass the check at once.
    global_active: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:7878"`, or port `0` to let the OS
    /// pick) and prepares to serve `engine` with the built-in workload
    /// registry and the default admission bound.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            engine,
            listener,
            registry: Arc::new(WorkloadRegistry::builtin()),
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            max_active_jobs: 0,
            global_active: Arc::new(AtomicUsize::new(0)),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Replaces the workload registry (e.g. the built-ins plus custom
    /// kinds).
    pub fn with_registry(mut self, registry: WorkloadRegistry) -> Self {
        self.registry = Arc::new(registry);
        self
    }

    /// Sets the per-connection in-flight job bound (a submit's
    /// `options.max_in_flight` can tighten it per request, never raise it).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// Sets the engine-wide active-job bound across **all** connections
    /// (`MARQSIM_MAX_ACTIVE_JOBS` on the daemon; `0` = unlimited). A submit
    /// arriving while the engine already has this many unfinished jobs is
    /// rejected with the structured `busy` event before any decoding work;
    /// the per-connection bound can only tighten admission further, never
    /// bypass this one.
    pub fn with_max_active_jobs(mut self, max_active_jobs: usize) -> Self {
        self.max_active_jobs = max_active_jobs;
        self
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The workload kinds this server accepts.
    pub fn workload_kinds(&self) -> Vec<String> {
        self.registry.kinds()
    }

    /// Runs the accept loop on the calling thread until shut down (via a
    /// [`ServerHandle`] from [`spawn`](Server::spawn); a plain `run` server
    /// loops until the process exits). Each connection is handled on its
    /// own thread pair.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures (individual connection errors are
    /// contained).
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let conn = ConnectionShared {
                        engine: Arc::clone(&self.engine),
                        registry: Arc::clone(&self.registry),
                        max_in_flight: self.max_in_flight,
                        max_active_jobs: self.max_active_jobs,
                        global_active: Arc::clone(&self.global_active),
                    };
                    // A refused thread drops the stream (the client sees a
                    // clean close) but must not take the accept loop down.
                    if let Err(error) = std::thread::Builder::new()
                        .name("marqsim-serve-conn".to_string())
                        .spawn(move || handle_connection(conn, stream))
                    {
                        warn!("serve", "connection handler spawn failed: {error}");
                    }
                }
                Err(error) => {
                    warn!("serve", "accept failed: {error}");
                }
            }
        }
        Ok(())
    }

    /// Moves the accept loop to a background thread and returns a handle
    /// with the bound address and a shutdown switch — the shape the tests
    /// and the in-process smoke binary use.
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let engine = Arc::clone(&self.engine);
        let thread = std::thread::Builder::new()
            .name("marqsim-serve-accept".to_string())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle {
            addr,
            shutdown,
            engine,
            thread: Some(thread),
        })
    }
}

/// Handle to a background server from [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    engine: Arc<Engine>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine (e.g. for asserting cache stats in tests).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops accepting new connections and joins the accept loop. Existing
    /// connections drain on their own threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// What every connection handler shares with the accept loop.
struct ConnectionShared {
    engine: Arc<Engine>,
    registry: Arc<WorkloadRegistry>,
    max_in_flight: usize,
    /// Engine-wide active-job bound across all connections (`0` =
    /// unlimited).
    max_active_jobs: usize,
    /// Jobs currently holding a slot against `max_active_jobs`.
    global_active: Arc<AtomicUsize>,
}

/// A held engine-wide admission slot (`None` when no global bound is
/// configured). Dropping it releases the slot, so every path out of
/// `handle_submit` — per-connection rejection, decode failure, or the
/// waiter thread's terminal event — frees it exactly once.
struct GlobalSlot(Option<Arc<AtomicUsize>>);

impl Drop for GlobalSlot {
    fn drop(&mut self) {
        if let Some(counter) = self.0.take() {
            counter.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Reads one `\n`-terminated line with a length bound. Returns `None` on a
/// clean EOF and an error for oversized lines.
fn read_bounded_line<R: BufRead>(reader: &mut R) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let read = reader.take(MAX_LINE_BYTES).read_line(&mut line)?;
    if read == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') && read as u64 == MAX_LINE_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line exceeds the size limit",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn send_event(out: &Sender<String>, event: &Event) {
    // A failed send only means the writer (and therefore the client) is
    // gone; the reader loop notices on its next read.
    let _ = out.send(event.encode());
}

fn handle_connection(conn: ConnectionShared, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let instruments = serve_instruments();
    instruments.connections.inc();
    let (out_tx, out_rx) = channel::<String>();

    // Bytes this connection has written, shared with the writer thread so
    // the `metrics` verb can report it alongside the reader-side counters.
    let bytes_out = Arc::new(AtomicU64::new(0));

    // Writer thread: sole owner of the socket's write half. Exits when
    // every sender is gone (reader done, all job waiters done) or the
    // socket dies.
    let writer_bytes_out = Arc::clone(&bytes_out);
    let writer = match std::thread::Builder::new()
        .name("marqsim-serve-write".to_string())
        .spawn(move || {
            let mut writer = BufWriter::new(write_half);
            for line in out_rx {
                if writer
                    .write_all(line.as_bytes())
                    .and_then(|_| writer.write_all(b"\n"))
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
                let written = line.len() as u64 + 1;
                writer_bytes_out.fetch_add(written, Ordering::Relaxed);
                serve_instruments().bytes_written.add(written);
            }
        }) {
        Ok(writer) => writer,
        Err(error) => {
            // Without a writer half the connection cannot speak at all;
            // drop it and let the client retry.
            warn!("serve", "connection writer spawn failed: {error}");
            return;
        }
    };

    send_event(
        &out_tx,
        &Event::Hello {
            protocol: PROTOCOL_VERSION,
            threads: conn.engine.threads(),
            workloads: conn.registry.kinds(),
            flow_solver: conn.engine.flow_solver(),
            flow_solvers: SolverKind::ALL
                .iter()
                .map(|k| k.as_str().to_string())
                .collect(),
        },
    );

    // Jobs submitted on this connection, for status/cancel resolution.
    let mut jobs: HashMap<u64, JobControl> = HashMap::new();
    // In-flight gauge: incremented at submit, decremented by each job's
    // waiter thread at its terminal event.
    let in_flight = Arc::new(AtomicUsize::new(0));
    // Per-connection request/byte counters, reported by the `metrics` verb.
    // `bytes_in` counts request-line bytes including the line terminator.
    let mut requests: u64 = 0;
    let mut bytes_in: u64 = 0;
    let mut reader = BufReader::new(stream);
    // An I/O error is treated like EOF: drop the connection.
    while let Ok(Some(line)) = read_bounded_line(&mut reader) {
        let line_bytes = line.len() as u64 + 1;
        bytes_in += line_bytes;
        instruments.bytes_read.add(line_bytes);
        if line.trim().is_empty() {
            continue;
        }
        requests += 1;
        match Request::decode(&line) {
            Ok(Request::Submit {
                label,
                kind,
                params,
                options,
            }) => {
                instruments.requests[0].inc();
                handle_submit(
                    &conn, &out_tx, &mut jobs, &in_flight, label, kind, params, options,
                );
            }
            Ok(Request::Status { job }) => {
                instruments.requests[1].inc();
                send_event(&out_tx, &status_event(&jobs, job));
            }
            Ok(Request::Cancel { job }) => {
                instruments.requests[2].inc();
                if let Some(control) = jobs.get(&job) {
                    control.cancel();
                }
                send_event(&out_tx, &status_event(&jobs, job));
            }
            Ok(Request::Stats) => {
                instruments.requests[3].inc();
                send_event(
                    &out_tx,
                    &Event::Stats(ServerStats {
                        threads: conn.engine.threads(),
                        cache: conn.engine.cache().stats(),
                        active_jobs: conn.engine.active_jobs(),
                        queue_depth: conn.engine.queue_depth(),
                        in_flight: in_flight.load(Ordering::Relaxed),
                        flow_solver: conn.engine.flow_solver(),
                        max_active_jobs: conn.max_active_jobs,
                    }),
                );
            }
            Ok(Request::Metrics) => {
                instruments.requests[4].inc();
                send_event(
                    &out_tx,
                    &Event::Metrics {
                        exposition: metrics::global().expose(),
                        requests,
                        bytes_in,
                        bytes_out: bytes_out.load(Ordering::Relaxed),
                    },
                );
            }
            Err(error) => {
                instruments.bad_requests.inc();
                send_event(
                    &out_tx,
                    &Event::Error {
                        message: format!("bad request: {}", error.message),
                    },
                );
            }
        }
    }

    // Client hung up: cancel whatever it left running.
    for control in jobs.values() {
        if !control.is_finished() {
            control.cancel();
        }
    }
    drop(out_tx);
    let _ = writer.join();
}

fn status_event(jobs: &HashMap<u64, JobControl>, job: u64) -> Event {
    match jobs.get(&job) {
        Some(control) => {
            let progress = control.progress();
            Event::Status {
                job,
                known: true,
                finished: control.is_finished(),
                cancelled: control.is_cancelled(),
                completed: progress.completed,
                total: progress.total,
            }
        }
        None => Event::Status {
            job,
            known: false,
            finished: false,
            cancelled: false,
            completed: 0,
            total: 0,
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    conn: &ConnectionShared,
    out_tx: &Sender<String>,
    jobs: &mut HashMap<u64, JobControl>,
    in_flight: &Arc<AtomicUsize>,
    label: String,
    kind: String,
    params: crate::wire::Json,
    options: SubmitOptions,
) {
    // Admission control, checked before any decoding work. Two bounds, both
    // rejected with the structured `busy` event: the engine-wide active-job
    // cap shared by every connection, then the per-connection in-flight
    // bound (which the request can only *tighten*, never raise — a greedy
    // client must not be able to raise the limit it is being held to).
    //
    // The global slot is *reserved* with a compare-and-swap, not checked
    // against a gauge: N connections submitting at the same instant get at
    // most `max_active_jobs` slots between them. The reservation is held
    // by a drop guard until the job's terminal event.
    let global_slot = if conn.max_active_jobs > 0 {
        match conn
            .global_active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |active| {
                (active < conn.max_active_jobs).then_some(active + 1)
            }) {
            Ok(_) => GlobalSlot(Some(Arc::clone(&conn.global_active))),
            Err(active) => {
                send_event(
                    out_tx,
                    &Event::Busy {
                        label,
                        in_flight: active,
                        limit: conn.max_active_jobs,
                    },
                );
                return;
            }
        }
    } else {
        GlobalSlot(None)
    };
    let limit = options
        .max_in_flight
        .map_or(conn.max_in_flight, |requested| {
            requested.min(conn.max_in_flight)
        })
        .max(1);
    let currently = in_flight.load(Ordering::Acquire);
    if currently >= limit {
        send_event(
            out_tx,
            &Event::Busy {
                label,
                in_flight: currently,
                limit,
            },
        );
        return;
    }

    let workload = match conn.registry.decode(&kind, &label, &params) {
        Ok(workload) => workload,
        Err(message) => {
            send_event(out_tx, &Event::Error { message });
            return;
        }
    };

    let stats_before = conn.engine.cache().stats();
    let job_flow_solver = options
        .flow_solver
        .unwrap_or_else(|| conn.engine.flow_solver());

    // The progress callback fires on the job's coordinator thread, which
    // races this thread's learning of the job id from `submit` — but every
    // progress event needs the id. Events that arrive before the id is
    // known are buffered and flushed (in order) the moment it is set, so
    // none are dropped or mislabeled.
    struct ProgressGate {
        job: Option<u64>,
        buffered: Vec<Progress>,
    }
    let gate = Arc::new(Mutex::new(ProgressGate {
        job: None,
        buffered: Vec::new(),
    }));
    let progress_out = out_tx.clone();
    let progress_gate = Arc::clone(&gate);
    let engine_options = options.clone();
    let handle =
        conn.engine
            .submit_with_options(workload, engine_options, move |progress: Progress| {
                let _witness = lockcheck::acquire("serve.server.gate");
                let mut gate = progress_gate.lock().unwrap_or_else(PoisonError::into_inner);
                match gate.job {
                    Some(job) => {
                        let _ = progress_out.send(
                            Event::Progress {
                                job,
                                completed: progress.completed,
                                total: progress.total,
                            }
                            .encode(),
                        );
                    }
                    None => gate.buffered.push(progress),
                }
            });
    in_flight.fetch_add(1, Ordering::AcqRel);
    let job_id = handle.id().0;
    if jobs.len() >= MAX_TRACKED_JOBS {
        jobs.retain(|_, control| !control.is_finished());
    }
    jobs.insert(job_id, handle.control());

    send_event(out_tx, &Event::Submitted { job: job_id, label });

    // Open the gate only after the submitted ack is on the writer queue,
    // so the wire order is always submitted → progress → done.
    {
        let _witness = lockcheck::acquire("serve.server.gate");
        let mut gate = gate.lock().unwrap_or_else(PoisonError::into_inner);
        gate.job = Some(job_id);
        for progress in gate.buffered.drain(..) {
            let _ = out_tx.send(
                Event::Progress {
                    job: job_id,
                    completed: progress.completed,
                    total: progress.total,
                }
                .encode(),
            );
        }
    }

    // Waiter thread: blocks on the outcome, attributes the cache-counter
    // delta to this job, encodes the output through the registry, frees
    // the admission slot, and emits the terminal event.
    let waiter_out = out_tx.clone();
    let waiter_engine = Arc::clone(&conn.engine);
    let waiter_registry = Arc::clone(&conn.registry);
    let waiter_in_flight = Arc::clone(in_flight);
    let spawned = std::thread::Builder::new()
        .name(format!("marqsim-serve-job-{job_id}"))
        .spawn(move || {
            let outcome = handle.collect();
            let cache_delta = waiter_engine.cache().stats().delta_since(&stats_before);
            waiter_in_flight.fetch_sub(1, Ordering::AcqRel);
            // The job is terminal: free its engine-wide admission slot
            // before the event goes out, so a client that saw `done` can
            // immediately resubmit.
            drop(global_slot);
            let event = match outcome {
                Ok(output) => match waiter_registry.encode(&kind, &output) {
                    Ok(value) => Event::Done {
                        job: job_id,
                        outcome: crate::protocol::Outcome::Other { kind, value },
                        cache_delta,
                        flow_solver: job_flow_solver,
                    },
                    Err(message) => Event::Failed {
                        job: job_id,
                        kind: "encode".to_string(),
                        message,
                    },
                },
                Err(error) => Event::Failed {
                    job: job_id,
                    kind: failure_kind(&error).to_string(),
                    message: error.to_string(),
                },
            };
            let _ = waiter_out.send(event.encode());
        });
    if let Err(error) = spawned {
        // The unspawned closure was dropped, which already freed the
        // admission slot it captured; the in-flight count and the client
        // are still ours to settle. The job itself keeps running in the
        // engine — only its outcome is lost.
        warn!("serve", "job waiter spawn failed: {error}");
        in_flight.fetch_sub(1, Ordering::AcqRel);
        send_event(
            out_tx,
            &Event::Failed {
                job: job_id,
                kind: "internal".to_string(),
                message: format!("job waiter thread could not be spawned: {error}"),
            },
        );
    }
}
