//! The TCP server: one event-loop thread over one shared engine.
//!
//! Earlier revisions spent a reader/writer **thread pair per connection**
//! plus a waiter thread per job, which caps a daemon at hundreds of
//! clients. This server is a readiness reactor built on `marqsim-net`:
//!
//! * **one event-loop thread** owns the listener, every connection socket,
//!   and a [`Poller`]; connections are per-slot state machines (bounded
//!   line reassembly in, a bounded outbound queue out);
//! * engine progress/completion hooks run on the job's coordinator thread
//!   and only push a note onto a shared queue + wake the loop through the
//!   reactor's [`Wakeup`] channel — no per-job waiter thread, and no id
//!   handshake: hooks carry the engine-assigned job id;
//! * **backpressure** is explicit: each connection's outbound queue is
//!   bounded in events and bytes. Above a soft threshold, consecutive
//!   progress events of one job coalesce (newest wins); at the hard cap
//!   the client is a slow consumer and gets a structured `error` event,
//!   its jobs are cancelled, and the connection drains and closes — the
//!   queue never grows without bound;
//! * **timeouts** ride the reactor's deadline wheel: an optional idle
//!   timeout ([`Server::with_idle_timeout`],
//!   `MARQSIM_SERVE_IDLE_TIMEOUT_MS` on the daemon) reaps connections that
//!   send nothing, cancelling whatever they left running, and a grace
//!   timer force-closes a disconnecting connection whose peer never drains
//!   the final error event.
//!
//! All connections share one [`Engine`] — and therefore one worker pool
//! and one transition cache. Two clients sweeping the same Hamiltonian
//! share the min-cost-flow solve exactly as two jobs of one in-process
//! batch would; the `cache_delta` field of each `done` event makes that
//! visible per job (a warm-cache job reports `flow_solves=0`).
//!
//! # Admission control
//!
//! Two layers, both rejected with the structured `busy` event before any
//! decoding work. First the **engine-wide** bound
//! ([`Server::with_max_active_jobs`], `MARQSIM_MAX_ACTIVE_JOBS` on the
//! daemon; `0` = unlimited): a `submit` arriving while the shared engine
//! already has that many unfinished jobs — across *all* connections — is
//! rejected, so a swarm of polite clients cannot overload the daemon
//! collectively. Then the **per-connection** in-flight gauge (jobs
//! submitted but not yet finished): a `submit` at or above the effective
//! bound — the smaller of the request's `options.max_in_flight` and the
//! server's default ([`Server::with_max_in_flight`],
//! `MARQSIM_SERVE_MAX_IN_FLIGHT` on the daemon); a client can tighten its
//! bound but never raise it — is rejected, so one greedy client cannot
//! queue unbounded coordinator threads either. The `stats` event reports
//! the connection's gauge alongside the engine-wide active-job count, the
//! global bound, and the pool queue depth.
//!
//! Job ids are engine-assigned and engine-unique, but the `status` and
//! `cancel` verbs only resolve ids submitted on the **same connection** —
//! one client cannot cancel another's jobs.
//!
//! Disconnect policy: when a client hangs up (or is reaped by a timeout),
//! its unfinished jobs are cancelled (cooperatively), so an interrupted
//! sweep stops consuming the pool.
//!
//! See `docs/net.md` for the reactor architecture and the connection
//! state-machine lifecycle.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use marqsim_engine::{Engine, JobControl, SolverKind, SubmitOptions};
use marqsim_net::{
    DeadlineWheel, Interest, IoStatus, LineAssembler, Listener, PollEvent, Poller, Stream,
    TimerKey, Token, WakeHandle, Wakeup,
};
use marqsim_obs::{lockcheck, metrics, trace, warn};

use crate::protocol::{failure_kind, Event, Request, Role, ServerStats, PROTOCOL_VERSION};
use crate::registry::WorkloadRegistry;

/// Maximum accepted request-line length (bytes, terminator included).
/// Bounds per-connection memory against hostile input; a sweep submit is a
/// few hundred bytes, and even thousand-term Hamiltonians stay far below
/// this.
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Once a connection tracks this many jobs, finished entries are evicted
/// from its registry before the next submit, so a long-lived connection
/// submitting in a loop stays bounded. Consequence: `status` of a job that
/// finished more than ~this many submissions ago may answer `known=false`.
const MAX_TRACKED_JOBS: usize = 1024;

/// Default per-connection in-flight job bound when neither the submit's
/// `options.max_in_flight` nor [`Server::with_max_in_flight`] overrides it.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 32;

/// Soft outbound-queue threshold (events): above it, consecutive progress
/// events of one job coalesce (newest wins) instead of queueing — a slow
/// reader still learns the latest progress, just not every step.
const OUTBOUND_COALESCE_EVENTS: usize = 64;

/// Hard outbound-queue cap in events; exceeding it is a slow-consumer
/// disconnect.
const OUTBOUND_MAX_EVENTS: usize = 8192;

/// Hard outbound-queue cap in bytes; exceeding it is a slow-consumer
/// disconnect. Generous enough for any single result payload (a 500-string
/// perturb matrix is ~6 MB) — the cap is about *accumulation*, not one
/// large event.
const OUTBOUND_MAX_BYTES: usize = 64 * 1024 * 1024;

/// How long a disconnecting connection may take to drain its final error
/// event before the socket is closed regardless.
const CLOSE_GRACE: Duration = Duration::from_secs(5);

/// Listener registration token.
const TOKEN_LISTENER: u64 = 0;
/// Wakeup-channel registration token.
const TOKEN_WAKEUP: u64 = 1;
/// Connection tokens start here: token = slot + TOKEN_CONN_BASE.
const TOKEN_CONN_BASE: u64 = 2;

/// Process-wide serve instruments in the global [`metrics`] registry,
/// resolved once. Request counters are labelled by verb so the exposition
/// separates cheap `status` polls from `submit` work.
struct ServeInstruments {
    connections: Arc<metrics::Counter>,
    bytes_read: Arc<metrics::Counter>,
    bytes_written: Arc<metrics::Counter>,
    /// Per-verb request counters, indexed like [`VERBS`].
    requests: [Arc<metrics::Counter>; VERBS.len()],
    bad_requests: Arc<metrics::Counter>,
    /// Events queued but not yet written, summed over all connections.
    outbound_queue_depth: Arc<metrics::Gauge>,
    progress_coalesced: Arc<metrics::Counter>,
    slow_disconnects: Arc<metrics::Counter>,
    idle_timeouts: Arc<metrics::Counter>,
    auth_failures: Arc<metrics::Counter>,
}

/// Verb labels for `marqsim_serve_requests_total`: submit, status, cancel,
/// stats, metrics, auth, drain.
const VERBS: [&str; 7] = [
    "submit", "status", "cancel", "stats", "metrics", "auth", "drain",
];

fn serve_instruments() -> &'static ServeInstruments {
    static INSTRUMENTS: OnceLock<ServeInstruments> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let registry = metrics::global();
        ServeInstruments {
            connections: registry.counter("marqsim_serve_connections_total"),
            bytes_read: registry.counter("marqsim_serve_bytes_read_total"),
            bytes_written: registry.counter("marqsim_serve_bytes_written_total"),
            requests: VERBS.map(|verb| {
                registry.counter_with("marqsim_serve_requests_total", &[("verb", verb)])
            }),
            bad_requests: registry.counter("marqsim_serve_bad_requests_total"),
            outbound_queue_depth: registry.gauge("marqsim_serve_outbound_queue_depth"),
            progress_coalesced: registry.counter("marqsim_serve_progress_coalesced_total"),
            slow_disconnects: registry.counter("marqsim_serve_slow_disconnects_total"),
            idle_timeouts: registry.counter("marqsim_serve_idle_timeouts_total"),
            auth_failures: registry.counter("marqsim_serve_auth_failures_total"),
        }
    })
}

/// A bound listener plus the engine it serves.
///
/// Construct with [`Server::bind`] (optionally [`with_registry`](Server::with_registry)
/// / [`with_max_in_flight`](Server::with_max_in_flight) /
/// [`with_idle_timeout`](Server::with_idle_timeout)), then either
/// [`run`](Server::run) on the current thread or [`spawn`](Server::spawn) a
/// background event loop and keep the returned [`ServerHandle`] for the
/// address and shutdown.
pub struct Server {
    engine: Arc<Engine>,
    listener: TcpListener,
    registry: Arc<WorkloadRegistry>,
    max_in_flight: usize,
    max_active_jobs: usize,
    idle_timeout: Option<Duration>,
    token: Option<String>,
    /// Jobs holding an engine-wide admission slot (reserved at submit,
    /// released when the job reaches its terminal event). A shared atomic
    /// rather than a read of the engine's gauge, so concurrent submits on
    /// different connections cannot all pass the check at once.
    global_active: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
    /// The event loop's cross-thread doorbell, created at bind time so a
    /// [`ServerHandle`] can interrupt a parked loop.
    wakeup: Wakeup,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:7878"`, or port `0` to let the OS
    /// pick) and prepares to serve `engine` with the built-in workload
    /// registry and the default admission bound.
    ///
    /// # Errors
    ///
    /// Propagates the bind (or wakeup-channel) failure.
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            engine,
            listener,
            registry: Arc::new(WorkloadRegistry::builtin()),
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            max_active_jobs: 0,
            idle_timeout: None,
            token: None,
            global_active: Arc::new(AtomicUsize::new(0)),
            shutdown: Arc::new(AtomicBool::new(false)),
            wakeup: Wakeup::new()?,
        })
    }

    /// Replaces the workload registry (e.g. the built-ins plus custom
    /// kinds).
    pub fn with_registry(mut self, registry: WorkloadRegistry) -> Self {
        self.registry = Arc::new(registry);
        self
    }

    /// Sets the per-connection in-flight job bound (a submit's
    /// `options.max_in_flight` can tighten it per request, never raise it).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// Sets the engine-wide active-job bound across **all** connections
    /// (`MARQSIM_MAX_ACTIVE_JOBS` on the daemon; `0` = unlimited). A submit
    /// arriving while the engine already has this many unfinished jobs is
    /// rejected with the structured `busy` event before any decoding work;
    /// the per-connection bound can only tighten admission further, never
    /// bypass this one.
    pub fn with_max_active_jobs(mut self, max_active_jobs: usize) -> Self {
        self.max_active_jobs = max_active_jobs;
        self
    }

    /// Requires every connection to present this shared secret via the
    /// `auth` verb before any other verb is accepted
    /// (`MARQSIM_SERVE_TOKEN` on the daemon; the daemon *refuses*
    /// non-loopback binds without one). The `hello` event advertises
    /// `auth:true`; a wrong or missing token gets a structured `error`
    /// and a close.
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }

    /// Reaps connections that send no request bytes for `timeout`
    /// (`MARQSIM_SERVE_IDLE_TIMEOUT_MS` on the daemon; unset = never).
    /// Inbound bytes are the only activity that counts — a half-open
    /// client with jobs still running *is* reaped, and its jobs are
    /// cancelled, exactly like a hang-up. The blocking [`Client`]
    /// (`crate::Client`) sends keepalive `status` polls while waiting on a
    /// long job, so well-behaved waiters survive any reasonable timeout.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = Some(timeout.max(Duration::from_millis(1)));
        self
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The workload kinds this server accepts.
    pub fn workload_kinds(&self) -> Vec<String> {
        self.registry.kinds()
    }

    /// Runs the event loop on the calling thread until shut down (via a
    /// [`ServerHandle`] from [`spawn`](Server::spawn); a plain `run` server
    /// loops until the process exits).
    ///
    /// # Errors
    ///
    /// Propagates reactor-level failures (individual connection errors are
    /// contained).
    pub fn run(self) -> std::io::Result<()> {
        let poller = Poller::new()?;
        let listener = Listener::from_std(self.listener)?;
        poller.register(&listener, Token(TOKEN_LISTENER), Interest::READABLE)?;
        poller.register(
            self.wakeup.reader(),
            Token(TOKEN_WAKEUP),
            Interest::READABLE,
        )?;
        let wake = self.wakeup.handle();
        let mut event_loop = EventLoop {
            engine: self.engine,
            registry: self.registry,
            max_in_flight: self.max_in_flight,
            max_active_jobs: self.max_active_jobs,
            idle_timeout: self.idle_timeout,
            token: self.token,
            global_active: self.global_active,
            shutdown: self.shutdown,
            poller,
            listener,
            wakeup: self.wakeup,
            wake,
            notes: Arc::new(Mutex::new(VecDeque::new())),
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            wheel: DeadlineWheel::new(),
            dirty: Vec::new(),
            read_buf: vec![0u8; 64 * 1024],
        };
        event_loop.run()
    }

    /// Moves the event loop to a background thread and returns a handle
    /// with the bound address and a shutdown switch — the shape the tests
    /// and the in-process smoke binary use.
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let engine = Arc::clone(&self.engine);
        let wake = self.wakeup.handle();
        let thread = std::thread::Builder::new()
            .name("marqsim-serve-loop".to_string())
            .spawn(move || {
                if let Err(error) = self.run() {
                    warn!("serve", "event loop failed: {error}");
                }
            })?;
        Ok(ServerHandle {
            addr,
            shutdown,
            engine,
            wake,
            thread: Some(thread),
        })
    }
}

/// Handle to a background server from [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    engine: Arc<Engine>,
    wake: WakeHandle,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine (e.g. for asserting cache stats in tests).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops the event loop and joins it. Open connections are closed and
    /// their unfinished jobs cancelled.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Identity of one connection across slot reuse: a note addressed to a
/// `(slot, generation)` that no longer matches is stale and dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConnKey {
    slot: usize,
    gen: u64,
}

/// What engine-side hook threads push for the event loop to deliver.
enum Note {
    Progress {
        conn: ConnKey,
        job: u64,
        completed: usize,
        total: usize,
    },
    /// The job's terminal event, already encoded (the encoding and the
    /// cache-delta attribution happen on the coordinator thread, keeping
    /// the event loop lean).
    Terminal { conn: ConnKey, line: String },
}

/// A held engine-wide admission slot (`None` when no global bound is
/// configured). Dropping it releases the slot, so every path out of
/// `handle_submit` — per-connection rejection, decode failure, or the
/// completion hook's terminal note — frees it exactly once.
struct GlobalSlot(Option<Arc<AtomicUsize>>);

impl Drop for GlobalSlot {
    fn drop(&mut self) {
        if let Some(counter) = self.0.take() {
            counter.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// One queued outbound line (terminator included in `line`).
struct OutLine {
    line: String,
    /// `Some(job)` for progress events — the coalescing key.
    progress_job: Option<u64>,
}

/// Why a connection is being torn down (for the trace span).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// Peer hung up or the socket died.
    Eof,
    /// Unframeable input (oversized line, invalid UTF-8).
    BadInput,
    /// The outbound queue hit its hard cap.
    SlowConsumer,
    /// No inbound bytes within the idle timeout.
    IdleTimeout,
    /// Wrong or missing shared secret on a token-protected server.
    AuthFailed,
    /// Server shutdown.
    Shutdown,
}

impl CloseReason {
    fn as_str(self) -> &'static str {
        match self {
            CloseReason::Eof => "eof",
            CloseReason::BadInput => "bad_input",
            CloseReason::SlowConsumer => "slow_consumer",
            CloseReason::IdleTimeout => "idle_timeout",
            CloseReason::AuthFailed => "auth_failed",
            CloseReason::Shutdown => "shutdown",
        }
    }
}

/// Deadline-wheel payloads: which connection, which kind of timer.
#[derive(Debug, Clone, Copy)]
enum Timer {
    /// Idle-timeout check for a slot.
    Idle(usize),
    /// Force-close for a disconnecting slot that never drained.
    ForceClose(usize),
}

/// Per-connection state machine.
struct Conn {
    stream: Stream,
    gen: u64,
    assembler: LineAssembler,
    /// Encoded events waiting for socket writability; bounded (see
    /// [`OUTBOUND_MAX_EVENTS`] / [`OUTBOUND_MAX_BYTES`]).
    outbound: VecDeque<OutLine>,
    outbound_bytes: usize,
    /// Bytes of the queue head already written (short writes happen under
    /// backpressure).
    write_offset: usize,
    interest: Interest,
    /// Jobs submitted on this connection, for status/cancel resolution.
    jobs: HashMap<u64, JobControl>,
    /// In-flight gauge: incremented at submit, decremented when the job's
    /// terminal note is processed. Event-loop-local, so no atomics.
    in_flight: usize,
    /// Per-connection request/byte counters, reported by the `metrics`
    /// verb. `bytes_in` counts request-line bytes including the line
    /// terminator.
    requests: u64,
    bytes_in: u64,
    bytes_out: u64,
    /// Last instant inbound bytes arrived (what the idle timeout watches).
    last_activity: Instant,
    idle_timer: Option<TimerKey>,
    close_timer: Option<TimerKey>,
    /// Whether the connection may use non-`auth` verbs: true from the
    /// start on an open server, true after a matching `auth` on a
    /// token-protected one.
    authed: bool,
    /// `Some(why)` while a structured disconnect is in progress: input is
    /// ignored, queued events drain, then the socket closes with `why`.
    closing: Option<CloseReason>,
    /// Marks membership in the loop's dirty list (pending flush attempt).
    dirty: bool,
    opened: Instant,
}

/// The reactor state owned by [`Server::run`]'s thread.
struct EventLoop {
    engine: Arc<Engine>,
    registry: Arc<WorkloadRegistry>,
    max_in_flight: usize,
    max_active_jobs: usize,
    idle_timeout: Option<Duration>,
    token: Option<String>,
    global_active: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
    poller: Poller,
    listener: Listener,
    wakeup: Wakeup,
    wake: WakeHandle,
    /// The engine→loop note queue; hook threads push, the loop drains.
    notes: Arc<Mutex<VecDeque<Note>>>,
    /// Connection slab; token = slot + [`TOKEN_CONN_BASE`].
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    wheel: DeadlineWheel<Timer>,
    /// Slots with queued outbound data to flush this iteration.
    dirty: Vec<usize>,
    read_buf: Vec<u8>,
}

impl EventLoop {
    fn run(&mut self) -> std::io::Result<()> {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut expired: Vec<(TimerKey, Timer)> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let timeout = self
                .wheel
                .next_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()));
            events.clear();
            self.poller.wait(&mut events, timeout)?;
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            for event in &events {
                match event.token.0 {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKEUP => self.wakeup.drain(),
                    token => {
                        let slot = (token - TOKEN_CONN_BASE) as usize;
                        if event.readable {
                            self.conn_readable(slot);
                        }
                        if event.writable {
                            self.mark_dirty(slot);
                        }
                        if event.closed && !event.readable {
                            // Pure error condition with nothing to read.
                            self.close_conn(slot, CloseReason::Eof);
                        }
                    }
                }
            }
            self.drain_notes();
            expired.clear();
            let now = Instant::now();
            self.wheel.expire(now, &mut expired);
            for (key, timer) in expired.drain(..) {
                self.timer_fired(key, timer, now);
            }
            self.flush_dirty();
        }
        // Shutdown: close every connection (cancelling its jobs).
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close_conn(slot, CloseReason::Shutdown);
            }
        }
        Ok(())
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok(Some((stream, _peer))) => self.open_conn(stream),
                Ok(None) => break,
                Err(error) => {
                    warn!("serve", "accept failed: {error}");
                    break;
                }
            }
        }
    }

    fn open_conn(&mut self, stream: std::net::TcpStream) {
        let stream = match Stream::from_std(stream) {
            Ok(stream) => stream,
            Err(error) => {
                warn!("serve", "could not prepare connection: {error}");
                return;
            }
        };
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.next_gen += 1;
        let now = Instant::now();
        let mut conn = Conn {
            stream,
            gen: self.next_gen,
            assembler: LineAssembler::new(MAX_LINE_BYTES),
            outbound: VecDeque::new(),
            outbound_bytes: 0,
            write_offset: 0,
            interest: Interest::READABLE,
            jobs: HashMap::new(),
            in_flight: 0,
            requests: 0,
            bytes_in: 0,
            bytes_out: 0,
            last_activity: now,
            idle_timer: None,
            close_timer: None,
            authed: self.token.is_none(),
            closing: None,
            dirty: false,
            opened: now,
        };
        let token = Token(slot as u64 + TOKEN_CONN_BASE);
        if let Err(error) = self.poller.register(&conn.stream, token, conn.interest) {
            // A refused registration drops the stream (the client sees a
            // clean close) but must not take the loop down.
            warn!("serve", "connection registration failed: {error}");
            self.free.push(slot);
            return;
        }
        if let Some(timeout) = self.idle_timeout {
            conn.idle_timer = Some(self.wheel.arm(now + timeout, Timer::Idle(slot)));
        }
        serve_instruments().connections.inc();
        self.conns[slot] = Some(conn);
        let hello = Event::Hello {
            protocol: PROTOCOL_VERSION,
            role: Role::Node,
            nodes: Vec::new(),
            auth: self.token.is_some(),
            threads: self.engine.threads(),
            workloads: self.registry.kinds(),
            flow_solver: self.engine.flow_solver(),
            flow_solvers: SolverKind::SELECTABLE
                .iter()
                .map(|k| k.as_str().to_string())
                .collect(),
        };
        self.push_event(slot, &hello, None);
    }

    fn mark_dirty(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            if !conn.dirty {
                conn.dirty = true;
                self.dirty.push(slot);
            }
        }
    }

    /// Drains readable bytes and processes every completed request line.
    fn conn_readable(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.closing.is_some() {
                // Input after a structured disconnect is ignored; the
                // socket only stays registered to drain and close.
                return;
            }
            let status = match conn.stream.read(&mut self.read_buf) {
                Ok(status) => status,
                Err(_) => {
                    // An I/O error is treated like EOF: drop the connection.
                    self.close_conn(slot, CloseReason::Eof);
                    return;
                }
            };
            match status {
                IoStatus::Ready(n) => {
                    conn.last_activity = Instant::now();
                    conn.assembler.push(&self.read_buf[..n]);
                    if !self.process_lines(slot) {
                        return;
                    }
                }
                IoStatus::WouldBlock => return,
                IoStatus::Closed => {
                    self.close_conn(slot, CloseReason::Eof);
                    return;
                }
            }
        }
    }

    /// Pops and handles every complete line; returns `false` when the
    /// connection was closed (framing error).
    fn process_lines(&mut self, slot: usize) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return false;
            };
            if conn.closing.is_some() {
                return true;
            }
            match conn.assembler.next_line() {
                Ok(Some(line)) => self.process_line(slot, &line),
                Ok(None) => return true,
                Err(_) => {
                    // Unframeable input (oversized line / invalid UTF-8):
                    // the stream can no longer be trusted, drop it.
                    self.close_conn(slot, CloseReason::BadInput);
                    return false;
                }
            }
        }
    }

    fn process_line(&mut self, slot: usize, line: &str) {
        let instruments = serve_instruments();
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let line_bytes = line.len() as u64 + 1;
            conn.bytes_in += line_bytes;
            instruments.bytes_read.add(line_bytes);
            if line.trim().is_empty() {
                return;
            }
            conn.requests += 1;
        }
        match Request::decode(line) {
            Ok(Request::Auth { token }) => {
                instruments.requests[5].inc();
                self.handle_auth(slot, &token);
            }
            Ok(_) if !self.conn_authed(slot) => {
                // A token-protected server accepts nothing before a
                // matching `auth` — not even `stats`.
                self.auth_reject(slot, "authentication required: send the auth verb first");
            }
            Ok(Request::Submit {
                label,
                kind,
                params,
                options,
            }) => {
                instruments.requests[0].inc();
                self.handle_submit(slot, label, kind, params, options);
            }
            Ok(Request::Status { job }) => {
                instruments.requests[1].inc();
                let event = self.status_event(slot, job);
                self.push_event(slot, &event, None);
            }
            Ok(Request::Cancel { job }) => {
                instruments.requests[2].inc();
                if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                    if let Some(control) = conn.jobs.get(&job) {
                        control.cancel();
                    }
                }
                let event = self.status_event(slot, job);
                self.push_event(slot, &event, None);
            }
            Ok(Request::Stats) => {
                instruments.requests[3].inc();
                let in_flight = self
                    .conns
                    .get(slot)
                    .and_then(Option::as_ref)
                    .map_or(0, |conn| conn.in_flight);
                let event = Event::Stats(ServerStats {
                    threads: self.engine.threads(),
                    cache: self.engine.cache().stats(),
                    active_jobs: self.engine.active_jobs(),
                    queue_depth: self.engine.queue_depth(),
                    in_flight,
                    flow_solver: self.engine.flow_solver(),
                    max_active_jobs: self.max_active_jobs,
                    per_node: Vec::new(),
                });
                self.push_event(slot, &event, None);
            }
            Ok(Request::Metrics) => {
                instruments.requests[4].inc();
                let (requests, bytes_in, bytes_out) = self
                    .conns
                    .get(slot)
                    .and_then(Option::as_ref)
                    .map_or((0, 0, 0), |conn| {
                        (conn.requests, conn.bytes_in, conn.bytes_out)
                    });
                let event = Event::Metrics {
                    exposition: metrics::global().expose(),
                    requests,
                    bytes_in,
                    bytes_out,
                };
                self.push_event(slot, &event, None);
            }
            Ok(Request::Drain { node }) => {
                instruments.requests[6].inc();
                let event = Event::Error {
                    message: format!("cannot drain '{node}': this server is a node, not a router"),
                };
                self.push_event(slot, &event, None);
            }
            Err(error) => {
                instruments.bad_requests.inc();
                let event = Event::Error {
                    message: format!("bad request: {}", error.message),
                };
                self.push_event(slot, &event, None);
            }
        }
    }

    fn status_event(&self, slot: usize, job: u64) -> Event {
        let control = self
            .conns
            .get(slot)
            .and_then(Option::as_ref)
            .and_then(|conn| conn.jobs.get(&job));
        match control {
            Some(control) => {
                let progress = control.progress();
                Event::Status {
                    job,
                    known: true,
                    finished: control.is_finished(),
                    cancelled: control.is_cancelled(),
                    completed: progress.completed,
                    total: progress.total,
                }
            }
            None => Event::Status {
                job,
                known: false,
                finished: false,
                cancelled: false,
                completed: 0,
                total: 0,
            },
        }
    }

    fn conn_authed(&self, slot: usize) -> bool {
        self.conns
            .get(slot)
            .and_then(Option::as_ref)
            .is_some_and(|conn| conn.authed)
    }

    fn handle_auth(&mut self, slot: usize, token: &str) {
        let accepted = match &self.token {
            // An open server accepts (and ignores) any token, so a client
            // configured with one works against both kinds of server.
            None => true,
            Some(expected) => constant_time_eq(expected.as_bytes(), token.as_bytes()),
        };
        if accepted {
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                conn.authed = true;
            }
            self.push_event(slot, &Event::AuthOk, None);
        } else {
            self.auth_reject(slot, "authentication failed: bad token");
        }
    }

    /// Sends a structured `error` and starts a graceful close — the
    /// auth-failure twin of the slow-consumer disconnect.
    fn auth_reject(&mut self, slot: usize, message: &str) {
        serve_instruments().auth_failures.inc();
        let event = Event::Error {
            message: message.to_string(),
        };
        self.push_event(slot, &event, None);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.closing.is_some() {
            return;
        }
        conn.closing = Some(CloseReason::AuthFailed);
        if let Some(key) = conn.idle_timer.take() {
            self.wheel.cancel(key);
        }
        let grace = Instant::now() + CLOSE_GRACE;
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.close_timer = Some(self.wheel.arm(grace, Timer::ForceClose(slot)));
        }
        self.mark_dirty(slot);
    }

    fn handle_submit(
        &mut self,
        slot: usize,
        label: String,
        kind: String,
        params: crate::wire::Json,
        options: SubmitOptions,
    ) {
        // Admission control, checked before any decoding work. Two bounds,
        // both rejected with the structured `busy` event: the engine-wide
        // active-job cap shared by every connection, then the
        // per-connection in-flight bound (which the request can only
        // *tighten*, never raise — a greedy client must not be able to
        // raise the limit it is being held to).
        //
        // The global slot is *reserved* with a compare-and-swap, not
        // checked against a gauge: N connections submitting at the same
        // instant get at most `max_active_jobs` slots between them. The
        // reservation is held by a drop guard until the job's terminal
        // event.
        let global_slot = if self.max_active_jobs > 0 {
            match self
                .global_active
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |active| {
                    (active < self.max_active_jobs).then_some(active + 1)
                }) {
                Ok(_) => GlobalSlot(Some(Arc::clone(&self.global_active))),
                Err(active) => {
                    let event = Event::Busy {
                        label,
                        in_flight: active,
                        limit: self.max_active_jobs,
                    };
                    self.push_event(slot, &event, None);
                    return;
                }
            }
        } else {
            GlobalSlot(None)
        };
        let limit = options
            .max_in_flight
            .map_or(self.max_in_flight, |requested| {
                requested.min(self.max_in_flight)
            })
            .max(1);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let currently = conn.in_flight;
        if currently >= limit {
            let event = Event::Busy {
                label,
                in_flight: currently,
                limit,
            };
            self.push_event(slot, &event, None);
            return;
        }

        let workload = match self.registry.decode(&kind, &label, &params) {
            Ok(workload) => workload,
            Err(message) => {
                let event = Event::Error { message };
                self.push_event(slot, &event, None);
                return;
            }
        };

        let key = ConnKey {
            slot,
            gen: conn.gen,
        };
        let stats_before = self.engine.cache().stats();
        let job_flow_solver = options
            .flow_solver
            .unwrap_or_else(|| self.engine.flow_solver());

        // Hooks run on the job's coordinator thread and carry the
        // engine-assigned id, so there is no submit/progress id race to
        // gate: they push a note and ring the loop's doorbell. The loop
        // only drains notes *after* the current request batch, so the wire
        // order is always submitted → progress → done.
        let progress_notes = Arc::clone(&self.notes);
        let progress_wake = self.wake.clone();
        let terminal_notes = Arc::clone(&self.notes);
        let terminal_wake = self.wake.clone();
        let engine = Arc::clone(&self.engine);
        let registry = Arc::clone(&self.registry);
        let control = self.engine.submit_with_hooks(
            workload,
            options,
            move |job, progress| {
                let note = Note::Progress {
                    conn: key,
                    job: job.0,
                    completed: progress.completed,
                    total: progress.total,
                };
                {
                    let _witness = lockcheck::acquire("serve.server.notes");
                    let mut queue = progress_notes
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    queue.push_back(note);
                }
                progress_wake.wake();
            },
            move |job, outcome| {
                // Terminal path, still on the coordinator thread: attribute
                // the cache-counter delta to this job, free the engine-wide
                // admission slot (so a client that saw `done` can
                // immediately resubmit), and encode the terminal event.
                let cache_delta = engine.cache().stats().delta_since(&stats_before);
                drop(global_slot);
                let event = match outcome {
                    Ok(output) => match registry.encode(&kind, &output) {
                        Ok(value) => Event::Done {
                            job: job.0,
                            outcome: crate::protocol::Outcome::Other { kind, value },
                            cache_delta,
                            flow_solver: job_flow_solver,
                            node: None,
                        },
                        Err(message) => Event::Failed {
                            job: job.0,
                            kind: "encode".to_string(),
                            message,
                            node: None,
                        },
                    },
                    Err(error) => Event::Failed {
                        job: job.0,
                        kind: failure_kind(&error).to_string(),
                        message: error.to_string(),
                        node: None,
                    },
                };
                let note = Note::Terminal {
                    conn: key,
                    line: encode_line(&event),
                };
                {
                    let _witness = lockcheck::acquire("serve.server.notes");
                    let mut queue = terminal_notes
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    queue.push_back(note);
                }
                terminal_wake.wake();
            },
        );

        let job_id = control.id().0;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.in_flight += 1;
        if conn.jobs.len() >= MAX_TRACKED_JOBS {
            conn.jobs.retain(|_, control| !control.is_finished());
        }
        conn.jobs.insert(job_id, control);
        let event = Event::Submitted {
            job: job_id,
            label,
            node: None,
        };
        self.push_event(slot, &event, None);
    }

    /// Delivers queued engine notes to their connections.
    fn drain_notes(&mut self) {
        let drained: Vec<Note> = {
            let _witness = lockcheck::acquire("serve.server.notes");
            let mut queue = self.notes.lock().unwrap_or_else(PoisonError::into_inner);
            queue.drain(..).collect()
        };
        for note in drained {
            match note {
                Note::Progress {
                    conn: key,
                    job,
                    completed,
                    total,
                } => {
                    if !self.conn_matches(key) {
                        continue;
                    }
                    let event = Event::Progress {
                        job,
                        completed,
                        total,
                        node: None,
                    };
                    self.push_event(key.slot, &event, Some(job));
                }
                Note::Terminal { conn: key, line } => {
                    if !self.conn_matches(key) {
                        continue;
                    }
                    if let Some(conn) = self.conns.get_mut(key.slot).and_then(Option::as_mut) {
                        conn.in_flight = conn.in_flight.saturating_sub(1);
                    }
                    self.push_line(key.slot, line, None);
                }
            }
        }
    }

    fn conn_matches(&self, key: ConnKey) -> bool {
        self.conns
            .get(key.slot)
            .and_then(Option::as_ref)
            .is_some_and(|conn| conn.gen == key.gen)
    }

    fn push_event(&mut self, slot: usize, event: &Event, progress_job: Option<u64>) {
        self.push_line(slot, encode_line(event), progress_job);
    }

    /// Queues one encoded line (terminator included) for write, enforcing
    /// the backpressure policy.
    fn push_line(&mut self, slot: usize, line: String, progress_job: Option<u64>) {
        let instruments = serve_instruments();
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.closing.is_some() {
            return;
        }
        // Progress coalescing above the soft threshold: replace the
        // youngest queued progress event of the same job instead of
        // growing the queue — a slow reader still learns the latest
        // progress, just not every step.
        if let Some(job) = progress_job {
            if conn.outbound.len() >= OUTBOUND_COALESCE_EVENTS {
                if let Some(back) = conn
                    .outbound
                    .back_mut()
                    .filter(|back| back.progress_job == Some(job))
                {
                    conn.outbound_bytes -= back.line.len();
                    conn.outbound_bytes += line.len();
                    back.line = line;
                    instruments.progress_coalesced.inc();
                    self.mark_dirty(slot);
                    return;
                }
            }
        }
        if conn.outbound.len() >= OUTBOUND_MAX_EVENTS
            || conn.outbound_bytes + line.len() > OUTBOUND_MAX_BYTES
        {
            self.slow_consumer_disconnect(slot);
            return;
        }
        conn.outbound_bytes += line.len();
        conn.outbound.push_back(OutLine { line, progress_job });
        instruments.outbound_queue_depth.add(1);
        self.mark_dirty(slot);
    }

    /// Structured disconnect for a consumer that cannot keep up: queued
    /// events are dropped (keeping a partially written head, which must
    /// finish to preserve framing), a terminal `error` event is queued,
    /// jobs are cancelled, input is ignored, and the socket closes once
    /// the error drains — or when the grace timer fires.
    fn slow_consumer_disconnect(&mut self, slot: usize) {
        let instruments = serve_instruments();
        instruments.slow_disconnects.inc();
        let error_line = encode_line(&Event::Error {
            message: format!(
                "disconnected: outbound queue overflow (slow consumer, limit {OUTBOUND_MAX_EVENTS} \
                 events / {OUTBOUND_MAX_BYTES} bytes)"
            ),
        });
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        for control in conn.jobs.values() {
            if !control.is_finished() {
                control.cancel();
            }
        }
        let keep_head = usize::from(conn.write_offset > 0);
        let dropped = conn.outbound.len().saturating_sub(keep_head);
        conn.outbound.truncate(keep_head);
        conn.outbound_bytes = conn.outbound.iter().map(|l| l.line.len()).sum();
        conn.outbound_bytes += error_line.len();
        conn.outbound.push_back(OutLine {
            line: error_line,
            progress_job: None,
        });
        instruments.outbound_queue_depth.sub(dropped as i64 - 1);
        conn.closing = Some(CloseReason::SlowConsumer);
        if let Some(key) = conn.idle_timer.take() {
            self.wheel.cancel(key);
        }
        let grace = Instant::now() + CLOSE_GRACE;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.close_timer = Some(self.wheel.arm(grace, Timer::ForceClose(slot)));
        self.mark_dirty(slot);
    }

    fn timer_fired(&mut self, key: TimerKey, timer: Timer, now: Instant) {
        match timer {
            Timer::Idle(slot) => {
                let Some(timeout) = self.idle_timeout else {
                    return;
                };
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    return;
                };
                if conn.idle_timer != Some(key) || conn.closing.is_some() {
                    return;
                }
                let deadline = conn.last_activity + timeout;
                if now < deadline {
                    // Activity since arming: push the deadline out.
                    conn.idle_timer = Some(self.wheel.arm(deadline, Timer::Idle(slot)));
                    return;
                }
                serve_instruments().idle_timeouts.inc();
                conn.idle_timer = None;
                // Reap: cancel whatever the silent client left running,
                // tell it why (best effort), drain, close.
                for control in conn.jobs.values() {
                    if !control.is_finished() {
                        control.cancel();
                    }
                }
                let message = format!(
                    "disconnected: no request for {} ms (idle timeout)",
                    timeout.as_millis()
                );
                self.push_event(slot, &Event::Error { message }, None);
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    return;
                };
                conn.closing = Some(CloseReason::IdleTimeout);
                conn.close_timer = Some(self.wheel.arm(now + CLOSE_GRACE, Timer::ForceClose(slot)));
                self.mark_dirty(slot);
            }
            Timer::ForceClose(slot) => {
                let matches = self
                    .conns
                    .get(slot)
                    .and_then(Option::as_ref)
                    .is_some_and(|conn| conn.close_timer == Some(key));
                if matches {
                    let reason = self.conns[slot]
                        .as_ref()
                        .and_then(|c| c.closing)
                        .unwrap_or(CloseReason::Eof);
                    self.close_conn(slot, reason);
                }
            }
        }
    }

    /// Attempts to flush every dirty connection's outbound queue, then
    /// fixes up poller interest (writable only while data is queued).
    fn flush_dirty(&mut self) {
        let slots: Vec<usize> = self.dirty.drain(..).collect();
        for slot in slots {
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                conn.dirty = false;
            } else {
                continue;
            }
            self.flush_conn(slot);
        }
    }

    fn flush_conn(&mut self, slot: usize) {
        let instruments = serve_instruments();
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let Some(front) = conn.outbound.front() else {
                // Drained. A closing connection is done for good.
                if let Some(reason) = conn.closing {
                    self.close_conn(slot, reason);
                    return;
                }
                self.update_interest(slot, false);
                return;
            };
            let bytes = front.line.as_bytes();
            let offset = conn.write_offset;
            match conn.stream.write(&bytes[offset..]) {
                Ok(IoStatus::Ready(n)) => {
                    conn.write_offset += n;
                    if conn.write_offset == bytes.len() {
                        conn.write_offset = 0;
                        if let Some(line) = conn.outbound.pop_front() {
                            conn.outbound_bytes -= line.line.len();
                            conn.bytes_out += line.line.len() as u64;
                            instruments.bytes_written.add(line.line.len() as u64);
                            instruments.outbound_queue_depth.sub(1);
                        }
                    }
                }
                Ok(IoStatus::WouldBlock) => {
                    self.update_interest(slot, true);
                    return;
                }
                Ok(IoStatus::Closed) | Err(_) => {
                    self.close_conn(slot, CloseReason::Eof);
                    return;
                }
            }
        }
    }

    /// Reconciles the poller registration with what the connection needs
    /// now: readable unless closing, writable only while data is queued.
    fn update_interest(&mut self, slot: usize, writable: bool) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let desired = Interest {
            readable: conn.closing.is_none(),
            writable,
        };
        if desired == conn.interest {
            return;
        }
        let token = Token(slot as u64 + TOKEN_CONN_BASE);
        if self.poller.reregister(&conn.stream, token, desired).is_ok() {
            conn.interest = desired;
        }
    }

    /// Tears one connection down: cancels its unfinished jobs, releases
    /// its timers and registration, emits the connection-lifetime trace
    /// span, and frees the slot.
    fn close_conn(&mut self, slot: usize, reason: CloseReason) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        // Client is gone (or being evicted): cancel whatever it left
        // running so an interrupted sweep stops consuming the pool.
        for control in conn.jobs.values() {
            if !control.is_finished() {
                control.cancel();
            }
        }
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        if let Some(key) = conn.idle_timer {
            self.wheel.cancel(key);
        }
        if let Some(key) = conn.close_timer {
            self.wheel.cancel(key);
        }
        self.poller.deregister(&conn.stream);
        serve_instruments()
            .outbound_queue_depth
            .sub(conn.outbound.len() as i64);
        let dur_us = conn.opened.elapsed().as_micros() as u64;
        trace::emit_interval(
            "conn",
            None,
            conn.opened,
            dur_us,
            &[
                ("reason", reason.as_str().to_string()),
                ("requests", conn.requests.to_string()),
                ("bytes_in", conn.bytes_in.to_string()),
                ("bytes_out", conn.bytes_out.to_string()),
            ],
        );
        self.free.push(slot);
    }
}

/// Compares two byte strings without early exit, so a token mismatch
/// leaks no position information through response timing.
pub(crate) fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().min(b.len()) {
        diff |= usize::from(a[i] ^ b[i]);
    }
    diff == 0
}

/// Encodes one event as its wire line, terminator included.
pub(crate) fn encode_line(event: &Event) -> String {
    let mut line = event.encode();
    line.push('\n');
    line
}
