//! The TCP server: concurrent client connections over one shared engine.
//!
//! Each accepted connection gets a **reader/writer thread pair**:
//!
//! * the reader thread parses one [`Request`] per line and acts on it —
//!   `submit` goes straight to [`Engine::submit`], `status`/`cancel` hit
//!   the connection's job registry, `stats` snapshots the shared cache;
//! * the writer thread owns the socket's write half and drains an mpsc
//!   channel of encoded [`Event`] lines, so progress callbacks (which fire
//!   on engine coordinator threads) and request acknowledgements (reader
//!   thread) can both emit events without sharing the socket.
//!
//! All connections share one [`Engine`] — and therefore one worker pool and
//! one transition cache. Two clients sweeping the same Hamiltonian share
//! the min-cost-flow solve exactly as two jobs of one in-process batch
//! would; the `cache_delta` field of each `done` event makes that visible
//! per job (a warm-cache job reports `flow_solves=0`).
//!
//! Job ids are engine-assigned and engine-unique, but the `status` and
//! `cancel` verbs only resolve ids submitted on the **same connection** —
//! one client cannot cancel another's jobs.
//!
//! Disconnect policy: when a client hangs up, its unfinished jobs are
//! cancelled (cooperatively), so an interrupted sweep stops consuming the
//! pool.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use marqsim_engine::{
    CompileRequest, Engine, EngineJob, JobControl, JobOutcome, Progress, SweepRequest,
};
use marqsim_pauli::Hamiltonian;

use crate::protocol::{
    failure_kind, CompileSummary, Event, Outcome, Request, SubmitJob, PROTOCOL_VERSION,
};

/// Maximum accepted request-line length (bytes). Bounds per-connection
/// memory against hostile input; a sweep submit is a few hundred bytes, and
/// even thousand-term Hamiltonians stay far below this.
const MAX_LINE_BYTES: u64 = 8 * 1024 * 1024;

/// Once a connection tracks this many jobs, finished entries are evicted
/// from its registry before the next submit, so a long-lived connection
/// submitting in a loop stays bounded. Consequence: `status` of a job that
/// finished more than ~this many submissions ago may answer `known=false`.
const MAX_TRACKED_JOBS: usize = 1024;

/// A bound listener plus the engine it serves.
///
/// Construct with [`Server::bind`], then either [`run`](Server::run) on the
/// current thread or [`spawn`](Server::spawn) a background accept loop and
/// keep the returned [`ServerHandle`] for the address and shutdown.
pub struct Server {
    engine: Arc<Engine>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:7878"`, or port `0` to let the OS
    /// pick) and prepares to serve `engine`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            engine,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Runs the accept loop on the calling thread until shut down (via a
    /// [`ServerHandle`] from [`spawn`](Server::spawn); a plain `run` server
    /// loops until the process exits). Each connection is handled on its
    /// own thread pair.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures (individual connection errors are
    /// contained).
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let engine = Arc::clone(&self.engine);
                    std::thread::Builder::new()
                        .name("marqsim-serve-conn".to_string())
                        .spawn(move || handle_connection(engine, stream))
                        .expect("spawn connection handler");
                }
                Err(error) => {
                    eprintln!("marqsim-served: accept failed: {error}");
                }
            }
        }
        Ok(())
    }

    /// Moves the accept loop to a background thread and returns a handle
    /// with the bound address and a shutdown switch — the shape the tests
    /// and the in-process smoke binary use.
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let engine = Arc::clone(&self.engine);
        let thread = std::thread::Builder::new()
            .name("marqsim-serve-accept".to_string())
            .spawn(move || {
                let _ = self.run();
            })
            .expect("spawn accept loop");
        Ok(ServerHandle {
            addr,
            shutdown,
            engine,
            thread: Some(thread),
        })
    }
}

/// Handle to a background server from [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    engine: Arc<Engine>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine (e.g. for asserting cache stats in tests).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops accepting new connections and joins the accept loop. Existing
    /// connections drain on their own threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Reads one `\n`-terminated line with a length bound. Returns `None` on a
/// clean EOF and an error for oversized lines.
fn read_bounded_line<R: BufRead>(reader: &mut R) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let read = reader.take(MAX_LINE_BYTES).read_line(&mut line)?;
    if read == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') && read as u64 == MAX_LINE_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line exceeds the size limit",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn send_event(out: &Sender<String>, event: &Event) {
    // A failed send only means the writer (and therefore the client) is
    // gone; the reader loop notices on its next read.
    let _ = out.send(event.encode());
}

fn handle_connection(engine: Arc<Engine>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (out_tx, out_rx) = channel::<String>();

    // Writer thread: sole owner of the socket's write half. Exits when
    // every sender is gone (reader done, all job waiters done) or the
    // socket dies.
    let writer = std::thread::Builder::new()
        .name("marqsim-serve-write".to_string())
        .spawn(move || {
            let mut writer = BufWriter::new(write_half);
            for line in out_rx {
                if writer
                    .write_all(line.as_bytes())
                    .and_then(|_| writer.write_all(b"\n"))
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
        })
        .expect("spawn connection writer");

    send_event(
        &out_tx,
        &Event::Hello {
            protocol: PROTOCOL_VERSION,
            threads: engine.threads(),
        },
    );

    // Jobs submitted on this connection, for status/cancel resolution.
    let mut jobs: HashMap<u64, JobControl> = HashMap::new();
    let mut reader = BufReader::new(stream);
    // An I/O error is treated like EOF: drop the connection.
    while let Ok(Some(line)) = read_bounded_line(&mut reader) {
        if line.trim().is_empty() {
            continue;
        }
        match Request::decode(&line) {
            Ok(Request::Submit { label, job }) => {
                handle_submit(&engine, &out_tx, &mut jobs, label, job);
            }
            Ok(Request::Status { job }) => {
                send_event(&out_tx, &status_event(&jobs, job));
            }
            Ok(Request::Cancel { job }) => {
                if let Some(control) = jobs.get(&job) {
                    control.cancel();
                }
                send_event(&out_tx, &status_event(&jobs, job));
            }
            Ok(Request::Stats) => {
                send_event(
                    &out_tx,
                    &Event::Stats {
                        threads: engine.threads(),
                        cache: engine.cache().stats(),
                    },
                );
            }
            Err(error) => {
                send_event(
                    &out_tx,
                    &Event::Error {
                        message: format!("bad request: {}", error.message),
                    },
                );
            }
        }
    }

    // Client hung up: cancel whatever it left running.
    for control in jobs.values() {
        if !control.is_finished() {
            control.cancel();
        }
    }
    drop(out_tx);
    let _ = writer.join();
}

fn status_event(jobs: &HashMap<u64, JobControl>, job: u64) -> Event {
    match jobs.get(&job) {
        Some(control) => {
            let progress = control.progress();
            Event::Status {
                job,
                known: true,
                finished: control.is_finished(),
                cancelled: control.is_cancelled(),
                completed: progress.completed,
                total: progress.total,
            }
        }
        None => Event::Status {
            job,
            known: false,
            finished: false,
            cancelled: false,
            completed: 0,
            total: 0,
        },
    }
}

fn handle_submit(
    engine: &Arc<Engine>,
    out_tx: &Sender<String>,
    jobs: &mut HashMap<u64, JobControl>,
    label: String,
    job: SubmitJob,
) {
    let engine_job = match build_engine_job(&label, job) {
        Ok(job) => job,
        Err(message) => {
            send_event(out_tx, &Event::Error { message });
            return;
        }
    };

    let stats_before = engine.cache().stats();

    // The progress callback fires on the job's coordinator thread, which
    // races this thread's learning of the job id from `submit` — but every
    // progress event needs the id. Events that arrive before the id is
    // known are buffered and flushed (in order) the moment it is set, so
    // none are dropped or mislabeled.
    struct ProgressGate {
        job: Option<u64>,
        buffered: Vec<Progress>,
    }
    let gate = Arc::new(Mutex::new(ProgressGate {
        job: None,
        buffered: Vec::new(),
    }));
    let progress_out = out_tx.clone();
    let progress_gate = Arc::clone(&gate);
    let handle = engine.submit_with_progress(engine_job, move |progress| {
        let mut gate = progress_gate.lock().unwrap_or_else(PoisonError::into_inner);
        match gate.job {
            Some(job) => {
                let _ = progress_out.send(
                    Event::Progress {
                        job,
                        completed: progress.completed,
                        total: progress.total,
                    }
                    .encode(),
                );
            }
            None => gate.buffered.push(progress),
        }
    });
    let job_id = handle.id().0;
    if jobs.len() >= MAX_TRACKED_JOBS {
        jobs.retain(|_, control| !control.is_finished());
    }
    jobs.insert(job_id, handle.control());

    send_event(out_tx, &Event::Submitted { job: job_id, label });

    // Open the gate only after the submitted ack is on the writer queue,
    // so the wire order is always submitted → progress → done.
    {
        let mut gate = gate.lock().unwrap_or_else(PoisonError::into_inner);
        gate.job = Some(job_id);
        for progress in gate.buffered.drain(..) {
            let _ = out_tx.send(
                Event::Progress {
                    job: job_id,
                    completed: progress.completed,
                    total: progress.total,
                }
                .encode(),
            );
        }
    }

    // Waiter thread: blocks on the outcome, attributes the cache-counter
    // delta to this job, and emits the terminal event.
    let waiter_out = out_tx.clone();
    let waiter_engine = Arc::clone(engine);
    std::thread::Builder::new()
        .name(format!("marqsim-serve-job-{job_id}"))
        .spawn(move || {
            let outcome = handle.collect();
            let cache_delta = waiter_engine.cache().stats().delta_since(&stats_before);
            let event = match outcome {
                Ok(JobOutcome::Swept(sweep)) => Event::Done {
                    job: job_id,
                    outcome: Outcome::Sweep(sweep),
                    cache_delta,
                },
                Ok(JobOutcome::Compiled(compiled)) => Event::Done {
                    job: job_id,
                    outcome: Outcome::Compile(CompileSummary {
                        num_samples: compiled.result.num_samples,
                        lambda: compiled.result.lambda,
                        stats: compiled.result.stats,
                        fidelity: compiled.fidelity,
                    }),
                    cache_delta,
                },
                Err(error) => Event::Failed {
                    job: job_id,
                    kind: failure_kind(&error).to_string(),
                    message: error.to_string(),
                },
            };
            let _ = waiter_out.send(event.encode());
        })
        .expect("spawn job waiter");
}

fn build_engine_job(label: &str, job: SubmitJob) -> Result<EngineJob, String> {
    match job {
        SubmitJob::Sweep {
            hamiltonian,
            strategy,
            config,
        } => {
            let ham = Hamiltonian::parse(&hamiltonian)
                .map_err(|e| format!("invalid hamiltonian: {e}"))?;
            Ok(EngineJob::Sweep(SweepRequest::new(
                label, ham, strategy, config,
            )))
        }
        SubmitJob::Compile {
            hamiltonian,
            strategy,
            time,
            epsilon,
            seed,
            evaluate_fidelity,
        } => {
            let ham = Hamiltonian::parse(&hamiltonian)
                .map_err(|e| format!("invalid hamiltonian: {e}"))?;
            let config = marqsim_core::CompilerConfig::new(time, epsilon)
                .with_strategy(strategy)
                .with_seed(seed)
                .without_circuit();
            let mut request = CompileRequest::new(label, ham, config);
            if evaluate_fidelity {
                request = request.with_fidelity();
            }
            Ok(EngineJob::Compile(request))
        }
    }
}
