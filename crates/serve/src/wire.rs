//! The wire format: a hand-rolled, dependency-free JSON codec.
//!
//! The serve protocol is line-delimited JSON — one complete JSON object per
//! `\n`-terminated line in each direction. The build environment has no
//! registry access, so this module implements the subset of JSON the
//! protocol needs from scratch rather than pulling in `serde`:
//!
//! * [`Json`] — a JSON value tree. Integers that fit `u64` are kept exact
//!   ([`Json::UInt`]) so 64-bit seeds and job ids survive the round trip
//!   bit-for-bit; all other numbers are `f64` ([`Json::Num`]), encoded with
//!   Rust's shortest-round-trip float formatting, so finite `f64` values
//!   also survive exactly.
//! * [`Json::parse`] — a recursive-descent parser with a nesting-depth
//!   limit (this codec faces untrusted network input).
//! * [`Json::encode`] — the inverse; never emits a raw newline, so one
//!   encoded value is always one wire line.
//!
//! Non-finite floats have no JSON spelling and encode as `null`; the
//! protocol layer only ever transports finite numbers (optional fields use
//! `null` explicitly).
//!
//! Object keys keep insertion order (a `Vec` of pairs, linear lookup):
//! protocol messages have a handful of fields, and deterministic field
//! order makes the wire format diffable in tests and logs.

use std::fmt;

/// Maximum nesting depth accepted by the parser. Protocol messages nest 4–5
/// levels; the limit only exists to bound stack use on hostile input.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse or shape error, with the byte offset for parse failures.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where parsing failed (0 for shape
    /// errors raised after parsing).
    pub offset: usize,
}

impl WireError {
    pub(crate) fn shape(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for WireError {}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs in order.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object (`None` for missing fields and
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an exact `u64` (a float qualifies only when it is
    /// integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            // `u64::MAX as f64` rounds *up* to 2^64, so the bound must be
            // strict — `<=` would admit 2^64 and saturate it to u64::MAX.
            Json::Num(x) if x >= 0.0 && x < u64::MAX as f64 && x.fract() == 0.0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as a `usize` (via [`Self::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as an `f64` (exact integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(n) => Some(n as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Encodes the value as compact JSON. The output never contains a raw
    /// newline, so one value is one line of the wire protocol.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => {
                out.push_str(&n.to_string());
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's float Display is the shortest representation
                    // that round-trips exactly, which is what keeps sweep
                    // results bit-identical across the wire.
                    let formatted = x.to_string();
                    out.push_str(&formatted);
                    if !formatted.contains(['.', 'e', 'E']) {
                        // Keep a float a float ("5" would re-parse as UInt).
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value; trailing non-whitespace input is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] with the byte offset of the failure.
    pub fn parse(input: &str) -> Result<Json, WireError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> WireError {
        WireError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one shot.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and the run ends
                // on an ASCII boundary byte, so the slice is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8 run"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("raw control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), WireError> {
        let c = self.peek().ok_or_else(|| self.error("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.error("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.error("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let low = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.error("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&unit) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    char::from_u32(unit).ok_or_else(|| self.error("invalid \\u escape"))?
                };
                out.push(c);
            }
            other => return Err(self.error(format!("unknown escape '\\{}'", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.error("truncated \\u"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number literal '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: Json) -> Json {
        Json::parse(&value.encode()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for value in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Str(String::new()),
            Json::Str("plain".to_string()),
        ] {
            assert_eq!(round_trip(value.clone()), value);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [
            0.1,
            -0.1,
            1.0 / 3.0,
            5.0,
            1e-300,
            6.02214076e23,
            f64::MIN_POSITIVE,
            f64::MAX,
            0.030000000000000002,
        ] {
            let encoded = Json::Num(x).encode();
            let back = Json::parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {encoded}");
        }
    }

    #[test]
    fn integral_floats_stay_floats_on_the_wire() {
        assert_eq!(Json::Num(5.0).encode(), "5.0");
        assert_eq!(Json::parse("5.0").unwrap(), Json::Num(5.0));
        assert_eq!(Json::parse("5").unwrap(), Json::UInt(5));
        // Either spelling satisfies the numeric accessors.
        assert_eq!(Json::parse("5").unwrap().as_f64(), Some(5.0));
        assert_eq!(Json::parse("5.0").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let encoded = Json::UInt(seed).encode();
        assert_eq!(Json::parse(&encoded).unwrap().as_u64(), Some(seed));
        // Above 2^53 an f64 path would corrupt the value; UInt must not.
        let big = (1u64 << 53) + 1;
        assert_eq!(
            Json::parse(&Json::UInt(big).encode()).unwrap().as_u64(),
            Some(big)
        );
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "line1\nline2\ttab \"quoted\" back\\slash \u{0007} héllo 日本 🚀";
        let encoded = encode_string_standalone(tricky);
        assert!(!encoded.contains('\n'), "no raw newline on the wire");
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(tricky));
    }

    fn encode_string_standalone(s: &str) -> String {
        Json::Str(s.to_string()).encode()
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\u65e5\"").unwrap().as_str(),
            Some("Aé日")
        );
        // Surrogate pair for 🚀 (U+1F680).
        assert_eq!(
            Json::parse("\"\\ud83d\\ude80\"").unwrap().as_str(),
            Some("🚀")
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "unpaired surrogate");
        assert!(Json::parse("\"\\ude80\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn nested_structures_round_trip_in_order() {
        let value = Json::obj([
            ("verb", Json::from("submit")),
            (
                "config",
                Json::obj([
                    ("epsilons", Json::Arr(vec![0.1.into(), 0.05.into()])),
                    ("repeats", Json::from(3u64)),
                    ("fidelity", Json::Bool(false)),
                    ("note", Json::Null),
                ]),
            ),
        ]);
        let encoded = value.encode();
        assert_eq!(Json::parse(&encoded).unwrap(), value);
        assert!(
            encoded.starts_with(r#"{"verb":"submit","config":"#),
            "field order is preserved: {encoded}"
        );
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = Json::parse(r#"{"a": }"#).unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1, 2,,]").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn accessors_reject_wrong_shapes() {
        let obj = Json::obj([("n", Json::UInt(3))]);
        assert_eq!(obj.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(obj.as_str(), None);
        assert_eq!(Json::Str("x".into()).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None, "non-integral float");
        assert_eq!(Json::Num(-1.0).as_u64(), None, "negative float");
        // 2^64 is exactly `u64::MAX as f64`; it must be rejected, not
        // saturated to u64::MAX.
        assert_eq!(Json::Num(18446744073709551616.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None, "far out of range");
        // The largest f64 below 2^64 still converts.
        assert_eq!(
            Json::Num(18446744073709549568.0).as_u64(),
            Some(18446744073709549568)
        );
        assert_eq!(Json::UInt(7).as_f64(), Some(7.0));
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2.5 ] , \"b\" : null } ").unwrap();
        assert_eq!(parsed.get("a").and_then(Json::as_arr).unwrap().len(), 2);
        assert!(parsed.get("b").unwrap().is_null());
    }
}
