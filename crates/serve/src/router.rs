//! Router mode: one front-end event loop over a fleet of node daemons.
//!
//! A [`Router`] binds the same line-delimited JSON protocol as a
//! [`Server`](crate::Server), but runs no engine of its own. It holds one
//! upstream client connection per fleet node plus every downstream client
//! connection in a single-threaded reactor (the same `marqsim-net`
//! poller/wheel machinery as the node server), and:
//!
//! * **routes** every `submit` to the node owning the workload's
//!   Hamiltonian fingerprint on a consistent-hash ring
//!   ([`marqsim_cluster::HashRing`]) — the same Hamiltonian always lands
//!   on the same node, so each node's transition cache (and its
//!   `MARQSIM_CACHE_DIR` shard) stays hot for its share of the keyspace;
//! * **relays** `submitted` / `progress` / `done` / `failed` back to the
//!   submitting connection with job ids translated from the node's id
//!   space into the router's own, each event tagged with the `node` that
//!   ran it;
//! * **fans out** `stats` to every node and aggregates the answers into
//!   one fleet view with a per-node breakdown (`per_node`), zeroed
//!   entries marking unreachable nodes;
//! * **probes** node health on the [`Membership`] schedule (timeout,
//!   exponential backoff, deterministic jitter) and, when a node dies,
//!   fails its in-flight jobs with the structured `failed` kind
//!   `node_lost` while the rest of the fleet keeps serving;
//! * **drains** gracefully: the `drain` verb stops routing new work to a
//!   node, lets its in-flight jobs finish, then drops it from the fleet.
//!
//! Two deliberate semantic differences from a plain node, documented in
//! `docs/cluster.md`: the router acks `submit` with `submitted`
//! *immediately* (before the node's own ack, so acks stay in request
//! order even when jobs fan out to different nodes), and a node-side
//! admission rejection therefore surfaces as `failed` with kind `busy`
//! rather than as a `busy` event.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use marqsim_cluster::{instruments as cluster_instruments, HashRing, Health, Membership};
use marqsim_engine::SolverKind;
use marqsim_net::{
    ConnectStatus, DeadlineWheel, Interest, IoStatus, LineAssembler, Listener, PollEvent, Poller,
    Stream, TimerKey, Token, WakeHandle, Wakeup,
};
use marqsim_obs::{metrics, trace, warn};
use marqsim_pauli::Hamiltonian;

use crate::protocol::{Event, NodeStats, Request, Role, ServerStats, PROTOCOL_VERSION};
use crate::server::{constant_time_eq, encode_line};
use crate::wire::Json;

/// Maximum accepted request-line length on downstream connections (same
/// bound as the node server).
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Hard outbound-queue caps per downstream connection; exceeding either is
/// a slow-consumer disconnect (same policy as the node server).
const OUTBOUND_MAX_EVENTS: usize = 8192;
const OUTBOUND_MAX_BYTES: usize = 64 * 1024 * 1024;

/// How long a disconnecting downstream connection may take to drain its
/// final error event.
const CLOSE_GRACE: Duration = Duration::from_secs(5);

/// Upstream handshake deadline: connect + hello (+ auth) must complete
/// within this or the attempt counts as a probe failure.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a health probe (a `stats` request on a live connection) may
/// stay unanswered before the node counts as failed.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKEUP: u64 = 1;
/// Connection tokens interleave: downstream slot `s` → `BASE + 2s`,
/// upstream node index `n` → `BASE + 2n + 1`.
const TOKEN_CONN_BASE: u64 = 2;

/// A bound router front-end over a fixed fleet of node addresses.
///
/// Construct with [`Router::bind`], optionally
/// [`with_token`](Router::with_token), then [`run`](Router::run) or
/// [`spawn`](Router::spawn).
pub struct Router {
    listener: TcpListener,
    nodes: Vec<String>,
    token: Option<String>,
    shutdown: Arc<AtomicBool>,
    wakeup: Wakeup,
}

impl Router {
    /// Binds `addr` and prepares to route across `nodes` (each a
    /// `host:port` of a `marqsim-served` node daemon).
    ///
    /// # Errors
    ///
    /// Propagates the bind (or wakeup-channel) failure; rejects an empty
    /// node list.
    pub fn bind(addr: &str, nodes: &[String]) -> std::io::Result<Router> {
        if nodes.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one fleet node",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Router {
            listener,
            nodes: nodes.to_vec(),
            token: None,
            shutdown: Arc::new(AtomicBool::new(false)),
            wakeup: Wakeup::new()?,
        })
    }

    /// Requires downstream clients to present this shared secret, and
    /// presents it to the fleet nodes in the upstream handshake — one
    /// `MARQSIM_SERVE_TOKEN` secures the whole fleet.
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The configured fleet node names.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Runs the router event loop on the calling thread until shut down.
    ///
    /// # Errors
    ///
    /// Propagates reactor-level failures (individual connection errors are
    /// contained).
    pub fn run(self) -> std::io::Result<()> {
        let poller = Poller::new()?;
        let listener = Listener::from_std(self.listener)?;
        poller.register(&listener, Token(TOKEN_LISTENER), Interest::READABLE)?;
        poller.register(
            self.wakeup.reader(),
            Token(TOKEN_WAKEUP),
            Interest::READABLE,
        )?;
        let now = Instant::now();
        let mut membership = Membership::default();
        let nodes = self
            .nodes
            .iter()
            .map(|name| {
                membership.insert(name, now);
                NodeConn::new(name.clone())
            })
            .collect();
        let mut event_loop = RouterLoop {
            token: self.token,
            shutdown: self.shutdown,
            poller,
            listener,
            wakeup: self.wakeup,
            nodes,
            ring: HashRing::default(),
            membership,
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            jobs: HashMap::new(),
            next_job: 1,
            pending_stats: HashMap::new(),
            next_stats: 1,
            wheel: DeadlineWheel::new(),
            dirty_down: Vec::new(),
            dirty_nodes: Vec::new(),
            read_buf: vec![0u8; 64 * 1024],
            workloads: crate::registry::WorkloadRegistry::builtin().kinds(),
        };
        event_loop.run()
    }

    /// Moves the event loop to a background thread and returns a handle
    /// with the bound address and a shutdown switch.
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn spawn(self) -> std::io::Result<RouterHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let wake = self.wakeup.handle();
        let thread = std::thread::Builder::new()
            .name("marqsim-route-loop".to_string())
            .spawn(move || {
                if let Err(error) = self.run() {
                    warn!("route", "router event loop failed: {error}");
                }
            })?;
        Ok(RouterHandle {
            addr,
            shutdown,
            wake,
            thread: Some(thread),
        })
    }
}

/// Handle to a background router from [`Router::spawn`].
pub struct RouterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wake: WakeHandle,
    thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address downstream clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the event loop and joins it.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Identity of one downstream connection across slot reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConnKey {
    slot: usize,
    gen: u64,
}

/// One routed job, keyed by the router-assigned id downstream sees.
struct RouteEntry {
    down: ConnKey,
    node: usize,
    /// The node's own id for this job, learned from its `submitted` ack.
    node_job: Option<u64>,
    /// A cancel arrived before the node's ack; forward it once the node
    /// id is known.
    cancel_requested: bool,
    started: Instant,
}

/// Who is waiting for the next `status` event from a node (status and
/// cancel requests are answered in request order, so a FIFO correlates).
enum StatusWaiter {
    /// A downstream status/cancel: relay with the router's job id.
    Client { down: ConnKey, job: u64 },
    /// A cancel the router sent on its own behalf (downstream gone);
    /// swallow the answer.
    Discard,
}

/// Who is waiting for the next `stats` event from a node.
enum StatsWaiter {
    /// Part of a fan-out aggregation (key into `pending_stats`).
    Client(u64),
    /// A health probe; the answer is recorded, not relayed.
    Probe,
}

/// One in-progress `stats` fan-out.
struct PendingStats {
    down: ConnKey,
    remaining: usize,
    parts: Vec<NodeStats>,
}

/// Upstream connection lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No socket; reconnect when the membership schedule says so.
    Idle,
    /// Nonblocking connect in flight (waiting for writability).
    Connecting,
    /// Connected; waiting for the node's `hello`.
    AwaitHello,
    /// Sent `auth`; waiting for `auth_ok`.
    AwaitAuthOk,
    /// Handshake done; jobs route here.
    Ready,
}

/// Per-fleet-node upstream state.
struct NodeConn {
    name: String,
    stream: Option<Stream>,
    phase: Phase,
    assembler: LineAssembler,
    outbound: VecDeque<String>,
    write_offset: usize,
    interest: Interest,
    /// Router job ids whose `submitted`/`busy`/`error` ack is pending, in
    /// send order.
    awaiting_submit: VecDeque<u64>,
    awaiting_status: VecDeque<StatusWaiter>,
    awaiting_stats: VecDeque<StatsWaiter>,
    /// node job id → router job id, for relaying progress/terminals.
    jobs: HashMap<u64, u64>,
    /// Handshake or probe deadline.
    op_timer: Option<TimerKey>,
    /// Drained and dropped; never reconnected.
    retired: bool,
    dirty: bool,
    routed: Arc<metrics::Counter>,
    up_gauge: Arc<metrics::Gauge>,
}

impl NodeConn {
    fn new(name: String) -> NodeConn {
        let routed = cluster_instruments::routed(&name);
        let up_gauge = cluster_instruments::node_up(&name);
        up_gauge.set(0);
        NodeConn {
            name,
            stream: None,
            phase: Phase::Idle,
            assembler: LineAssembler::new(usize::MAX),
            outbound: VecDeque::new(),
            write_offset: 0,
            interest: Interest::READABLE,
            awaiting_submit: VecDeque::new(),
            awaiting_status: VecDeque::new(),
            awaiting_stats: VecDeque::new(),
            jobs: HashMap::new(),
            op_timer: None,
            retired: false,
            dirty: false,
            routed,
            up_gauge,
        }
    }
}

/// Why a downstream connection is being torn down (for the trace span).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    Eof,
    BadInput,
    SlowConsumer,
    AuthFailed,
    Shutdown,
}

impl CloseReason {
    fn as_str(self) -> &'static str {
        match self {
            CloseReason::Eof => "eof",
            CloseReason::BadInput => "bad_input",
            CloseReason::SlowConsumer => "slow_consumer",
            CloseReason::AuthFailed => "auth_failed",
            CloseReason::Shutdown => "shutdown",
        }
    }
}

/// Deadline-wheel payloads.
#[derive(Debug, Clone, Copy)]
enum Timer {
    /// Force-close for a disconnecting downstream slot.
    ForceClose(usize),
    /// Handshake/probe deadline for an upstream node.
    NodeDeadline(usize),
}

/// Per-downstream-connection state.
struct DownConn {
    stream: Stream,
    gen: u64,
    assembler: LineAssembler,
    outbound: VecDeque<String>,
    outbound_bytes: usize,
    write_offset: usize,
    interest: Interest,
    authed: bool,
    closing: Option<CloseReason>,
    close_timer: Option<TimerKey>,
    requests: u64,
    bytes_in: u64,
    bytes_out: u64,
    dirty: bool,
    opened: Instant,
}

fn probe_failures_counter() -> &'static Arc<metrics::Counter> {
    static COUNTER: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    COUNTER.get_or_init(cluster_instruments::probe_failures)
}

fn drains_counter() -> &'static Arc<metrics::Counter> {
    static COUNTER: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    COUNTER.get_or_init(cluster_instruments::drains)
}

/// The reactor state owned by [`Router::run`]'s thread.
struct RouterLoop {
    token: Option<String>,
    shutdown: Arc<AtomicBool>,
    poller: Poller,
    listener: Listener,
    wakeup: Wakeup,
    nodes: Vec<NodeConn>,
    /// Connected, routable nodes only — a dead node leaves the ring (and
    /// its keys spill to neighbours) until its connection is back.
    ring: HashRing,
    membership: Membership,
    conns: Vec<Option<DownConn>>,
    free: Vec<usize>,
    next_gen: u64,
    /// router job id → route, for status/cancel and relay bookkeeping.
    jobs: HashMap<u64, RouteEntry>,
    next_job: u64,
    pending_stats: HashMap<u64, PendingStats>,
    next_stats: u64,
    wheel: DeadlineWheel<Timer>,
    dirty_down: Vec<usize>,
    dirty_nodes: Vec<usize>,
    read_buf: Vec<u8>,
    /// Workload kinds advertised in the router's `hello` (the builtin
    /// registry — the nodes decode; the router forwards params untouched).
    workloads: Vec<String>,
}

impl RouterLoop {
    fn run(&mut self) -> std::io::Result<()> {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut expired: Vec<(TimerKey, Timer)> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let deadline = match (self.wheel.next_deadline(), self.membership.next_deadline()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let timeout = deadline.map(|at| at.saturating_duration_since(Instant::now()));
            events.clear();
            self.poller.wait(&mut events, timeout)?;
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            for event in &events {
                match event.token.0 {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKEUP => self.wakeup.drain(),
                    token => {
                        let index = ((token - TOKEN_CONN_BASE) / 2) as usize;
                        if (token - TOKEN_CONN_BASE).is_multiple_of(2) {
                            self.down_event(index, event);
                        } else {
                            self.node_event(index, event);
                        }
                    }
                }
            }
            let now = Instant::now();
            for name in self.membership.due_probes(now) {
                self.probe_due(&name, now);
            }
            expired.clear();
            self.wheel.expire(Instant::now(), &mut expired);
            for (key, timer) in expired.drain(..) {
                self.timer_fired(key, timer);
            }
            self.flush_dirty();
        }
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close_down(slot, CloseReason::Shutdown);
            }
        }
        for index in 0..self.nodes.len() {
            self.disconnect_node(index);
        }
        Ok(())
    }

    // -- downstream ---------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok(Some((stream, _peer))) => self.open_down(stream),
                Ok(None) => break,
                Err(error) => {
                    warn!("route", "accept failed: {error}");
                    break;
                }
            }
        }
    }

    fn open_down(&mut self, stream: std::net::TcpStream) {
        let stream = match Stream::from_std(stream) {
            Ok(stream) => stream,
            Err(error) => {
                warn!("route", "could not prepare connection: {error}");
                return;
            }
        };
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.next_gen += 1;
        let conn = DownConn {
            stream,
            gen: self.next_gen,
            assembler: LineAssembler::new(MAX_LINE_BYTES),
            outbound: VecDeque::new(),
            outbound_bytes: 0,
            write_offset: 0,
            interest: Interest::READABLE,
            authed: self.token.is_none(),
            closing: None,
            close_timer: None,
            requests: 0,
            bytes_in: 0,
            bytes_out: 0,
            dirty: false,
            opened: Instant::now(),
        };
        let token = Token(slot as u64 * 2 + TOKEN_CONN_BASE);
        if let Err(error) = self.poller.register(&conn.stream, token, conn.interest) {
            warn!("route", "connection registration failed: {error}");
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
        let hello = Event::Hello {
            protocol: PROTOCOL_VERSION,
            role: Role::Router,
            nodes: self
                .nodes
                .iter()
                .filter(|node| !node.retired)
                .map(|node| node.name.clone())
                .collect(),
            auth: self.token.is_some(),
            // The router runs no engine; per-node capacities are in the
            // `stats` fan-out.
            threads: 0,
            workloads: self.workloads.clone(),
            flow_solver: SolverKind::default(),
            flow_solvers: SolverKind::SELECTABLE
                .iter()
                .map(|k| k.as_str().to_string())
                .collect(),
        };
        self.push_down(slot, &hello);
    }

    fn down_event(&mut self, slot: usize, event: &PollEvent) {
        if event.readable {
            self.down_readable(slot);
        }
        if event.writable {
            self.mark_down_dirty(slot);
        }
        if event.closed && !event.readable {
            self.close_down(slot, CloseReason::Eof);
        }
    }

    fn down_readable(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.closing.is_some() {
                return;
            }
            let status = match conn.stream.read(&mut self.read_buf) {
                Ok(status) => status,
                Err(_) => {
                    self.close_down(slot, CloseReason::Eof);
                    return;
                }
            };
            match status {
                IoStatus::Ready(n) => {
                    conn.assembler.push(&self.read_buf[..n]);
                    if !self.process_down_lines(slot) {
                        return;
                    }
                }
                IoStatus::WouldBlock => return,
                IoStatus::Closed => {
                    self.close_down(slot, CloseReason::Eof);
                    return;
                }
            }
        }
    }

    /// Returns `false` when the connection was closed (framing error).
    fn process_down_lines(&mut self, slot: usize) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return false;
            };
            if conn.closing.is_some() {
                return true;
            }
            match conn.assembler.next_line() {
                Ok(Some(line)) => self.process_down_line(slot, &line),
                Ok(None) => return true,
                Err(_) => {
                    self.close_down(slot, CloseReason::BadInput);
                    return false;
                }
            }
        }
    }

    fn process_down_line(&mut self, slot: usize, line: &str) {
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            conn.bytes_in += line.len() as u64 + 1;
            if line.trim().is_empty() {
                return;
            }
            conn.requests += 1;
        }
        match Request::decode(line) {
            Ok(Request::Auth { token }) => self.handle_auth(slot, &token),
            Ok(_) if !self.down_authed(slot) => {
                self.auth_reject(slot, "authentication required: send the auth verb first");
            }
            Ok(Request::Submit {
                label,
                kind,
                params,
                options,
            }) => self.handle_submit(slot, label, kind, params, options),
            Ok(Request::Status { job }) => self.handle_status(slot, job),
            Ok(Request::Cancel { job }) => self.handle_cancel(slot, job),
            Ok(Request::Stats) => self.handle_stats(slot),
            Ok(Request::Metrics) => {
                let (requests, bytes_in, bytes_out) = self
                    .conns
                    .get(slot)
                    .and_then(Option::as_ref)
                    .map_or((0, 0, 0), |conn| {
                        (conn.requests, conn.bytes_in, conn.bytes_out)
                    });
                let event = Event::Metrics {
                    exposition: metrics::global().expose(),
                    requests,
                    bytes_in,
                    bytes_out,
                };
                self.push_down(slot, &event);
            }
            Ok(Request::Drain { node }) => self.handle_drain(slot, &node),
            Err(error) => {
                let event = Event::Error {
                    message: format!("bad request: {}", error.message),
                };
                self.push_down(slot, &event);
            }
        }
    }

    fn down_authed(&self, slot: usize) -> bool {
        self.conns
            .get(slot)
            .and_then(Option::as_ref)
            .is_some_and(|conn| conn.authed)
    }

    fn handle_auth(&mut self, slot: usize, token: &str) {
        let accepted = match &self.token {
            None => true,
            Some(expected) => constant_time_eq(expected.as_bytes(), token.as_bytes()),
        };
        if accepted {
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                conn.authed = true;
            }
            self.push_down(slot, &Event::AuthOk);
        } else {
            self.auth_reject(slot, "authentication failed: bad token");
        }
    }

    fn auth_reject(&mut self, slot: usize, message: &str) {
        let event = Event::Error {
            message: message.to_string(),
        };
        self.push_down(slot, &event);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.closing.is_some() {
            return;
        }
        conn.closing = Some(CloseReason::AuthFailed);
        conn.close_timer = Some(
            self.wheel
                .arm(Instant::now() + CLOSE_GRACE, Timer::ForceClose(slot)),
        );
        self.mark_down_dirty(slot);
    }

    fn handle_submit(
        &mut self,
        slot: usize,
        label: String,
        kind: String,
        params: Json,
        options: marqsim_engine::SubmitOptions,
    ) {
        let fingerprint = routing_fingerprint(&params);
        let Some(owner) = self.ring.owner(fingerprint).map(str::to_string) else {
            let connected = self
                .nodes
                .iter()
                .filter(|n| n.phase == Phase::Ready)
                .count();
            let event = Event::Error {
                message: format!(
                    "no routable fleet nodes ({} configured, {connected} connected)",
                    self.nodes.len()
                ),
            };
            self.push_down(slot, &event);
            return;
        };
        let Some(index) = self.node_index(&owner) else {
            return;
        };
        let Some(key) = self.conn_key(slot) else {
            return;
        };
        let router_job = self.next_job;
        self.next_job += 1;
        self.jobs.insert(
            router_job,
            RouteEntry {
                down: key,
                node: index,
                node_job: None,
                cancel_requested: false,
                started: Instant::now(),
            },
        );
        let request = Request::Submit {
            label: label.clone(),
            kind,
            params,
            options,
        };
        self.nodes[index].awaiting_submit.push_back(router_job);
        self.nodes[index].routed.inc();
        self.node_send(index, &request);
        // Ack immediately with the router-assigned id: acks stay in
        // request order even when consecutive submits route to different
        // nodes. A node-side rejection arrives later as `failed`.
        let event = Event::Submitted {
            job: router_job,
            label,
            node: Some(owner),
        };
        self.push_down(slot, &event);
    }

    fn handle_status(&mut self, slot: usize, job: u64) {
        let Some(key) = self.conn_key(slot) else {
            return;
        };
        match self.jobs.get(&job) {
            Some(entry) if entry.down == key => match entry.node_job {
                Some(node_job) => {
                    let index = entry.node;
                    self.nodes[index]
                        .awaiting_status
                        .push_back(StatusWaiter::Client { down: key, job });
                    self.node_send(index, &Request::Status { job: node_job });
                }
                // The node's ack is still in flight: the job exists but
                // has made no observable progress.
                None => {
                    let cancelled = self
                        .jobs
                        .get(&job)
                        .is_some_and(|entry| entry.cancel_requested);
                    let event = Event::Status {
                        job,
                        known: true,
                        finished: false,
                        cancelled,
                        completed: 0,
                        total: 0,
                    };
                    self.push_down(slot, &event);
                }
            },
            _ => {
                let event = Event::Status {
                    job,
                    known: false,
                    finished: false,
                    cancelled: false,
                    completed: 0,
                    total: 0,
                };
                self.push_down(slot, &event);
            }
        }
    }

    fn handle_cancel(&mut self, slot: usize, job: u64) {
        let Some(key) = self.conn_key(slot) else {
            return;
        };
        match self.jobs.get_mut(&job) {
            Some(entry) if entry.down == key => match entry.node_job {
                Some(node_job) => {
                    let index = entry.node;
                    self.nodes[index]
                        .awaiting_status
                        .push_back(StatusWaiter::Client { down: key, job });
                    self.node_send(index, &Request::Cancel { job: node_job });
                }
                None => {
                    entry.cancel_requested = true;
                    let event = Event::Status {
                        job,
                        known: true,
                        finished: false,
                        cancelled: true,
                        completed: 0,
                        total: 0,
                    };
                    self.push_down(slot, &event);
                }
            },
            _ => {
                let event = Event::Status {
                    job,
                    known: false,
                    finished: false,
                    cancelled: false,
                    completed: 0,
                    total: 0,
                };
                self.push_down(slot, &event);
            }
        }
    }

    fn handle_stats(&mut self, slot: usize) {
        let Some(key) = self.conn_key(slot) else {
            return;
        };
        let id = self.next_stats;
        self.next_stats += 1;
        let mut pending = PendingStats {
            down: key,
            remaining: 0,
            parts: Vec::new(),
        };
        let mut queries: Vec<usize> = Vec::new();
        for (index, node) in self.nodes.iter_mut().enumerate() {
            if node.retired {
                continue;
            }
            if node.phase == Phase::Ready {
                node.awaiting_stats.push_back(StatsWaiter::Client(id));
                pending.remaining += 1;
                queries.push(index);
            } else {
                pending.parts.push(NodeStats {
                    node: node.name.clone(),
                    health: health_name(self.membership.health(&node.name)),
                    stats: ServerStats::default(),
                });
            }
        }
        if pending.remaining == 0 {
            self.finish_stats(pending);
            return;
        }
        self.pending_stats.insert(id, pending);
        for index in queries {
            self.node_send(index, &Request::Stats);
        }
    }

    /// Aggregates a completed fan-out and answers the waiting client.
    fn finish_stats(&mut self, mut pending: PendingStats) {
        pending.parts.sort_by(|a, b| a.node.cmp(&b.node));
        let down = pending.down;
        let in_flight = self
            .jobs
            .values()
            .filter(|entry| entry.down == down)
            .count();
        let mut total = ServerStats {
            in_flight,
            flow_solver: pending
                .parts
                .iter()
                .find(|part| part.health == "up" || part.health == "suspect")
                .map_or_else(SolverKind::default, |part| part.stats.flow_solver),
            ..ServerStats::default()
        };
        for part in &pending.parts {
            total.threads += part.stats.threads;
            total.active_jobs += part.stats.active_jobs;
            total.queue_depth += part.stats.queue_depth;
            total.max_active_jobs += part.stats.max_active_jobs;
            total.cache += part.stats.cache;
        }
        total.per_node = pending.parts;
        if self.conn_matches(down) {
            self.push_down(down.slot, &Event::Stats(total));
        }
    }

    fn handle_drain(&mut self, slot: usize, name: &str) {
        let Some(index) = self.node_index(name) else {
            let event = Event::Error {
                message: format!("cannot drain '{name}': not a fleet node"),
            };
            self.push_down(slot, &event);
            return;
        };
        if self.nodes[index].retired {
            let event = Event::Error {
                message: format!("cannot drain '{name}': already drained"),
            };
            self.push_down(slot, &event);
            return;
        }
        if self.membership.health(name) != Some(Health::Draining) {
            drains_counter().inc();
            self.membership.begin_drain(name);
            self.ring.remove(name);
            self.nodes[index].up_gauge.set(0);
        }
        let in_flight = self.nodes[index].jobs.len() + self.nodes[index].awaiting_submit.len();
        let event = Event::Draining {
            node: name.to_string(),
            in_flight,
        };
        self.push_down(slot, &event);
        if in_flight == 0 {
            self.retire_node(index);
        }
    }

    /// Final step of a drain: the last in-flight job finished, drop the
    /// node from the fleet for good.
    fn retire_node(&mut self, index: usize) {
        self.disconnect_node(index);
        let name = self.nodes[index].name.clone();
        self.membership.remove(&name);
        self.nodes[index].retired = true;
    }

    fn maybe_finish_drain(&mut self, index: usize) {
        let name = self.nodes[index].name.clone();
        if self.membership.health(&name) == Some(Health::Draining)
            && self.nodes[index].jobs.is_empty()
            && self.nodes[index].awaiting_submit.is_empty()
        {
            self.retire_node(index);
        }
    }

    fn conn_key(&self, slot: usize) -> Option<ConnKey> {
        self.conns
            .get(slot)
            .and_then(Option::as_ref)
            .map(|conn| ConnKey {
                slot,
                gen: conn.gen,
            })
    }

    fn conn_matches(&self, key: ConnKey) -> bool {
        self.conns
            .get(key.slot)
            .and_then(Option::as_ref)
            .is_some_and(|conn| conn.gen == key.gen)
    }

    fn push_down(&mut self, slot: usize, event: &Event) {
        self.push_down_line(slot, encode_line(event));
    }

    fn push_down_line(&mut self, slot: usize, line: String) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.closing.is_some() {
            return;
        }
        if conn.outbound.len() >= OUTBOUND_MAX_EVENTS
            || conn.outbound_bytes + line.len() > OUTBOUND_MAX_BYTES
        {
            // Slow consumer: queue a final error and close after drain.
            let error_line = encode_line(&Event::Error {
                message: "disconnected: outbound queue overflow (slow consumer)".to_string(),
            });
            let keep_head = usize::from(conn.write_offset > 0);
            conn.outbound.truncate(keep_head);
            conn.outbound_bytes = conn.outbound.iter().map(String::len).sum::<usize>();
            conn.outbound_bytes += error_line.len();
            conn.outbound.push_back(error_line);
            conn.closing = Some(CloseReason::SlowConsumer);
            conn.close_timer = Some(
                self.wheel
                    .arm(Instant::now() + CLOSE_GRACE, Timer::ForceClose(slot)),
            );
            self.mark_down_dirty(slot);
            return;
        }
        conn.outbound_bytes += line.len();
        conn.outbound.push_back(line);
        self.mark_down_dirty(slot);
    }

    fn mark_down_dirty(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            if !conn.dirty {
                conn.dirty = true;
                self.dirty_down.push(slot);
            }
        }
    }

    /// Tears one downstream connection down, cancelling its routed jobs on
    /// their nodes.
    fn close_down(&mut self, slot: usize, reason: CloseReason) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        let key = ConnKey {
            slot,
            gen: conn.gen,
        };
        let owned: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, entry)| entry.down == key)
            .map(|(job, _)| *job)
            .collect();
        for job in owned {
            if let Some(entry) = self.jobs.remove(&job) {
                if let Some(node_job) = entry.node_job {
                    let index = entry.node;
                    self.nodes[index].jobs.remove(&node_job);
                    self.nodes[index]
                        .awaiting_status
                        .push_back(StatusWaiter::Discard);
                    self.node_send(index, &Request::Cancel { job: node_job });
                    self.maybe_finish_drain(index);
                }
                // An entry whose ack is pending stays implicit: the ack
                // handler sees the dead connection and cancels then.
            }
        }
        if let Some(timer) = conn.close_timer {
            self.wheel.cancel(timer);
        }
        self.poller.deregister(&conn.stream);
        let dur_us = conn.opened.elapsed().as_micros() as u64;
        trace::emit_interval(
            "conn",
            None,
            conn.opened,
            dur_us,
            &[
                ("reason", reason.as_str().to_string()),
                ("requests", conn.requests.to_string()),
                ("bytes_in", conn.bytes_in.to_string()),
                ("bytes_out", conn.bytes_out.to_string()),
            ],
        );
        self.free.push(slot);
    }

    // -- upstream -----------------------------------------------------------

    fn node_index(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|node| node.name == name)
    }

    fn node_token(index: usize) -> Token {
        Token(index as u64 * 2 + 1 + TOKEN_CONN_BASE)
    }

    /// Queues one request line to a node and marks it for flushing.
    fn node_send(&mut self, index: usize, request: &Request) {
        let node = &mut self.nodes[index];
        if node.stream.is_none() {
            return;
        }
        let mut line = request.encode();
        line.push('\n');
        node.outbound.push_back(line);
        if !node.dirty {
            node.dirty = true;
            self.dirty_nodes.push(index);
        }
    }

    fn mark_node_dirty(&mut self, index: usize) {
        let node = &mut self.nodes[index];
        if !node.dirty {
            node.dirty = true;
            self.dirty_nodes.push(index);
        }
    }

    /// The membership schedule says `name` is due: reconnect a dead node,
    /// probe a live one.
    fn probe_due(&mut self, name: &str, now: Instant) {
        let Some(index) = self.node_index(name) else {
            return;
        };
        if self.nodes[index].retired {
            return;
        }
        match self.nodes[index].phase {
            Phase::Idle => self.start_connect(index, now),
            Phase::Ready => {
                self.membership.begin_probe(name, now);
                if self.nodes[index].op_timer.is_none() {
                    self.nodes[index].op_timer = Some(
                        self.wheel
                            .arm(now + PROBE_TIMEOUT, Timer::NodeDeadline(index)),
                    );
                    self.nodes[index]
                        .awaiting_stats
                        .push_back(StatsWaiter::Probe);
                    self.node_send(index, &Request::Stats);
                }
            }
            // A handshake is in flight; its own deadline will resolve it.
            _ => {
                self.membership.begin_probe(name, now);
            }
        }
    }

    fn start_connect(&mut self, index: usize, now: Instant) {
        let name = self.nodes[index].name.clone();
        self.membership.begin_probe(&name, now);
        let addr = match name.to_socket_addrs().ok().and_then(|mut it| it.next()) {
            Some(addr) => addr,
            None => {
                self.node_failed(index, "address does not resolve");
                return;
            }
        };
        match Stream::connect(&addr) {
            Ok((stream, status)) => {
                let (phase, interest) = match status {
                    ConnectStatus::Ready => (Phase::AwaitHello, Interest::READABLE),
                    ConnectStatus::InProgress => (
                        Phase::Connecting,
                        Interest {
                            readable: false,
                            writable: true,
                        },
                    ),
                };
                if let Err(error) = self
                    .poller
                    .register(&stream, Self::node_token(index), interest)
                {
                    warn!("route", "node {name}: registration failed: {error}");
                    self.node_failed(index, "poller registration failed");
                    return;
                }
                let node = &mut self.nodes[index];
                node.stream = Some(stream);
                node.phase = phase;
                node.interest = interest;
                node.assembler = LineAssembler::new(usize::MAX);
                node.op_timer = Some(
                    self.wheel
                        .arm(now + CONNECT_TIMEOUT, Timer::NodeDeadline(index)),
                );
            }
            Err(error) => {
                warn!("route", "node {name}: connect failed: {error}");
                self.node_failed(index, "connect failed");
            }
        }
    }

    fn node_event(&mut self, index: usize, event: &PollEvent) {
        if index >= self.nodes.len() || self.nodes[index].stream.is_none() {
            return;
        }
        if self.nodes[index].phase == Phase::Connecting && (event.writable || event.closed) {
            let outcome = match self.nodes[index].stream.as_ref() {
                Some(stream) => stream.connect_result(),
                None => return,
            };
            match outcome {
                Ok(()) => {
                    let interest = Interest::READABLE;
                    let node = &mut self.nodes[index];
                    node.phase = Phase::AwaitHello;
                    node.interest = interest;
                    if let Some(stream) = node.stream.as_ref() {
                        let _ = self
                            .poller
                            .reregister(stream, Self::node_token(index), interest);
                    }
                }
                Err(error) => {
                    let name = self.nodes[index].name.clone();
                    warn!("route", "node {name}: connect failed: {error}");
                    self.node_failed(index, "connect failed");
                }
            }
            return;
        }
        if event.readable {
            self.node_readable(index);
        }
        if event.writable {
            self.mark_node_dirty(index);
        }
        if event.closed && !event.readable {
            self.node_failed(index, "connection closed");
        }
    }

    fn node_readable(&mut self, index: usize) {
        loop {
            let Some(stream) = self.nodes[index].stream.as_mut() else {
                return;
            };
            let status = match stream.read(&mut self.read_buf) {
                Ok(status) => status,
                Err(_) => {
                    self.node_failed(index, "read error");
                    return;
                }
            };
            match status {
                IoStatus::Ready(n) => {
                    let chunk = &self.read_buf[..n];
                    self.nodes[index].assembler.push(chunk);
                    loop {
                        match self.nodes[index].assembler.next_line() {
                            Ok(Some(line)) => {
                                if !self.process_node_line(index, &line) {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                self.node_failed(index, "unframeable node output");
                                return;
                            }
                        }
                    }
                }
                IoStatus::WouldBlock => return,
                IoStatus::Closed => {
                    self.node_failed(index, "connection closed");
                    return;
                }
            }
        }
    }

    /// Handles one event line from a node; returns `false` when the node
    /// connection was torn down.
    fn process_node_line(&mut self, index: usize, line: &str) -> bool {
        let event = match Event::decode(line.trim()) {
            Ok(event) => event,
            Err(error) => {
                warn!(
                    "route",
                    "node {}: undecodable event: {error}", self.nodes[index].name
                );
                self.node_failed(index, "undecodable node event");
                return false;
            }
        };
        match self.nodes[index].phase {
            Phase::AwaitHello => self.handshake_hello(index, event),
            Phase::AwaitAuthOk => self.handshake_auth_ok(index, event),
            Phase::Ready => {
                self.relay_node_event(index, event);
                true
            }
            _ => true,
        }
    }

    fn handshake_hello(&mut self, index: usize, event: Event) -> bool {
        let name = self.nodes[index].name.clone();
        match event {
            Event::Hello {
                protocol,
                role,
                auth,
                ..
            } => {
                if protocol != PROTOCOL_VERSION {
                    warn!(
                        "route",
                        "node {name} speaks protocol {protocol}, router speaks {PROTOCOL_VERSION}"
                    );
                    self.node_failed(index, "protocol version mismatch");
                    return false;
                }
                if role != Role::Node {
                    warn!("route", "node {name} is a {}, not a node", role.as_str());
                    self.node_failed(index, "peer is not a node");
                    return false;
                }
                match (&self.token, auth) {
                    (Some(token), _) => {
                        let request = Request::Auth {
                            token: token.clone(),
                        };
                        self.nodes[index].phase = Phase::AwaitAuthOk;
                        self.node_send(index, &request);
                        true
                    }
                    (None, true) => {
                        warn!(
                            "route",
                            "node {name} requires a token and none is configured"
                        );
                        self.node_failed(index, "node requires authentication");
                        false
                    }
                    (None, false) => {
                        self.node_ready(index);
                        true
                    }
                }
            }
            other => {
                warn!("route", "node {name}: expected hello, got {other:?}");
                self.node_failed(index, "protocol violation");
                false
            }
        }
    }

    fn handshake_auth_ok(&mut self, index: usize, event: Event) -> bool {
        match event {
            Event::AuthOk => {
                self.node_ready(index);
                true
            }
            other => {
                warn!(
                    "route",
                    "node {}: expected auth_ok, got {other:?}", self.nodes[index].name
                );
                self.node_failed(index, "authentication rejected");
                false
            }
        }
    }

    /// The handshake finished: the node (re)joins the ring.
    fn node_ready(&mut self, index: usize) {
        let name = self.nodes[index].name.clone();
        if let Some(timer) = self.nodes[index].op_timer.take() {
            self.wheel.cancel(timer);
        }
        self.nodes[index].phase = Phase::Ready;
        let now = Instant::now();
        let health = self.membership.record_success(&name, now);
        if matches!(health, Some(Health::Up | Health::Suspect)) {
            self.ring.add(&name);
            self.nodes[index].up_gauge.set(1);
        }
    }

    /// Relays (or consumes) one event from a ready node.
    fn relay_node_event(&mut self, index: usize, event: Event) {
        match event {
            Event::Submitted { job: node_job, .. } => {
                let Some(router_job) = self.nodes[index].awaiting_submit.pop_front() else {
                    return;
                };
                let wants_cancel = self.jobs.get_mut(&router_job).map(|entry| {
                    entry.node_job = Some(node_job);
                    entry.cancel_requested
                });
                match wants_cancel {
                    // The submitter hung up between forward and ack
                    // (close_down dropped the route): cancel on its
                    // behalf and never learn this node job's id.
                    None => {
                        self.nodes[index]
                            .awaiting_status
                            .push_back(StatusWaiter::Discard);
                        self.node_send(index, &Request::Cancel { job: node_job });
                        self.maybe_finish_drain(index);
                    }
                    Some(wants_cancel) => {
                        self.nodes[index].jobs.insert(node_job, router_job);
                        if wants_cancel {
                            // A cancel arrived before the ack; forward it
                            // now that the node's id is known.
                            self.nodes[index]
                                .awaiting_status
                                .push_back(StatusWaiter::Discard);
                            self.node_send(index, &Request::Cancel { job: node_job });
                        }
                    }
                }
            }
            Event::Busy {
                in_flight, limit, ..
            } => {
                // The router already acked `submitted`, so a node-side
                // admission rejection becomes a terminal failure.
                let Some(router_job) = self.nodes[index].awaiting_submit.pop_front() else {
                    return;
                };
                let name = self.nodes[index].name.clone();
                if let Some(entry) = self.jobs.remove(&router_job) {
                    let event = Event::Failed {
                        job: router_job,
                        kind: "busy".to_string(),
                        message: format!(
                            "node {name} rejected the job ({in_flight} in flight, limit {limit})"
                        ),
                        node: Some(name),
                    };
                    if self.conn_matches(entry.down) {
                        self.push_down(entry.down.slot, &event);
                    }
                }
                self.maybe_finish_drain(index);
            }
            Event::Error { message } => {
                // The only errors a node sends in answer to well-formed
                // router traffic are submit rejections (unknown kind, bad
                // params) — attribute to the oldest pending submit.
                let Some(router_job) = self.nodes[index].awaiting_submit.pop_front() else {
                    warn!(
                        "route",
                        "node {}: unattributed error: {message}", self.nodes[index].name
                    );
                    return;
                };
                let name = self.nodes[index].name.clone();
                if let Some(entry) = self.jobs.remove(&router_job) {
                    let event = Event::Failed {
                        job: router_job,
                        kind: "rejected".to_string(),
                        message,
                        node: Some(name),
                    };
                    if self.conn_matches(entry.down) {
                        self.push_down(entry.down.slot, &event);
                    }
                }
                self.maybe_finish_drain(index);
            }
            Event::Progress {
                job: node_job,
                completed,
                total,
                ..
            } => {
                let Some(&router_job) = self.nodes[index].jobs.get(&node_job) else {
                    return;
                };
                let Some(entry) = self.jobs.get(&router_job) else {
                    return;
                };
                if self.conn_matches(entry.down) {
                    let slot = entry.down.slot;
                    let event = Event::Progress {
                        job: router_job,
                        completed,
                        total,
                        node: Some(self.nodes[index].name.clone()),
                    };
                    self.push_down(slot, &event);
                }
            }
            Event::Done {
                job: node_job,
                outcome,
                cache_delta,
                flow_solver,
                ..
            } => {
                let name = self.nodes[index].name.clone();
                if let Some((router_job, entry)) = self.take_route(index, node_job) {
                    self.emit_route_span(&name, &entry, "done");
                    if self.conn_matches(entry.down) {
                        let event = Event::Done {
                            job: router_job,
                            outcome,
                            cache_delta,
                            flow_solver,
                            node: Some(name),
                        };
                        self.push_down(entry.down.slot, &event);
                    }
                }
                self.maybe_finish_drain(index);
            }
            Event::Failed {
                job: node_job,
                kind,
                message,
                ..
            } => {
                let name = self.nodes[index].name.clone();
                if let Some((router_job, entry)) = self.take_route(index, node_job) {
                    self.emit_route_span(&name, &entry, "failed");
                    if self.conn_matches(entry.down) {
                        let event = Event::Failed {
                            job: router_job,
                            kind,
                            message,
                            node: Some(name),
                        };
                        self.push_down(entry.down.slot, &event);
                    }
                }
                self.maybe_finish_drain(index);
            }
            Event::Status {
                completed,
                total,
                known,
                finished,
                cancelled,
                ..
            } => match self.nodes[index].awaiting_status.pop_front() {
                Some(StatusWaiter::Client { down, job }) => {
                    if self.conn_matches(down) {
                        let event = Event::Status {
                            job,
                            known,
                            finished,
                            cancelled,
                            completed,
                            total,
                        };
                        self.push_down(down.slot, &event);
                    }
                }
                Some(StatusWaiter::Discard) | None => {}
            },
            Event::Stats(stats) => match self.nodes[index].awaiting_stats.pop_front() {
                Some(StatsWaiter::Client(id)) => {
                    let name = self.nodes[index].name.clone();
                    let health = health_name(self.membership.health(&name));
                    if let Some(pending) = self.pending_stats.get_mut(&id) {
                        pending.parts.push(NodeStats {
                            node: name,
                            health,
                            stats,
                        });
                        pending.remaining -= 1;
                        if pending.remaining == 0 {
                            if let Some(pending) = self.pending_stats.remove(&id) {
                                self.finish_stats(pending);
                            }
                        }
                    }
                }
                Some(StatsWaiter::Probe) => {
                    let name = self.nodes[index].name.clone();
                    if let Some(timer) = self.nodes[index].op_timer.take() {
                        self.wheel.cancel(timer);
                    }
                    self.membership.record_success(&name, Instant::now());
                }
                None => {}
            },
            // hello/auth_ok/draining/metrics from a ready node are
            // protocol noise; ignore.
            _ => {}
        }
    }

    /// Removes one finished job's route entry from both id spaces.
    fn take_route(&mut self, index: usize, node_job: u64) -> Option<(u64, RouteEntry)> {
        let router_job = self.nodes[index].jobs.remove(&node_job)?;
        let entry = self.jobs.remove(&router_job)?;
        Some((router_job, entry))
    }

    fn emit_route_span(&self, node: &str, entry: &RouteEntry, outcome: &str) {
        let dur_us = entry.started.elapsed().as_micros() as u64;
        trace::emit_interval(
            "route",
            None,
            entry.started,
            dur_us,
            &[("node", node.to_string()), ("outcome", outcome.to_string())],
        );
    }

    /// The node is gone (connect refused, handshake timeout, probe
    /// timeout, EOF, protocol violation): fail everything in flight on it
    /// with the structured `node_lost` kind, drop it from the ring, and
    /// let the membership backoff schedule the reconnect.
    fn node_failed(&mut self, index: usize, why: &str) {
        let name = self.nodes[index].name.clone();
        probe_failures_counter().inc();
        self.disconnect_node(index);
        // In-flight jobs: both acked ones and those whose ack is pending.
        let mut lost: Vec<u64> = self.nodes[index].jobs.drain().map(|(_, job)| job).collect();
        lost.extend(self.nodes[index].awaiting_submit.drain(..));
        for router_job in lost {
            if let Some(entry) = self.jobs.remove(&router_job) {
                self.emit_route_span(&name, &entry, "node_lost");
                if self.conn_matches(entry.down) {
                    let event = Event::Failed {
                        job: router_job,
                        kind: "node_lost".to_string(),
                        message: format!("node {name} was lost ({why})"),
                        node: Some(name.clone()),
                    };
                    self.push_down(entry.down.slot, &event);
                }
            }
        }
        let waiters: Vec<StatusWaiter> = self.nodes[index].awaiting_status.drain(..).collect();
        for waiter in waiters {
            if let StatusWaiter::Client { down, job } = waiter {
                if self.conn_matches(down) {
                    let event = Event::Status {
                        job,
                        known: false,
                        finished: false,
                        cancelled: false,
                        completed: 0,
                        total: 0,
                    };
                    self.push_down(down.slot, &event);
                }
            }
        }
        let now = Instant::now();
        let health = self.membership.record_failure(&name, now);
        let stats_waiters: Vec<StatsWaiter> = self.nodes[index].awaiting_stats.drain(..).collect();
        for waiter in stats_waiters {
            if let StatsWaiter::Client(id) = waiter {
                if let Some(pending) = self.pending_stats.get_mut(&id) {
                    pending.parts.push(NodeStats {
                        node: name.clone(),
                        health: health_name(health),
                        stats: ServerStats::default(),
                    });
                    pending.remaining -= 1;
                    if pending.remaining == 0 {
                        if let Some(pending) = self.pending_stats.remove(&id) {
                            self.finish_stats(pending);
                        }
                    }
                }
            }
        }
        self.ring.remove(&name);
        self.nodes[index].up_gauge.set(0);
        if self.membership.health(&name) == Some(Health::Draining) {
            // A draining node that died finishes its drain the hard way.
            self.retire_node(index);
        }
    }

    /// Drops the socket and clears I/O state; bookkeeping (jobs, waiters)
    /// is the caller's concern.
    fn disconnect_node(&mut self, index: usize) {
        let node = &mut self.nodes[index];
        if let Some(timer) = node.op_timer.take() {
            self.wheel.cancel(timer);
        }
        if let Some(stream) = node.stream.take() {
            self.poller.deregister(&stream);
        }
        node.phase = Phase::Idle;
        node.outbound.clear();
        node.write_offset = 0;
        node.interest = Interest::READABLE;
    }

    // -- timers and flushing ------------------------------------------------

    fn timer_fired(&mut self, key: TimerKey, timer: Timer) {
        match timer {
            Timer::ForceClose(slot) => {
                let matches = self
                    .conns
                    .get(slot)
                    .and_then(Option::as_ref)
                    .is_some_and(|conn| conn.close_timer == Some(key));
                if matches {
                    let reason = self.conns[slot]
                        .as_ref()
                        .and_then(|conn| conn.closing)
                        .unwrap_or(CloseReason::Eof);
                    self.close_down(slot, reason);
                }
            }
            Timer::NodeDeadline(index) => {
                if self.nodes[index].op_timer != Some(key) {
                    return;
                }
                self.nodes[index].op_timer = None;
                match self.nodes[index].phase {
                    Phase::Connecting | Phase::AwaitHello | Phase::AwaitAuthOk => {
                        self.node_failed(index, "handshake timeout");
                    }
                    Phase::Ready => self.node_failed(index, "probe timeout"),
                    Phase::Idle => {}
                }
            }
        }
    }

    fn flush_dirty(&mut self) {
        let slots: Vec<usize> = self.dirty_down.drain(..).collect();
        for slot in slots {
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                conn.dirty = false;
                self.flush_down(slot);
            }
        }
        let indices: Vec<usize> = self.dirty_nodes.drain(..).collect();
        for index in indices {
            self.nodes[index].dirty = false;
            self.flush_node(index);
        }
    }

    fn flush_down(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let Some(front) = conn.outbound.front() else {
                if let Some(reason) = conn.closing {
                    self.close_down(slot, reason);
                    return;
                }
                self.update_down_interest(slot, false);
                return;
            };
            let bytes = front.as_bytes();
            let offset = conn.write_offset;
            match conn.stream.write(&bytes[offset..]) {
                Ok(IoStatus::Ready(n)) => {
                    conn.write_offset += n;
                    if conn.write_offset == bytes.len() {
                        conn.write_offset = 0;
                        if let Some(line) = conn.outbound.pop_front() {
                            conn.outbound_bytes -= line.len();
                            conn.bytes_out += line.len() as u64;
                        }
                    }
                }
                Ok(IoStatus::WouldBlock) => {
                    self.update_down_interest(slot, true);
                    return;
                }
                Ok(IoStatus::Closed) | Err(_) => {
                    self.close_down(slot, CloseReason::Eof);
                    return;
                }
            }
        }
    }

    fn update_down_interest(&mut self, slot: usize, writable: bool) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let desired = Interest {
            readable: conn.closing.is_none(),
            writable,
        };
        if desired == conn.interest {
            return;
        }
        let token = Token(slot as u64 * 2 + TOKEN_CONN_BASE);
        if self.poller.reregister(&conn.stream, token, desired).is_ok() {
            conn.interest = desired;
        }
    }

    fn flush_node(&mut self, index: usize) {
        loop {
            let node = &mut self.nodes[index];
            let Some(stream) = node.stream.as_mut() else {
                return;
            };
            if node.phase == Phase::Connecting {
                return;
            }
            let Some(front) = node.outbound.front() else {
                self.update_node_interest(index, false);
                return;
            };
            let bytes = front.as_bytes();
            let offset = node.write_offset;
            match stream.write(&bytes[offset..]) {
                Ok(IoStatus::Ready(n)) => {
                    node.write_offset += n;
                    if node.write_offset == bytes.len() {
                        node.write_offset = 0;
                        node.outbound.pop_front();
                    }
                }
                Ok(IoStatus::WouldBlock) => {
                    self.update_node_interest(index, true);
                    return;
                }
                Ok(IoStatus::Closed) | Err(_) => {
                    self.node_failed(index, "write error");
                    return;
                }
            }
        }
    }

    fn update_node_interest(&mut self, index: usize, writable: bool) {
        let node = &mut self.nodes[index];
        let Some(stream) = node.stream.as_ref() else {
            return;
        };
        let desired = Interest {
            readable: true,
            writable,
        };
        if desired == node.interest {
            return;
        }
        if self
            .poller
            .reregister(stream, Self::node_token(index), desired)
            .is_ok()
        {
            node.interest = desired;
        }
    }
}

/// Wire name of a node's health for the `stats` breakdown.
fn health_name(health: Option<Health>) -> String {
    match health {
        Some(Health::Up) => "up",
        Some(Health::Suspect) => "suspect",
        Some(Health::Down) => "down",
        Some(Health::Draining) => "draining",
        None => "unknown",
    }
    .to_string()
}

/// The ring key for one submit: the Hamiltonian fingerprint when the
/// params carry one (the engine's own cache key, so all routers agree),
/// else an FNV-1a hash of the canonical params encoding.
fn routing_fingerprint(params: &Json) -> u64 {
    if let Some(text) = params.get("hamiltonian").and_then(Json::as_str) {
        if let Ok(ham) = Hamiltonian::parse(text) {
            return marqsim_engine::cache::hamiltonian_fingerprint(&ham);
        }
    }
    let encoded = params.encode();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in encoded.as_bytes() {
        hash = (hash ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_agree_across_equivalent_submissions() {
        let params_a = Json::obj([
            ("hamiltonian", "0.9 ZZ + 0.5 XX".into()),
            ("label", "a".into()),
        ]);
        let params_b = Json::obj([
            ("hamiltonian", "0.9 ZZ + 0.5 XX".into()),
            ("label", "b".into()),
        ]);
        // Only the Hamiltonian matters: the same physics routes to the
        // same node regardless of labels or sweep settings.
        assert_eq!(
            routing_fingerprint(&params_a),
            routing_fingerprint(&params_b)
        );
        let different = Json::obj([("hamiltonian", "0.9 ZZ + 0.4 XX".into())]);
        assert_ne!(
            routing_fingerprint(&params_a),
            routing_fingerprint(&different)
        );
    }

    #[test]
    fn non_hamiltonian_params_fall_back_to_a_content_hash() {
        let a = Json::obj([("n", 30u64.into())]);
        let b = Json::obj([("n", 31u64.into())]);
        assert_ne!(routing_fingerprint(&a), routing_fingerprint(&b));
        assert_eq!(routing_fingerprint(&a), routing_fingerprint(&a));
    }

    #[test]
    fn bind_rejects_an_empty_fleet() {
        assert!(Router::bind("127.0.0.1:0", &[]).is_err());
    }

    #[test]
    fn health_names_cover_every_state() {
        assert_eq!(health_name(Some(Health::Up)), "up");
        assert_eq!(health_name(Some(Health::Suspect)), "suspect");
        assert_eq!(health_name(Some(Health::Down)), "down");
        assert_eq!(health_name(Some(Health::Draining)), "draining");
        assert_eq!(health_name(None), "unknown");
    }
}
