//! The workload registry: the string-keyed open end of the serve protocol.
//!
//! A `submit` request names a workload **kind** and carries an opaque
//! `params` object; the registry maps each kind to a decoder (params →
//! [`Workload`]) and an encoder ([`WorkloadOutput`] → outcome JSON). New
//! workloads therefore need **no protocol surgery**: implement the trait,
//! register a kind, and the daemon serves it — submission, progress
//! streaming, cancellation, admission control and all.
//!
//! [`WorkloadRegistry::builtin`] registers the four built-in kinds:
//!
//! | kind              | workload                                            |
//! |-------------------|-----------------------------------------------------|
//! | `sweep`           | [`SweepWorkload`]                                   |
//! | `compile`         | [`CompileWorkload`]                                 |
//! | `perturb_average` | [`PerturbAverageWorkload`]                          |
//! | `benchmark_suite` | [`BenchmarkSuiteWorkload`]                          |
//!
//! Register custom kinds before spawning the server:
//!
//! ```
//! use marqsim_serve::{Json, WorkloadRegistry};
//! use marqsim_engine::{EngineError, Workload, WorkloadCtx, WorkloadOutput};
//!
//! struct Nop(String);
//! impl Workload for Nop {
//!     fn label(&self) -> &str { &self.0 }
//!     fn total_units(&self) -> usize { 1 }
//!     fn run(&self, ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError> {
//!         ctx.report(1, 1);
//!         Ok(WorkloadOutput::new(()))
//!     }
//! }
//!
//! let mut registry = WorkloadRegistry::builtin();
//! registry.register(
//!     "nop",
//!     |label, _params| Ok(Box::new(Nop(label.to_string())) as Box<dyn Workload>),
//!     |_output| Ok(Json::obj([("kind", "nop".into())])),
//! );
//! assert!(registry.kinds().contains(&"nop".to_string()));
//! ```

use std::collections::BTreeMap;

use marqsim_core::perturb::PerturbationConfig;
use marqsim_engine::{
    BenchmarkSuiteResult, BenchmarkSuiteWorkload, CompileOutcome, CompileRequest, CompileWorkload,
    PerturbAverageResult, PerturbAverageWorkload, SweepRequest, SweepWorkload, Workload,
    WorkloadOutput,
};
use marqsim_pauli::Hamiltonian;

use crate::protocol::{
    bool_field, compile_summary_to_json, f64_field, field, perturb_result_to_json, str_field,
    strategy_from_json, suite_result_to_json, sweep_config_from_json, sweep_result_to_json,
    u64_field, usize_field, CompileSummary,
};
use crate::wire::Json;

/// Decodes a submit request's `params` object into a runnable workload.
/// The first argument is the client-chosen job label.
pub type DecodeFn = dyn Fn(&str, &Json) -> Result<Box<dyn Workload>, String> + Send + Sync;

/// Encodes a finished workload's output as the `outcome` object of the
/// `done` event. The returned object should carry a `"kind"` field so
/// clients can dispatch on it.
pub type EncodeFn = dyn Fn(&WorkloadOutput) -> Result<Json, String> + Send + Sync;

struct RegistryEntry {
    decode: Box<DecodeFn>,
    encode: Box<EncodeFn>,
}

/// Maps workload kinds to their wire codecs. See the [module docs](self).
pub struct WorkloadRegistry {
    entries: BTreeMap<String, RegistryEntry>,
}

impl Default for WorkloadRegistry {
    fn default() -> Self {
        WorkloadRegistry::builtin()
    }
}

impl WorkloadRegistry {
    /// A registry with no kinds at all (servers built on it reject every
    /// submit — useful for dedicated daemons that only serve custom kinds).
    pub fn empty() -> Self {
        WorkloadRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// The four built-in kinds: `sweep`, `compile`, `perturb_average`,
    /// `benchmark_suite`.
    pub fn builtin() -> Self {
        let mut registry = WorkloadRegistry::empty();
        registry.register("sweep", decode_sweep, encode_sweep);
        registry.register("compile", decode_compile, encode_compile);
        registry.register("perturb_average", decode_perturb, encode_perturb);
        registry.register("benchmark_suite", decode_suite, encode_suite);
        registry
    }

    /// Registers (or replaces) a kind.
    pub fn register<D, E>(&mut self, kind: impl Into<String>, decode: D, encode: E)
    where
        D: Fn(&str, &Json) -> Result<Box<dyn Workload>, String> + Send + Sync + 'static,
        E: Fn(&WorkloadOutput) -> Result<Json, String> + Send + Sync + 'static,
    {
        self.entries.insert(
            kind.into(),
            RegistryEntry {
                decode: Box::new(decode),
                encode: Box::new(encode),
            },
        );
    }

    /// The registered kinds, sorted (advertised in the `hello` event).
    pub fn kinds(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Decodes a submit request.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown kind (and the known ones) or
    /// describing the malformed params.
    pub fn decode(
        &self,
        kind: &str,
        label: &str,
        params: &Json,
    ) -> Result<Box<dyn Workload>, String> {
        match self.entries.get(kind) {
            Some(entry) => (entry.decode)(label, params),
            None => Err(format!(
                "unknown workload kind '{kind}' (this server serves: {})",
                self.kinds().join(", ")
            )),
        }
    }

    /// Encodes a finished job's output for its kind.
    ///
    /// # Errors
    ///
    /// Returns a message when the output's type does not match the kind's
    /// encoder.
    pub fn encode(&self, kind: &str, output: &WorkloadOutput) -> Result<Json, String> {
        match self.entries.get(kind) {
            Some(entry) => (entry.encode)(output),
            None => Err(format!("unknown workload kind '{kind}'")),
        }
    }
}

impl std::fmt::Debug for WorkloadRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Built-in codecs
// ---------------------------------------------------------------------------

fn parse_hamiltonian(json: &Json) -> Result<Hamiltonian, String> {
    let text = str_field(json, "hamiltonian").map_err(|e| e.message)?;
    Hamiltonian::parse(&text).map_err(|e| format!("invalid hamiltonian: {e}"))
}

fn decode_sweep(label: &str, params: &Json) -> Result<Box<dyn Workload>, String> {
    let ham = parse_hamiltonian(params)?;
    let strategy = strategy_from_json(field(params, "strategy").map_err(|e| e.message)?)
        .map_err(|e| e.message)?;
    let config = sweep_config_from_json(field(params, "config").map_err(|e| e.message)?)
        .map_err(|e| e.message)?;
    Ok(Box::new(SweepWorkload::new(SweepRequest::new(
        label, ham, strategy, config,
    ))))
}

fn encode_sweep(output: &WorkloadOutput) -> Result<Json, String> {
    output
        .downcast_ref::<marqsim_core::experiment::SweepResult>()
        .map(sweep_result_to_json)
        .ok_or_else(|| "sweep jobs produce SweepResult outputs".to_string())
}

fn decode_compile(label: &str, params: &Json) -> Result<Box<dyn Workload>, String> {
    let ham = parse_hamiltonian(params)?;
    let strategy = strategy_from_json(field(params, "strategy").map_err(|e| e.message)?)
        .map_err(|e| e.message)?;
    let time = f64_field(params, "time").map_err(|e| e.message)?;
    let epsilon = f64_field(params, "epsilon").map_err(|e| e.message)?;
    let seed = u64_field(params, "seed").map_err(|e| e.message)?;
    let evaluate_fidelity = bool_field(params, "evaluate_fidelity").map_err(|e| e.message)?;
    let config = marqsim_core::CompilerConfig::new(time, epsilon)
        .with_strategy(strategy)
        .with_seed(seed)
        .without_circuit();
    let mut request = CompileRequest::new(label, ham, config);
    if evaluate_fidelity {
        request = request.with_fidelity();
    }
    Ok(Box::new(CompileWorkload::new(request)))
}

fn encode_compile(output: &WorkloadOutput) -> Result<Json, String> {
    output
        .downcast_ref::<CompileOutcome>()
        .map(|compiled| {
            compile_summary_to_json(&CompileSummary {
                num_samples: compiled.result.num_samples,
                lambda: compiled.result.lambda,
                stats: compiled.result.stats,
                fidelity: compiled.fidelity,
            })
        })
        .ok_or_else(|| "compile jobs produce CompileOutcome outputs".to_string())
}

fn decode_perturb(label: &str, params: &Json) -> Result<Box<dyn Workload>, String> {
    let ham = parse_hamiltonian(params)?;
    let config = PerturbationConfig {
        samples: usize_field(params, "samples").map_err(|e| e.message)?,
        magnitude: f64_field(params, "magnitude").map_err(|e| e.message)?,
        probability: f64_field(params, "probability").map_err(|e| e.message)?,
        seed: u64_field(params, "seed").map_err(|e| e.message)?,
    };
    Ok(Box::new(PerturbAverageWorkload::new(label, ham, config)))
}

fn encode_perturb(output: &WorkloadOutput) -> Result<Json, String> {
    output
        .downcast_ref::<PerturbAverageResult>()
        .map(perturb_result_to_json)
        .ok_or_else(|| "perturb_average jobs produce PerturbAverageResult outputs".to_string())
}

fn decode_suite(label: &str, params: &Json) -> Result<Box<dyn Workload>, String> {
    let cases = field(params, "cases")
        .map_err(|e| e.message)?
        .as_arr()
        .ok_or_else(|| "field 'cases' must be an array".to_string())?;
    let mut suite = BenchmarkSuiteWorkload::new(label);
    for case in cases {
        let benchmark = str_field(case, "benchmark").map_err(|e| e.message)?;
        let ham = parse_hamiltonian(case)?;
        let strategy = strategy_from_json(field(case, "strategy").map_err(|e| e.message)?)
            .map_err(|e| e.message)?;
        let config = sweep_config_from_json(field(case, "config").map_err(|e| e.message)?)
            .map_err(|e| e.message)?;
        suite = suite.case(benchmark, ham, strategy, config);
    }
    if suite.is_empty() {
        return Err("a benchmark_suite submit needs at least one case".to_string());
    }
    Ok(Box::new(suite))
}

fn encode_suite(output: &WorkloadOutput) -> Result<Json, String> {
    output
        .downcast_ref::<BenchmarkSuiteResult>()
        .map(suite_result_to_json)
        .ok_or_else(|| "benchmark_suite jobs produce BenchmarkSuiteResult outputs".to_string())
}
