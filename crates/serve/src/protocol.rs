//! Typed protocol messages and their JSON encodings.
//!
//! One [`Request`] per client line, one [`Event`] per server line. The
//! protocol is versioned by the `hello` event the server sends on connect;
//! a client should check [`PROTOCOL_VERSION`] before submitting.
//!
//! # The open submit verb
//!
//! Protocol 2 generalizes `submit` from a closed job enum to a **workload
//! kind** plus an opaque `params` object. The server resolves the kind
//! through its [`WorkloadRegistry`](crate::WorkloadRegistry); the `hello`
//! event advertises the kinds a server accepts. New workloads therefore
//! change *no* protocol code — only a registry entry.
//!
//! # Verbs (client → server)
//!
//! ```json
//! {"verb":"auth","token":"s3cret"}
//! {"verb":"submit","label":"sweep/h2","kind":"sweep","params":{"hamiltonian":"0.9 ZZ + 0.5 XX","strategy":{"kind":"gate-cancellation","qdrift_weight":0.4},"config":{"time":0.5,"epsilons":[0.1,0.05],"repeats":3,"base_seed":1,"evaluate_fidelity":false}},"options":{"priority":"high","max_in_flight":4,"progress_units":100,"progress_ms":100}}
//! {"verb":"status","job":1}
//! {"verb":"cancel","job":1}
//! {"verb":"stats"}
//! {"verb":"drain","node":"127.0.0.1:7432"}
//! ```
//!
//! The `options` object is optional, as is each of its fields:
//! `priority` (`"low"`/`"normal"`/`"high"`), `max_in_flight` (admission
//! bound for this connection — tightens the server default, never raises
//! it), `progress_units` / `progress_ms` (progress coalescing — at most
//! one event per that many units / milliseconds; a lone `progress_ms`
//! disables the unit axis entirely), and `flow_solver` (the min-cost-flow
//! backend for this job's solves — one of the `hello` event's
//! `flow_solvers`; unset uses the server default).
//!
//! # Events (server → client)
//!
//! ```json
//! {"event":"hello","protocol":7,"role":"node","nodes":[],"auth":false,"threads":4,"workloads":["benchmark_suite","compile","perturb_average","sweep"],"flow_solver":"auto","flow_solvers":["ssp","network_simplex","auto"]}
//! {"event":"auth_ok"}
//! {"event":"submitted","job":1,"label":"sweep/h2"}
//! {"event":"busy","label":"sweep/h2","in_flight":4,"limit":4}
//! {"event":"progress","job":1,"completed":3,"total":6}
//! {"event":"done","job":1,"outcome":{"kind":"sweep",...},"cache_delta":{...},"flow_solver":"ssp"}
//! {"event":"failed","job":1,"kind":"cancelled","message":"..."}
//! {"event":"status","job":1,"known":true,"finished":false,"cancelled":false,"completed":3,"total":6}
//! {"event":"stats","threads":4,"cache":{...},"active_jobs":2,"queue_depth":17,"in_flight":1,"flow_solver":"auto","max_active_jobs":0}
//! {"event":"draining","node":"127.0.0.1:7432","in_flight":2}
//! {"event":"error","message":"..."}
//! ```
//!
//! A router's `hello` carries `role:"router"` plus its `nodes` list; events
//! it relays for routed jobs add a `node` field naming the owning daemon,
//! and its `stats` answer aggregates the fleet with a per-node breakdown
//! under `nodes`. A node that lost its daemon mid-job surfaces as
//! `failed` with `kind:"node_lost"`.
//!
//! Numbers follow the [`wire`](crate::wire) conventions: `u64` ids/seeds
//! are exact integers, floats use shortest-round-trip encoding, so a sweep
//! result decoded from the wire is bit-identical to the in-process result.

use std::time::Duration;

use marqsim_core::experiment::{ExperimentPoint, SweepConfig, SweepResult};
use marqsim_core::metrics::SequenceStats;
use marqsim_core::perturb::PerturbationConfig;
use marqsim_core::TransitionStrategy;
use marqsim_engine::{
    BenchmarkSuiteResult, CacheStats, EngineError, PerturbAverageResult, Priority, ProgressCadence,
    SolverKind, SubmitOptions, SuiteCaseResult,
};
use marqsim_markov::TransitionMatrix;

use crate::wire::{Json, WireError};

/// Version of the wire protocol; bumped on breaking changes. Version 2
/// introduced the open (kind + params) submit verb, submit options,
/// admission control (`busy`), and the extended `stats` event. Version 3
/// added min-cost-flow backend selection (`options.flow_solver`, advertised
/// in `hello`, echoed in `done`/`stats` with per-backend solve counters)
/// and the engine-wide `max_active_jobs` admission bound. Version 4 added
/// the telemetry surface: the `metrics` verb returning the process-wide
/// Prometheus-style text exposition plus this connection's request/byte
/// counters (see `docs/observability.md`). Version 5 added the
/// `warm_starts` counter to every cache-stats payload (`done` deltas and
/// the `stats` event): warm basis re-pivots are attributed separately
/// from cold `flow_solves`. Version 6 rebuilt the server as a
/// single-threaded event loop (same wire surface) and registered the
/// `auto` flow-solver policy: `hello.flow_solvers` now lists `auto`
/// alongside the concrete backends, `options.flow_solver` accepts it, and
/// a `done` event for an auto job echoes `"auto"` while its cache delta
/// attributes the solves to the backend the policy resolved to. Version 7
/// is the fleet protocol: `hello` advertises `role` (`node`/`router`),
/// the router's `nodes` list, and whether `auth` is required; the `auth`
/// verb carries the shared secret (`MARQSIM_SERVE_TOKEN`) and is answered
/// by `auth_ok`; routed-job events (`submitted`/`progress`/`done`/
/// `failed`) carry the owning `node`; a daemon that dies mid-job fails
/// its routed jobs with `kind:"node_lost"`; the `drain` verb starts a
/// planned removal (answered by `draining`); and a router's `stats`
/// answer aggregates the fleet with a per-node breakdown under `nodes`.
///
/// Backend names are part of the typed surface (decoders reject unknown
/// names), and clients enforce an exact version match at the handshake —
/// registering a new `SolverKind` therefore bumps this version; see
/// `docs/flow.md`.
pub const PROTOCOL_VERSION: u64 = 7;

/// What a server *is*, advertised in `hello`: a plain daemon running jobs
/// itself, or a router forwarding them across a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// A daemon executing jobs on its own engine.
    #[default]
    Node,
    /// A front-end forwarding jobs to fleet nodes by fingerprint.
    Router,
}

impl Role {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Node => "node",
            Role::Router => "router",
        }
    }
}

fn parse_role(name: &str) -> Result<Role, WireError> {
    match name {
        "node" => Ok(Role::Node),
        "router" => Ok(Role::Router),
        other => Err(WireError::shape(format!("unknown role '{other}'"))),
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Present the shared secret. Must be the first verb when the `hello`
    /// event set `auth:true`; answered by `auth_ok` or a fatal `error`.
    Auth {
        /// The shared secret (`MARQSIM_SERVE_TOKEN` on the server).
        token: String,
    },
    /// Submit one workload; the server answers with `submitted` carrying
    /// the job id (or `busy` when the connection's admission bound is hit),
    /// then streams `progress` and finally `done` / `failed`.
    Submit {
        /// Client-chosen label echoed in every event about this job.
        label: String,
        /// Workload kind, resolved through the server's registry.
        kind: String,
        /// Kind-specific parameters, passed to the registry decoder as-is.
        params: Json,
        /// Typed submission options (priority, admission, progress cadence).
        options: SubmitOptions,
    },
    /// Query one job's state.
    Status {
        /// Job id from `submitted`.
        job: u64,
    },
    /// Request cooperative cancellation of one job.
    Cancel {
        /// Job id from `submitted`.
        job: u64,
    },
    /// Query engine-wide statistics.
    Stats,
    /// Query the process-wide telemetry registry (Prometheus-style text
    /// exposition) plus this connection's request/byte counters.
    Metrics,
    /// Ask a router to gracefully remove a fleet node: stop routing new
    /// work to it, let its in-flight jobs finish, then drop it. Answered
    /// by `draining` (or `error` for an unknown node / non-router).
    Drain {
        /// The node's advertised name (`host:port` from `hello.nodes`).
        node: String,
    },
}

/// One fleet node's slice of a router's `stats` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStats {
    /// The node's advertised name (`host:port`).
    pub node: String,
    /// The node's health as the router sees it (`"up"`, `"suspect"`,
    /// `"down"`, `"draining"`).
    pub health: String,
    /// The node's own stats answer; zeroed for an unreachable node.
    pub stats: ServerStats,
}

/// The payload of the `stats` event.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Engine worker-thread count.
    pub threads: usize,
    /// Engine-wide cache counters.
    pub cache: CacheStats,
    /// Jobs submitted (engine-wide) that have not yet produced an outcome.
    pub active_jobs: usize,
    /// Point-level tasks waiting in the pool's injector.
    pub queue_depth: usize,
    /// In-flight jobs on *this* connection (what the per-connection
    /// admission bound compares against).
    pub in_flight: usize,
    /// The engine's default min-cost-flow backend.
    pub flow_solver: SolverKind,
    /// Engine-wide active-job admission bound across all connections
    /// (`MARQSIM_MAX_ACTIVE_JOBS`); `0` means unlimited.
    pub max_active_jobs: usize,
    /// A router's per-node breakdown (the aggregate is in the top-level
    /// fields); empty for a plain node.
    pub per_node: Vec<NodeStats>,
}

/// A server event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// First line of every connection.
    Hello {
        /// [`PROTOCOL_VERSION`] of the server.
        protocol: u64,
        /// Whether this server runs jobs itself or routes them.
        role: Role,
        /// A router's fleet node names; empty for a plain node.
        nodes: Vec<String>,
        /// Whether the `auth` verb must precede every other verb.
        auth: bool,
        /// Engine worker-thread count.
        threads: usize,
        /// Workload kinds this server accepts, sorted.
        workloads: Vec<String>,
        /// The engine's default min-cost-flow backend.
        flow_solver: SolverKind,
        /// Every registered backend a submit's `options.flow_solver` may
        /// name.
        flow_solvers: Vec<String>,
    },
    /// The shared secret in `auth` matched; every verb is now accepted.
    AuthOk,
    /// Acknowledges a `submit`; all later events about this job carry `job`.
    Submitted {
        /// Engine-unique job id.
        job: u64,
        /// The label from the request.
        label: String,
        /// The fleet node the job routed to (router connections only).
        node: Option<String>,
    },
    /// A `submit` was rejected by admission control: the connection already
    /// has `in_flight` unfinished jobs against a bound of `limit`. Nothing
    /// was queued; resubmit after a `done`/`failed` event frees a slot.
    Busy {
        /// The label of the rejected request (no job id was assigned).
        label: String,
        /// In-flight jobs on this connection at rejection time.
        in_flight: usize,
        /// The effective admission bound.
        limit: usize,
    },
    /// One unit of the job finished (subject to the submit's progress
    /// cadence).
    Progress {
        /// Job id.
        job: u64,
        /// Units finished so far.
        completed: usize,
        /// Total units of the job.
        total: usize,
        /// The fleet node running the job (router connections only).
        node: Option<String>,
    },
    /// The job finished successfully.
    Done {
        /// Job id.
        job: u64,
        /// The result.
        outcome: Outcome,
        /// Cache-counter delta attributed to this job (snapshot difference
        /// between submission and completion; concurrent jobs' activity can
        /// bleed into each other's windows).
        cache_delta: CacheStats,
        /// The min-cost-flow backend this job's solves used (the submit's
        /// `options.flow_solver`, or the server default).
        flow_solver: SolverKind,
        /// The fleet node that ran the job (router connections only).
        node: Option<String>,
    },
    /// The job failed or was cancelled.
    Failed {
        /// Job id.
        job: u64,
        /// `"compile"`, `"panic"`, `"cancelled"`, `"workload"`,
        /// `"invalid-config"`, `"encode"` (registry encoder rejected the
        /// output), or `"node_lost"` (the fleet node running the job died).
        kind: String,
        /// Human-readable description.
        message: String,
        /// The fleet node the job was on (router connections only).
        node: Option<String>,
    },
    /// Answer to `status`.
    Status {
        /// Job id queried.
        job: u64,
        /// Whether the server knows this job (ids are per connection).
        known: bool,
        /// Whether the outcome has been produced.
        finished: bool,
        /// Whether cancellation has been requested.
        cancelled: bool,
        /// Units finished so far.
        completed: usize,
        /// Total units (0 until expansion).
        total: usize,
    },
    /// Answer to `stats`.
    Stats(ServerStats),
    /// Answer to `metrics`.
    Metrics {
        /// The process-wide metrics registry rendered as Prometheus-style
        /// text exposition (counters, gauges, cumulative histograms).
        exposition: String,
        /// Requests this connection has sent, including the `metrics`
        /// request being answered.
        requests: u64,
        /// Bytes read from this connection so far.
        bytes_in: u64,
        /// Bytes written to this connection before this event.
        bytes_out: u64,
    },
    /// Acknowledges a `drain`: the router stopped routing new work to the
    /// node and will drop it once its in-flight jobs finish.
    Draining {
        /// The node being drained.
        node: String,
        /// Routed jobs still running on the node at drain time.
        in_flight: usize,
    },
    /// A request could not be understood or carried invalid data. The
    /// connection stays open.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// A finished job's payload. Built-in kinds decode to typed variants; any
/// other kind (a custom registry entry) decodes to [`Outcome::Other`] with
/// the raw JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Result of a `sweep` job.
    Sweep(SweepResult),
    /// Summary of a `compile` job.
    Compile(CompileSummary),
    /// Result of a `perturb_average` job (bit-exact matrix round trip).
    PerturbAverage(PerturbAverageResult),
    /// Result of a `benchmark_suite` job.
    Suite(BenchmarkSuiteResult),
    /// A custom workload kind's outcome, as raw JSON.
    Other {
        /// The `kind` field of the outcome object.
        kind: String,
        /// The full outcome object.
        value: Json,
    },
}

/// The wire summary of a compile job (the full `CompileResult` holds the
/// sampled sequence and circuit, which are orders of magnitude larger than
/// what remote evaluation consumers need).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileSummary {
    /// Number of sampling steps `N`.
    pub num_samples: usize,
    /// `λ = Σ_j |h_j|`.
    pub lambda: f64,
    /// Sequence-level gate statistics.
    pub stats: SequenceStats,
    /// Unitary fidelity, when requested.
    pub fidelity: Option<f64>,
}

// ---------------------------------------------------------------------------
// Field-access helpers (shared with the registry codecs)
// ---------------------------------------------------------------------------

pub(crate) fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    obj.get(key)
        .ok_or_else(|| WireError::shape(format!("missing field '{key}'")))
}

pub(crate) fn str_field(obj: &Json, key: &str) -> Result<String, WireError> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be a string")))
}

pub(crate) fn u64_field(obj: &Json, key: &str) -> Result<u64, WireError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be an unsigned integer")))
}

pub(crate) fn usize_field(obj: &Json, key: &str) -> Result<usize, WireError> {
    field(obj, key)?
        .as_usize()
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be an unsigned integer")))
}

pub(crate) fn f64_field(obj: &Json, key: &str) -> Result<f64, WireError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be a number")))
}

pub(crate) fn bool_field(obj: &Json, key: &str) -> Result<bool, WireError> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be a boolean")))
}

fn opt_str_field(obj: &Json, key: &str) -> Result<Option<String>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(value) if value.is_null() => Ok(None),
        Some(value) => value
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| WireError::shape(format!("field '{key}' must be a string or null"))),
    }
}

fn opt_f64_field(obj: &Json, key: &str) -> Result<Option<f64>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(value) if value.is_null() => Ok(None),
        Some(value) => value
            .as_f64()
            .map(Some)
            .ok_or_else(|| WireError::shape(format!("field '{key}' must be a number or null"))),
    }
}

fn opt_usize_field(obj: &Json, key: &str) -> Result<Option<usize>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(value) if value.is_null() => Ok(None),
        Some(value) => value.as_usize().map(Some).ok_or_else(|| {
            WireError::shape(format!("field '{key}' must be an unsigned integer or null"))
        }),
    }
}

// ---------------------------------------------------------------------------
// Strategy / config codecs
// ---------------------------------------------------------------------------

fn perturbation_to_json(p: &PerturbationConfig) -> Json {
    Json::obj([
        ("samples", p.samples.into()),
        ("magnitude", p.magnitude.into()),
        ("probability", p.probability.into()),
        ("seed", p.seed.into()),
    ])
}

fn perturbation_from_json(json: &Json) -> Result<PerturbationConfig, WireError> {
    Ok(PerturbationConfig {
        samples: usize_field(json, "samples")?,
        magnitude: f64_field(json, "magnitude")?,
        probability: f64_field(json, "probability")?,
        seed: u64_field(json, "seed")?,
    })
}

/// Encodes a strategy (public: clients build submit params from it).
pub fn strategy_to_json(strategy: &TransitionStrategy) -> Json {
    match strategy {
        TransitionStrategy::QDrift => Json::obj([("kind", "qdrift".into())]),
        TransitionStrategy::GateCancellation { qdrift_weight } => Json::obj([
            ("kind", "gate-cancellation".into()),
            ("qdrift_weight", (*qdrift_weight).into()),
        ]),
        TransitionStrategy::GateCancellationRandomPerturbation {
            qdrift_weight,
            gc_weight,
            perturbation,
        } => Json::obj([
            ("kind", "gc-rp".into()),
            ("qdrift_weight", (*qdrift_weight).into()),
            ("gc_weight", (*gc_weight).into()),
            ("perturbation", perturbation_to_json(perturbation)),
        ]),
        TransitionStrategy::Combined {
            qdrift_weight,
            gc_weight,
            rp_weight,
            perturbation,
        } => Json::obj([
            ("kind", "combined".into()),
            ("qdrift_weight", (*qdrift_weight).into()),
            ("gc_weight", (*gc_weight).into()),
            ("rp_weight", (*rp_weight).into()),
            ("perturbation", perturbation_to_json(perturbation)),
        ]),
    }
}

/// Decodes a strategy.
///
/// # Errors
///
/// Returns a shape [`WireError`] for unknown kinds or missing fields.
pub fn strategy_from_json(json: &Json) -> Result<TransitionStrategy, WireError> {
    let kind = str_field(json, "kind")?;
    match kind.as_str() {
        "qdrift" => Ok(TransitionStrategy::QDrift),
        "gate-cancellation" => Ok(TransitionStrategy::GateCancellation {
            qdrift_weight: f64_field(json, "qdrift_weight")?,
        }),
        "gc-rp" => Ok(TransitionStrategy::GateCancellationRandomPerturbation {
            qdrift_weight: f64_field(json, "qdrift_weight")?,
            gc_weight: f64_field(json, "gc_weight")?,
            perturbation: perturbation_from_json(field(json, "perturbation")?)?,
        }),
        "combined" => Ok(TransitionStrategy::Combined {
            qdrift_weight: f64_field(json, "qdrift_weight")?,
            gc_weight: f64_field(json, "gc_weight")?,
            rp_weight: f64_field(json, "rp_weight")?,
            perturbation: perturbation_from_json(field(json, "perturbation")?)?,
        }),
        other => Err(WireError::shape(format!("unknown strategy kind '{other}'"))),
    }
}

fn sweep_config_to_json(config: &SweepConfig) -> Json {
    Json::obj([
        ("time", config.time.into()),
        (
            "epsilons",
            Json::Arr(config.epsilons.iter().map(|&e| e.into()).collect()),
        ),
        ("repeats", config.repeats.into()),
        ("base_seed", config.base_seed.into()),
        ("evaluate_fidelity", config.evaluate_fidelity.into()),
    ])
}

/// Decodes a sweep configuration (shared with the registry codecs).
///
/// # Errors
///
/// Returns a shape [`WireError`] on malformed input.
pub fn sweep_config_from_json(json: &Json) -> Result<SweepConfig, WireError> {
    let epsilons = field(json, "epsilons")?
        .as_arr()
        .ok_or_else(|| WireError::shape("field 'epsilons' must be an array"))?
        .iter()
        .map(|e| {
            e.as_f64()
                .ok_or_else(|| WireError::shape("epsilons must be numbers"))
        })
        .collect::<Result<Vec<f64>, WireError>>()?;
    Ok(SweepConfig {
        time: f64_field(json, "time")?,
        epsilons,
        repeats: usize_field(json, "repeats")?,
        base_seed: u64_field(json, "base_seed")?,
        evaluate_fidelity: bool_field(json, "evaluate_fidelity")?,
    })
}

// ---------------------------------------------------------------------------
// Submit-params builders (client side)
// ---------------------------------------------------------------------------

/// Builds the `params` object of a `sweep` submit. The Hamiltonian travels
/// in the `marqsim_pauli::Hamiltonian::parse` textual format (coefficients
/// use shortest-round-trip float formatting, so the parse is exact).
pub fn sweep_params(
    hamiltonian: &str,
    strategy: &TransitionStrategy,
    config: &SweepConfig,
) -> Json {
    Json::obj([
        ("hamiltonian", hamiltonian.into()),
        ("strategy", strategy_to_json(strategy)),
        ("config", sweep_config_to_json(config)),
    ])
}

/// Builds the `params` object of a `compile` submit.
pub fn compile_params(
    hamiltonian: &str,
    strategy: &TransitionStrategy,
    time: f64,
    epsilon: f64,
    seed: u64,
    evaluate_fidelity: bool,
) -> Json {
    Json::obj([
        ("hamiltonian", hamiltonian.into()),
        ("strategy", strategy_to_json(strategy)),
        ("time", time.into()),
        ("epsilon", epsilon.into()),
        ("seed", seed.into()),
        ("evaluate_fidelity", evaluate_fidelity.into()),
    ])
}

/// Builds the `params` object of a `perturb_average` submit.
pub fn perturb_params(hamiltonian: &str, config: &PerturbationConfig) -> Json {
    Json::obj([
        ("hamiltonian", hamiltonian.into()),
        ("samples", config.samples.into()),
        ("magnitude", config.magnitude.into()),
        ("probability", config.probability.into()),
        ("seed", config.seed.into()),
    ])
}

/// Builds the `params` object of a `benchmark_suite` submit from
/// `(benchmark, hamiltonian, strategy, config)` cases.
pub fn suite_params(cases: &[(String, String, TransitionStrategy, SweepConfig)]) -> Json {
    Json::obj([(
        "cases",
        Json::Arr(
            cases
                .iter()
                .map(|(benchmark, hamiltonian, strategy, config)| {
                    Json::obj([
                        ("benchmark", benchmark.as_str().into()),
                        ("hamiltonian", hamiltonian.as_str().into()),
                        ("strategy", strategy_to_json(strategy)),
                        ("config", sweep_config_to_json(config)),
                    ])
                })
                .collect(),
        ),
    )])
}

// ---------------------------------------------------------------------------
// Submit-options codec
// ---------------------------------------------------------------------------

fn options_to_json(options: &SubmitOptions) -> Json {
    let mut fields: Vec<(&str, Json)> = Vec::new();
    if options.priority != Priority::Normal {
        fields.push(("priority", options.priority.as_str().into()));
    }
    if let Some(max_in_flight) = options.max_in_flight {
        fields.push(("max_in_flight", max_in_flight.into()));
    }
    // `progress_units` is omitted only when the decoder reconstructs the
    // identical cadence without it: the every-unit default (units=1, no
    // interval) and the interval-only marker (units=usize::MAX, which a
    // lone `progress_ms` implies). In particular units=1 *with* an
    // interval must be written explicitly, or the decode would flip it to
    // interval-only and change progress behavior over the wire.
    let cadence = options.progress_every;
    let implied = (cadence.units == 1 && cadence.interval.is_none())
        || (cadence.units == usize::MAX && cadence.interval.is_some());
    if !implied {
        fields.push(("progress_units", cadence.units.into()));
    }
    if let Some(interval) = options.progress_every.interval {
        fields.push(("progress_ms", (interval.as_millis() as u64).into()));
    }
    if let Some(solver) = options.flow_solver {
        fields.push(("flow_solver", solver.as_str().into()));
    }
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn options_from_json(json: Option<&Json>) -> Result<SubmitOptions, WireError> {
    let mut options = SubmitOptions::default();
    let Some(json) = json else {
        return Ok(options);
    };
    if let Some(priority) = json.get("priority") {
        let spelling = priority
            .as_str()
            .ok_or_else(|| WireError::shape("field 'priority' must be a string"))?;
        options.priority = Priority::parse(spelling).ok_or_else(|| {
            WireError::shape(format!(
                "unknown priority '{spelling}' (use low/normal/high)"
            ))
        })?;
    }
    options.max_in_flight = opt_usize_field(json, "max_in_flight")?;
    let units = opt_usize_field(json, "progress_units")?;
    let interval = match json.get("progress_ms") {
        Some(_) => Some(Duration::from_millis(u64_field(json, "progress_ms")?)),
        None => None,
    };
    options.progress_every = match (units, interval) {
        (None, None) => ProgressCadence::default(),
        (Some(units), None) => ProgressCadence::every(units),
        (Some(units), Some(interval)) => ProgressCadence::every(units).with_interval(interval),
        // Interval-only: the unit axis must be disabled, or the default
        // units=1 would emit on every report and the interval would never
        // coalesce anything.
        (None, Some(interval)) => ProgressCadence::every_interval(interval),
    };
    if let Some(solver) = json.get("flow_solver") {
        let spelling = solver
            .as_str()
            .ok_or_else(|| WireError::shape("field 'flow_solver' must be a string"))?;
        options.flow_solver = Some(parse_solver(spelling)?);
    }
    Ok(options)
}

/// Parses a wire backend name with a diagnostic naming the valid spellings.
fn parse_solver(spelling: &str) -> Result<SolverKind, WireError> {
    SolverKind::parse(spelling).ok_or_else(|| {
        WireError::shape(format!(
            "unknown flow solver '{spelling}' (use {})",
            SolverKind::SELECTABLE.map(SolverKind::as_str).join("/")
        ))
    })
}

// ---------------------------------------------------------------------------
// Result codecs
// ---------------------------------------------------------------------------

fn stats_to_json(stats: &SequenceStats) -> Json {
    Json::obj([
        ("cnot", stats.cnot.into()),
        ("single_qubit", stats.single_qubit.into()),
        ("rz", stats.rz.into()),
        ("total", stats.total.into()),
        ("segments", stats.segments.into()),
    ])
}

fn stats_from_json(json: &Json) -> Result<SequenceStats, WireError> {
    Ok(SequenceStats {
        cnot: usize_field(json, "cnot")?,
        single_qubit: usize_field(json, "single_qubit")?,
        rz: usize_field(json, "rz")?,
        total: usize_field(json, "total")?,
        segments: usize_field(json, "segments")?,
    })
}

fn point_to_json(point: &ExperimentPoint) -> Json {
    Json::obj([
        ("epsilon", point.epsilon.into()),
        ("seed", point.seed.into()),
        ("num_samples", point.num_samples.into()),
        ("stats", stats_to_json(&point.stats)),
        ("fidelity", point.fidelity.into()),
    ])
}

fn point_from_json(json: &Json) -> Result<ExperimentPoint, WireError> {
    Ok(ExperimentPoint {
        epsilon: f64_field(json, "epsilon")?,
        seed: u64_field(json, "seed")?,
        num_samples: usize_field(json, "num_samples")?,
        stats: stats_from_json(field(json, "stats")?)?,
        fidelity: opt_f64_field(json, "fidelity")?,
    })
}

/// Encodes a sweep result.
pub fn sweep_result_to_json(result: &SweepResult) -> Json {
    Json::obj([
        ("kind", "sweep".into()),
        ("label", result.label.as_str().into()),
        (
            "points",
            Json::Arr(result.points.iter().map(point_to_json).collect()),
        ),
    ])
}

/// Decodes a sweep result.
///
/// # Errors
///
/// Returns a shape [`WireError`] on malformed input.
pub fn sweep_result_from_json(json: &Json) -> Result<SweepResult, WireError> {
    let points = field(json, "points")?
        .as_arr()
        .ok_or_else(|| WireError::shape("field 'points' must be an array"))?
        .iter()
        .map(point_from_json)
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(SweepResult {
        label: str_field(json, "label")?,
        points,
    })
}

/// Encodes a compile summary as a `compile` outcome object.
pub fn compile_summary_to_json(summary: &CompileSummary) -> Json {
    Json::obj([
        ("kind", "compile".into()),
        ("num_samples", summary.num_samples.into()),
        ("lambda", summary.lambda.into()),
        ("stats", stats_to_json(&summary.stats)),
        ("fidelity", summary.fidelity.into()),
    ])
}

fn compile_summary_from_json(json: &Json) -> Result<CompileSummary, WireError> {
    Ok(CompileSummary {
        num_samples: usize_field(json, "num_samples")?,
        lambda: f64_field(json, "lambda")?,
        stats: stats_from_json(field(json, "stats")?)?,
        fidelity: opt_f64_field(json, "fidelity")?,
    })
}

/// Encodes a perturbation-average result as a `perturb_average` outcome
/// object (the full matrix, bit-exact floats).
pub fn perturb_result_to_json(result: &PerturbAverageResult) -> Json {
    Json::obj([
        ("kind", "perturb_average".into()),
        ("label", result.label.as_str().into()),
        ("samples", result.samples.into()),
        (
            "matrix",
            Json::Arr(
                result
                    .matrix
                    .rows()
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|&p| p.into()).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn perturb_result_from_json(json: &Json) -> Result<PerturbAverageResult, WireError> {
    let rows = field(json, "matrix")?
        .as_arr()
        .ok_or_else(|| WireError::shape("field 'matrix' must be an array"))?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| WireError::shape("matrix rows must be arrays"))?
                .iter()
                .map(|p| {
                    p.as_f64()
                        .ok_or_else(|| WireError::shape("matrix entries must be numbers"))
                })
                .collect::<Result<Vec<f64>, WireError>>()
        })
        .collect::<Result<Vec<Vec<f64>>, WireError>>()?;
    let matrix = TransitionMatrix::new(rows)
        .map_err(|e| WireError::shape(format!("matrix is not row-stochastic: {e}")))?;
    Ok(PerturbAverageResult {
        label: str_field(json, "label")?,
        samples: usize_field(json, "samples")?,
        matrix,
    })
}

/// Encodes a benchmark-suite result as a `benchmark_suite` outcome object.
pub fn suite_result_to_json(result: &BenchmarkSuiteResult) -> Json {
    Json::obj([
        ("kind", "benchmark_suite".into()),
        (
            "cases",
            Json::Arr(
                result
                    .cases
                    .iter()
                    .map(|case| {
                        Json::obj([
                            ("benchmark", case.benchmark.as_str().into()),
                            ("strategy", case.strategy.as_str().into()),
                            ("sweep", sweep_result_to_json(&case.sweep)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn suite_result_from_json(json: &Json) -> Result<BenchmarkSuiteResult, WireError> {
    let cases = field(json, "cases")?
        .as_arr()
        .ok_or_else(|| WireError::shape("field 'cases' must be an array"))?
        .iter()
        .map(|case| {
            Ok(SuiteCaseResult {
                benchmark: str_field(case, "benchmark")?,
                strategy: str_field(case, "strategy")?,
                sweep: sweep_result_from_json(field(case, "sweep")?)?,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(BenchmarkSuiteResult { cases })
}

fn cache_stats_to_json(stats: &CacheStats) -> Json {
    Json::obj([
        ("hits", stats.hits.into()),
        ("misses", stats.misses.into()),
        ("component_hits", stats.component_hits.into()),
        ("flow_solves", stats.flow_solves.into()),
        ("flow_solves_ssp", stats.flow_solves_ssp.into()),
        ("flow_solves_simplex", stats.flow_solves_simplex.into()),
        ("warm_starts", stats.warm_starts.into()),
        ("disk_hits", stats.disk_hits.into()),
        ("disk_writes", stats.disk_writes.into()),
        ("disk_errors", stats.disk_errors.into()),
        ("evictions", stats.evictions.into()),
        ("graphs", stats.graphs.into()),
        ("components", stats.components.into()),
    ])
}

fn cache_stats_from_json(json: &Json) -> Result<CacheStats, WireError> {
    Ok(CacheStats {
        hits: u64_field(json, "hits")?,
        misses: u64_field(json, "misses")?,
        component_hits: u64_field(json, "component_hits")?,
        flow_solves: u64_field(json, "flow_solves")?,
        flow_solves_ssp: u64_field(json, "flow_solves_ssp")?,
        flow_solves_simplex: u64_field(json, "flow_solves_simplex")?,
        warm_starts: u64_field(json, "warm_starts")?,
        disk_hits: u64_field(json, "disk_hits")?,
        disk_writes: u64_field(json, "disk_writes")?,
        disk_errors: u64_field(json, "disk_errors")?,
        evictions: u64_field(json, "evictions")?,
        graphs: usize_field(json, "graphs")?,
        components: usize_field(json, "components")?,
    })
}

fn outcome_to_json(outcome: &Outcome) -> Json {
    match outcome {
        Outcome::Sweep(result) => sweep_result_to_json(result),
        Outcome::Compile(summary) => compile_summary_to_json(summary),
        Outcome::PerturbAverage(result) => perturb_result_to_json(result),
        Outcome::Suite(result) => suite_result_to_json(result),
        Outcome::Other { value, .. } => value.clone(),
    }
}

fn outcome_from_json(json: &Json) -> Result<Outcome, WireError> {
    let kind = str_field(json, "kind")?;
    match kind.as_str() {
        "sweep" => Ok(Outcome::Sweep(sweep_result_from_json(json)?)),
        "compile" => Ok(Outcome::Compile(compile_summary_from_json(json)?)),
        "perturb_average" => Ok(Outcome::PerturbAverage(perturb_result_from_json(json)?)),
        "benchmark_suite" => Ok(Outcome::Suite(suite_result_from_json(json)?)),
        _ => Ok(Outcome::Other {
            kind,
            value: json.clone(),
        }),
    }
}

/// The failure-kind string for an [`EngineError`] (the `kind` field of
/// `failed` events).
pub fn failure_kind(error: &EngineError) -> &'static str {
    match error {
        EngineError::Compile { .. } => "compile",
        EngineError::WorkerPanic { .. } => "panic",
        EngineError::InvalidConfig { .. } => "invalid-config",
        EngineError::Cancelled { .. } => "cancelled",
        EngineError::Workload { .. } => "workload",
    }
}

// ---------------------------------------------------------------------------
// Top-level message codecs
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes the request as one wire line (without the trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    fn to_json(&self) -> Json {
        match self {
            Request::Auth { token } => {
                Json::obj([("verb", "auth".into()), ("token", token.as_str().into())])
            }
            Request::Submit {
                label,
                kind,
                params,
                options,
            } => {
                if *options == SubmitOptions::default() {
                    Json::obj([
                        ("verb", "submit".into()),
                        ("label", label.as_str().into()),
                        ("kind", kind.as_str().into()),
                        ("params", params.clone()),
                    ])
                } else {
                    Json::obj([
                        ("verb", "submit".into()),
                        ("label", label.as_str().into()),
                        ("kind", kind.as_str().into()),
                        ("params", params.clone()),
                        ("options", options_to_json(options)),
                    ])
                }
            }
            Request::Status { job } => {
                Json::obj([("verb", "status".into()), ("job", (*job).into())])
            }
            Request::Cancel { job } => {
                Json::obj([("verb", "cancel".into()), ("job", (*job).into())])
            }
            Request::Stats => Json::obj([("verb", "stats".into())]),
            Request::Metrics => Json::obj([("verb", "metrics".into())]),
            Request::Drain { node } => {
                Json::obj([("verb", "drain".into()), ("node", node.as_str().into())])
            }
        }
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed JSON or an unknown shape.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let json = Json::parse(line)?;
        match str_field(&json, "verb")?.as_str() {
            "auth" => Ok(Request::Auth {
                token: str_field(&json, "token")?,
            }),
            "submit" => Ok(Request::Submit {
                label: str_field(&json, "label")?,
                kind: str_field(&json, "kind")?,
                params: field(&json, "params")?.clone(),
                options: options_from_json(json.get("options"))?,
            }),
            "status" => Ok(Request::Status {
                job: u64_field(&json, "job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: u64_field(&json, "job")?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "drain" => Ok(Request::Drain {
                node: str_field(&json, "node")?,
            }),
            other => Err(WireError::shape(format!("unknown verb '{other}'"))),
        }
    }
}

/// Appends `("node", name)` to an object for events relayed by a router;
/// plain-node events omit the field entirely.
fn with_node(mut json: Json, node: &Option<String>) -> Json {
    if let (Json::Obj(fields), Some(node)) = (&mut json, node) {
        fields.push(("node".to_string(), node.as_str().into()));
    }
    json
}

/// Decodes an array-of-strings field.
fn string_list(obj: &Json, key: &str) -> Result<Vec<String>, WireError> {
    field(obj, key)?
        .as_arr()
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be an array")))?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| WireError::shape(format!("'{key}' entries must be strings")))
        })
        .collect()
}

/// The stats fields as a bare object — the shape nested under a router's
/// per-node breakdown (the top-level `stats` event inlines the same
/// fields next to its `event` key).
fn server_stats_body(stats: &ServerStats) -> Json {
    Json::obj([
        ("threads", stats.threads.into()),
        ("cache", cache_stats_to_json(&stats.cache)),
        ("active_jobs", stats.active_jobs.into()),
        ("queue_depth", stats.queue_depth.into()),
        ("in_flight", stats.in_flight.into()),
        ("flow_solver", stats.flow_solver.as_str().into()),
        ("max_active_jobs", stats.max_active_jobs.into()),
    ])
}

/// Decodes the stats fields of `json` (an event object or a nested body),
/// leaving `per_node` empty for the caller to fill.
fn server_stats_core(json: &Json) -> Result<ServerStats, WireError> {
    Ok(ServerStats {
        threads: usize_field(json, "threads")?,
        cache: cache_stats_from_json(field(json, "cache")?)?,
        active_jobs: usize_field(json, "active_jobs")?,
        queue_depth: usize_field(json, "queue_depth")?,
        in_flight: usize_field(json, "in_flight")?,
        flow_solver: parse_solver(&str_field(json, "flow_solver")?)?,
        max_active_jobs: usize_field(json, "max_active_jobs")?,
        per_node: Vec::new(),
    })
}

impl Event {
    /// Encodes the event as one wire line (without the trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    fn to_json(&self) -> Json {
        match self {
            Event::Hello {
                protocol,
                role,
                nodes,
                auth,
                threads,
                workloads,
                flow_solver,
                flow_solvers,
            } => Json::obj([
                ("event", "hello".into()),
                ("protocol", (*protocol).into()),
                ("role", role.as_str().into()),
                (
                    "nodes",
                    Json::Arr(nodes.iter().map(|n| n.as_str().into()).collect()),
                ),
                ("auth", (*auth).into()),
                ("threads", (*threads).into()),
                (
                    "workloads",
                    Json::Arr(workloads.iter().map(|k| k.as_str().into()).collect()),
                ),
                ("flow_solver", flow_solver.as_str().into()),
                (
                    "flow_solvers",
                    Json::Arr(flow_solvers.iter().map(|k| k.as_str().into()).collect()),
                ),
            ]),
            Event::AuthOk => Json::obj([("event", "auth_ok".into())]),
            Event::Submitted { job, label, node } => with_node(
                Json::obj([
                    ("event", "submitted".into()),
                    ("job", (*job).into()),
                    ("label", label.as_str().into()),
                ]),
                node,
            ),
            Event::Busy {
                label,
                in_flight,
                limit,
            } => Json::obj([
                ("event", "busy".into()),
                ("label", label.as_str().into()),
                ("in_flight", (*in_flight).into()),
                ("limit", (*limit).into()),
            ]),
            Event::Progress {
                job,
                completed,
                total,
                node,
            } => with_node(
                Json::obj([
                    ("event", "progress".into()),
                    ("job", (*job).into()),
                    ("completed", (*completed).into()),
                    ("total", (*total).into()),
                ]),
                node,
            ),
            Event::Done {
                job,
                outcome,
                cache_delta,
                flow_solver,
                node,
            } => with_node(
                Json::obj([
                    ("event", "done".into()),
                    ("job", (*job).into()),
                    ("outcome", outcome_to_json(outcome)),
                    ("cache_delta", cache_stats_to_json(cache_delta)),
                    ("flow_solver", flow_solver.as_str().into()),
                ]),
                node,
            ),
            Event::Failed {
                job,
                kind,
                message,
                node,
            } => with_node(
                Json::obj([
                    ("event", "failed".into()),
                    ("job", (*job).into()),
                    ("kind", kind.as_str().into()),
                    ("message", message.as_str().into()),
                ]),
                node,
            ),
            Event::Status {
                job,
                known,
                finished,
                cancelled,
                completed,
                total,
            } => Json::obj([
                ("event", "status".into()),
                ("job", (*job).into()),
                ("known", (*known).into()),
                ("finished", (*finished).into()),
                ("cancelled", (*cancelled).into()),
                ("completed", (*completed).into()),
                ("total", (*total).into()),
            ]),
            Event::Stats(stats) => {
                let mut json = Json::obj([
                    ("event", "stats".into()),
                    ("threads", stats.threads.into()),
                    ("cache", cache_stats_to_json(&stats.cache)),
                    ("active_jobs", stats.active_jobs.into()),
                    ("queue_depth", stats.queue_depth.into()),
                    ("in_flight", stats.in_flight.into()),
                    ("flow_solver", stats.flow_solver.as_str().into()),
                    ("max_active_jobs", stats.max_active_jobs.into()),
                ]);
                if !stats.per_node.is_empty() {
                    if let Json::Obj(fields) = &mut json {
                        let entries = stats
                            .per_node
                            .iter()
                            .map(|entry| {
                                Json::obj([
                                    ("node", entry.node.as_str().into()),
                                    ("health", entry.health.as_str().into()),
                                    ("stats", server_stats_body(&entry.stats)),
                                ])
                            })
                            .collect();
                        fields.push(("nodes".to_string(), Json::Arr(entries)));
                    }
                }
                json
            }
            Event::Metrics {
                exposition,
                requests,
                bytes_in,
                bytes_out,
            } => Json::obj([
                ("event", "metrics".into()),
                ("exposition", exposition.as_str().into()),
                ("requests", (*requests).into()),
                ("bytes_in", (*bytes_in).into()),
                ("bytes_out", (*bytes_out).into()),
            ]),
            Event::Draining { node, in_flight } => Json::obj([
                ("event", "draining".into()),
                ("node", node.as_str().into()),
                ("in_flight", (*in_flight).into()),
            ]),
            Event::Error { message } => Json::obj([
                ("event", "error".into()),
                ("message", message.as_str().into()),
            ]),
        }
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed JSON or an unknown shape.
    pub fn decode(line: &str) -> Result<Event, WireError> {
        let json = Json::parse(line)?;
        match str_field(&json, "event")?.as_str() {
            "hello" => Ok(Event::Hello {
                protocol: u64_field(&json, "protocol")?,
                role: parse_role(&str_field(&json, "role")?)?,
                nodes: string_list(&json, "nodes")?,
                auth: bool_field(&json, "auth")?,
                threads: usize_field(&json, "threads")?,
                workloads: string_list(&json, "workloads")?,
                flow_solver: parse_solver(&str_field(&json, "flow_solver")?)?,
                flow_solvers: string_list(&json, "flow_solvers")?,
            }),
            "auth_ok" => Ok(Event::AuthOk),
            "submitted" => Ok(Event::Submitted {
                job: u64_field(&json, "job")?,
                label: str_field(&json, "label")?,
                node: opt_str_field(&json, "node")?,
            }),
            "busy" => Ok(Event::Busy {
                label: str_field(&json, "label")?,
                in_flight: usize_field(&json, "in_flight")?,
                limit: usize_field(&json, "limit")?,
            }),
            "progress" => Ok(Event::Progress {
                job: u64_field(&json, "job")?,
                completed: usize_field(&json, "completed")?,
                total: usize_field(&json, "total")?,
                node: opt_str_field(&json, "node")?,
            }),
            "done" => Ok(Event::Done {
                job: u64_field(&json, "job")?,
                outcome: outcome_from_json(field(&json, "outcome")?)?,
                cache_delta: cache_stats_from_json(field(&json, "cache_delta")?)?,
                flow_solver: parse_solver(&str_field(&json, "flow_solver")?)?,
                node: opt_str_field(&json, "node")?,
            }),
            "failed" => Ok(Event::Failed {
                job: u64_field(&json, "job")?,
                kind: str_field(&json, "kind")?,
                message: str_field(&json, "message")?,
                node: opt_str_field(&json, "node")?,
            }),
            "status" => Ok(Event::Status {
                job: u64_field(&json, "job")?,
                known: bool_field(&json, "known")?,
                finished: bool_field(&json, "finished")?,
                cancelled: bool_field(&json, "cancelled")?,
                completed: usize_field(&json, "completed")?,
                total: usize_field(&json, "total")?,
            }),
            "stats" => {
                let mut stats = server_stats_core(&json)?;
                if let Some(entries) = json.get("nodes") {
                    let entries = entries
                        .as_arr()
                        .ok_or_else(|| WireError::shape("field 'nodes' must be an array"))?;
                    stats.per_node = entries
                        .iter()
                        .map(|entry| {
                            Ok(NodeStats {
                                node: str_field(entry, "node")?,
                                health: str_field(entry, "health")?,
                                stats: server_stats_core(field(entry, "stats")?)?,
                            })
                        })
                        .collect::<Result<Vec<_>, WireError>>()?;
                }
                Ok(Event::Stats(stats))
            }
            "metrics" => Ok(Event::Metrics {
                exposition: str_field(&json, "exposition")?,
                requests: u64_field(&json, "requests")?,
                bytes_in: u64_field(&json, "bytes_in")?,
                bytes_out: u64_field(&json, "bytes_out")?,
            }),
            "draining" => Ok(Event::Draining {
                node: str_field(&json, "node")?,
                in_flight: usize_field(&json, "in_flight")?,
            }),
            "error" => Ok(Event::Error {
                message: str_field(&json, "message")?,
            }),
            other => Err(WireError::shape(format!("unknown event '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_round_trip(request: Request) {
        let line = request.encode();
        assert!(!line.contains('\n'));
        assert_eq!(Request::decode(&line).unwrap(), request);
    }

    fn event_round_trip(event: Event) {
        let line = event.encode();
        assert!(!line.contains('\n'));
        assert_eq!(Event::decode(&line).unwrap(), event);
    }

    #[test]
    fn submit_sweep_round_trips() {
        request_round_trip(Request::Submit {
            label: "sweep/beh2 \"quoted\"".to_string(),
            kind: "sweep".to_string(),
            params: sweep_params(
                "0.9 ZZZZ + 0.7 XXII",
                &TransitionStrategy::marqsim_gc_rp(),
                &SweepConfig {
                    time: 0.5,
                    epsilons: vec![0.1, 0.05, 1.0 / 30.0],
                    repeats: 3,
                    base_seed: (1 << 53) + 1,
                    evaluate_fidelity: true,
                },
            ),
            options: SubmitOptions::default(),
        });
    }

    #[test]
    fn submit_options_round_trip() {
        request_round_trip(Request::Submit {
            label: "opts".to_string(),
            kind: "compile".to_string(),
            params: compile_params(
                "0.6 XZ + 0.4 ZY",
                &TransitionStrategy::QDrift,
                0.4,
                0.05,
                7,
                true,
            ),
            options: SubmitOptions::new()
                .with_priority(Priority::High)
                .with_max_in_flight(4)
                .with_progress_every(
                    ProgressCadence::every(100).with_interval(Duration::from_millis(100)),
                ),
        });
        // Missing options object → defaults.
        let line = r#"{"verb":"submit","label":"x","kind":"sweep","params":{}}"#;
        match Request::decode(line).unwrap() {
            Request::Submit { options, .. } => assert_eq!(options, SubmitOptions::default()),
            other => panic!("unexpected {other:?}"),
        }
        // Unknown priority is rejected with context.
        let line = r#"{"verb":"submit","label":"x","kind":"sweep","params":{},"options":{"priority":"urgent"}}"#;
        let err = Request::decode(line).unwrap_err();
        assert!(err.message.contains("urgent"));
    }

    #[test]
    fn interval_only_options_disable_the_unit_axis() {
        // A lone progress_ms must coalesce on time alone — with the unit
        // threshold left at the default 1, every report would emit and the
        // interval would be dead code.
        let line = r#"{"verb":"submit","label":"x","kind":"sweep","params":{},"options":{"progress_ms":100}}"#;
        match Request::decode(line).unwrap() {
            Request::Submit { options, .. } => {
                assert_eq!(
                    options.progress_every,
                    ProgressCadence::every_interval(Duration::from_millis(100))
                );
                assert_eq!(options.progress_every.units, usize::MAX);
            }
            other => panic!("unexpected {other:?}"),
        }
        // And the interval-only cadence round-trips through encode.
        request_round_trip(Request::Submit {
            label: "x".to_string(),
            kind: "sweep".to_string(),
            params: Json::obj([]),
            options: SubmitOptions::new()
                .with_progress_every(ProgressCadence::every_interval(Duration::from_millis(250))),
        });
        // units=1 WITH an interval is not interval-only — it must encode
        // progress_units explicitly so the wire round trip preserves the
        // every-unit-plus-time-floor semantics.
        request_round_trip(Request::Submit {
            label: "x".to_string(),
            kind: "sweep".to_string(),
            params: Json::obj([]),
            options: SubmitOptions::new().with_progress_every(
                ProgressCadence::default().with_interval(Duration::from_millis(100)),
            ),
        });
        // As does a hand-built units=usize::MAX cadence without interval.
        request_round_trip(Request::Submit {
            label: "x".to_string(),
            kind: "sweep".to_string(),
            params: Json::obj([]),
            options: SubmitOptions::new().with_progress_every(ProgressCadence::every(usize::MAX)),
        });
    }

    #[test]
    fn submit_params_pass_through_untyped() {
        // The protocol layer must not constrain params: an arbitrary object
        // for a custom kind round-trips unchanged.
        request_round_trip(Request::Submit {
            label: "fib/e2e".to_string(),
            kind: "fib".to_string(),
            params: Json::obj([("n", 30u64.into()), ("note", "custom".into())]),
            options: SubmitOptions::default(),
        });
    }

    #[test]
    fn control_verbs_round_trip() {
        request_round_trip(Request::Status { job: 3 });
        request_round_trip(Request::Cancel { job: u64::MAX });
        request_round_trip(Request::Stats);
        request_round_trip(Request::Metrics);
    }

    #[test]
    fn all_strategies_round_trip() {
        for strategy in [
            TransitionStrategy::QDrift,
            TransitionStrategy::marqsim_gc(),
            TransitionStrategy::marqsim_gc_rp(),
            TransitionStrategy::Combined {
                qdrift_weight: 0.25,
                gc_weight: 0.35,
                rp_weight: 0.4,
                perturbation: PerturbationConfig {
                    samples: 9,
                    magnitude: 1.25,
                    probability: 0.75,
                    seed: 11,
                },
            },
        ] {
            let json = strategy_to_json(&strategy);
            assert_eq!(
                strategy_from_json(&Json::parse(&json.encode()).unwrap()).unwrap(),
                strategy
            );
        }
    }

    #[test]
    fn sweep_results_round_trip_bit_exactly() {
        use marqsim_core::metrics::SequenceStats;
        let result = SweepResult {
            label: "MarQSim-GC (0.4 Pqd + 0.6 Pgc)".to_string(),
            points: vec![
                ExperimentPoint {
                    epsilon: 0.1,
                    seed: 9,
                    num_samples: 123,
                    stats: SequenceStats {
                        cnot: 10,
                        single_qubit: 20,
                        rz: 5,
                        total: 30,
                        segments: 5,
                    },
                    fidelity: Some(0.9931726618235891),
                },
                ExperimentPoint {
                    epsilon: 1.0 / 30.0,
                    seed: 7928,
                    num_samples: 4567,
                    stats: SequenceStats {
                        cnot: 0,
                        single_qubit: 0,
                        rz: 0,
                        total: 0,
                        segments: 0,
                    },
                    fidelity: None,
                },
            ],
        };
        let event = Event::Done {
            job: 42,
            outcome: Outcome::Sweep(result.clone()),
            cache_delta: CacheStats {
                flow_solves: 1,
                flow_solves_ssp: 1,
                ..CacheStats::default()
            },
            flow_solver: SolverKind::SuccessiveShortestPath,
            node: None,
        };
        let decoded = Event::decode(&event.encode()).unwrap();
        match decoded {
            Event::Done {
                outcome: Outcome::Sweep(back),
                ..
            } => {
                for (a, b) in back.points.iter().zip(&result.points) {
                    assert_eq!(a.epsilon.to_bits(), b.epsilon.to_bits());
                    assert_eq!(a.seed, b.seed);
                    assert_eq!(a.stats, b.stats);
                    assert_eq!(a.fidelity.map(f64::to_bits), b.fidelity.map(f64::to_bits));
                }
            }
            other => panic!("unexpected decode {other:?}"),
        }
    }

    #[test]
    fn perturb_average_outcomes_round_trip_bit_exactly() {
        let matrix = TransitionMatrix::new(vec![
            vec![0.5, 0.25, 0.25],
            vec![0.1, 0.6, 0.3],
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ])
        .unwrap();
        let result = PerturbAverageResult {
            label: "prp/na+".to_string(),
            samples: 20,
            matrix,
        };
        let event = Event::Done {
            job: 7,
            outcome: Outcome::PerturbAverage(result.clone()),
            cache_delta: CacheStats::default(),
            flow_solver: SolverKind::NetworkSimplex,
            node: None,
        };
        match Event::decode(&event.encode()).unwrap() {
            Event::Done {
                outcome: Outcome::PerturbAverage(back),
                ..
            } => {
                assert_eq!(back.label, result.label);
                assert_eq!(back.samples, result.samples);
                for (a, b) in back.matrix.rows().iter().zip(result.matrix.rows()) {
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits(), "matrix must cross bit-exactly");
                    }
                }
            }
            other => panic!("unexpected decode {other:?}"),
        }
    }

    #[test]
    fn suite_outcomes_round_trip() {
        let sweep = SweepResult {
            label: "Baseline".to_string(),
            points: vec![],
        };
        let result = BenchmarkSuiteResult {
            cases: vec![SuiteCaseResult {
                benchmark: "Na+".to_string(),
                strategy: "Baseline".to_string(),
                sweep,
            }],
        };
        event_round_trip(Event::Done {
            job: 9,
            outcome: Outcome::Suite(result),
            cache_delta: CacheStats::default(),
            flow_solver: SolverKind::SuccessiveShortestPath,
            node: None,
        });
    }

    #[test]
    fn custom_outcomes_decode_as_other() {
        let event = Event::Done {
            job: 11,
            flow_solver: SolverKind::SuccessiveShortestPath,
            node: None,
            outcome: Outcome::Other {
                kind: "fib".to_string(),
                value: Json::obj([
                    ("kind", "fib".into()),
                    (
                        "values",
                        Json::Arr(vec![1u64.into(), 1u64.into(), 2u64.into()]),
                    ),
                ]),
            },
            cache_delta: CacheStats::default(),
        };
        match Event::decode(&event.encode()).unwrap() {
            Event::Done {
                outcome: Outcome::Other { kind, value },
                ..
            } => {
                assert_eq!(kind, "fib");
                assert_eq!(
                    value
                        .get("values")
                        .and_then(Json::as_arr)
                        .map(<[Json]>::len),
                    Some(3)
                );
            }
            other => panic!("unexpected decode {other:?}"),
        }
    }

    #[test]
    fn events_round_trip() {
        event_round_trip(Event::Hello {
            protocol: PROTOCOL_VERSION,
            threads: 8,
            workloads: vec!["fib".to_string(), "sweep".to_string()],
            flow_solver: SolverKind::SuccessiveShortestPath,
            flow_solvers: SolverKind::ALL.map(|k| k.as_str().to_string()).to_vec(),
            role: Role::Node,
            nodes: Vec::new(),
            auth: false,
        });
        event_round_trip(Event::Submitted {
            job: 1,
            label: "x".to_string(),
            node: None,
        });
        event_round_trip(Event::Busy {
            label: "x".to_string(),
            in_flight: 4,
            limit: 4,
        });
        event_round_trip(Event::Progress {
            job: 1,
            completed: 3,
            total: 6,
            node: None,
        });
        event_round_trip(Event::Failed {
            job: 2,
            kind: "cancelled".to_string(),
            message: "job 'x' was cancelled".to_string(),
            node: None,
        });
        event_round_trip(Event::Status {
            job: 9,
            known: false,
            finished: false,
            cancelled: false,
            completed: 0,
            total: 0,
        });
        event_round_trip(Event::Stats(ServerStats {
            threads: 4,
            cache: CacheStats::default(),
            active_jobs: 2,
            queue_depth: 17,
            in_flight: 1,
            flow_solver: SolverKind::NetworkSimplex,
            max_active_jobs: 64,
            per_node: Vec::new(),
        }));
        event_round_trip(Event::Metrics {
            // A representative slice of the exposition format: newlines,
            // quotes in label values, and histogram bucket lines must all
            // survive the JSON string codec.
            exposition: "# TYPE marqsim_flow_solves_total counter\n\
                         marqsim_flow_solves_total{backend=\"ssp\"} 3\n\
                         marqsim_flow_solve_seconds_bucket{backend=\"ssp\",le=\"+Inf\"} 3\n"
                .to_string(),
            requests: 7,
            bytes_in: 812,
            bytes_out: 40960,
        });
        event_round_trip(Event::Error {
            message: "unknown verb 'frobnicate'".to_string(),
        });
        event_round_trip(Event::Done {
            job: 5,
            flow_solver: SolverKind::NetworkSimplex,
            node: None,
            outcome: Outcome::Compile(CompileSummary {
                num_samples: 100,
                lambda: 2.5,
                stats: SequenceStats {
                    cnot: 1,
                    single_qubit: 2,
                    rz: 3,
                    total: 3,
                    segments: 4,
                },
                fidelity: Some(0.99),
            }),
            cache_delta: CacheStats::default(),
        });
    }

    #[test]
    fn auth_and_drain_verbs_round_trip() {
        request_round_trip(Request::Auth {
            token: "s3cr3t with spaces \"and quotes\"".to_string(),
        });
        request_round_trip(Request::Drain {
            node: "127.0.0.1:7401".to_string(),
        });
    }

    #[test]
    fn auth_ok_and_draining_events_round_trip() {
        event_round_trip(Event::AuthOk);
        event_round_trip(Event::Draining {
            node: "127.0.0.1:7402".to_string(),
            in_flight: 3,
        });
    }

    #[test]
    fn router_hello_advertises_role_nodes_and_auth() {
        let event = Event::Hello {
            protocol: PROTOCOL_VERSION,
            threads: 0,
            workloads: vec!["sweep".to_string()],
            flow_solver: SolverKind::SuccessiveShortestPath,
            flow_solvers: SolverKind::ALL.map(|k| k.as_str().to_string()).to_vec(),
            role: Role::Router,
            nodes: vec!["127.0.0.1:7401".to_string(), "127.0.0.1:7402".to_string()],
            auth: true,
        };
        event_round_trip(event.clone());
        // The encoded form carries the wire names clients key on.
        let line = event.encode();
        assert!(line.contains(r#""role":"router""#), "{line}");
        assert!(line.contains(r#""auth":true"#), "{line}");
    }

    #[test]
    fn routed_events_carry_the_node_and_node_lost_kind() {
        event_round_trip(Event::Submitted {
            job: 4,
            label: "x".to_string(),
            node: Some("127.0.0.1:7401".to_string()),
        });
        event_round_trip(Event::Progress {
            job: 4,
            completed: 1,
            total: 2,
            node: Some("127.0.0.1:7401".to_string()),
        });
        // A node crash mid-job surfaces as a structured failure naming the
        // node, with the dedicated `node_lost` kind.
        event_round_trip(Event::Failed {
            job: 4,
            kind: "node_lost".to_string(),
            message: "node 127.0.0.1:7401 died with 1 job in flight".to_string(),
            node: Some("127.0.0.1:7401".to_string()),
        });
    }

    #[test]
    fn router_stats_nest_per_node_breakdowns() {
        let node_stats = ServerStats {
            threads: 2,
            cache: CacheStats {
                flow_solves: 5,
                ..CacheStats::default()
            },
            active_jobs: 1,
            queue_depth: 0,
            in_flight: 1,
            flow_solver: SolverKind::Auto,
            max_active_jobs: 64,
            per_node: Vec::new(),
        };
        event_round_trip(Event::Stats(ServerStats {
            threads: 0,
            cache: CacheStats::default(),
            active_jobs: 1,
            queue_depth: 0,
            in_flight: 1,
            flow_solver: SolverKind::Auto,
            max_active_jobs: 64,
            per_node: vec![
                NodeStats {
                    node: "127.0.0.1:7401".to_string(),
                    health: "up".to_string(),
                    stats: node_stats,
                },
                NodeStats {
                    node: "127.0.0.1:7402".to_string(),
                    health: "down".to_string(),
                    stats: ServerStats::default(),
                },
            ],
        }));
    }

    #[test]
    fn roles_parse_their_wire_names() {
        for role in [Role::Node, Role::Router] {
            assert_eq!(parse_role(role.as_str()).unwrap(), role);
        }
        assert!(parse_role("proxy").is_err());
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        for (line, needle) in [
            ("{}", "verb"),
            (r#"{"verb":"frobnicate"}"#, "frobnicate"),
            (r#"{"verb":"status"}"#, "job"),
            (r#"{"verb":"submit","label":"x","kind":"sweep"}"#, "params"),
            (r#"{"verb":"submit","label":"x","params":{}}"#, "kind"),
            ("not json", "expected"),
        ] {
            let err = Request::decode(line).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{line}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn failure_kinds_name_every_engine_error() {
        assert_eq!(
            failure_kind(&EngineError::Cancelled { label: "x".into() }),
            "cancelled"
        );
        assert_eq!(
            failure_kind(&EngineError::WorkerPanic {
                label: "x".into(),
                message: "boom".into()
            }),
            "panic"
        );
        assert_eq!(
            failure_kind(&EngineError::InvalidConfig {
                reason: "bad".into()
            }),
            "invalid-config"
        );
        assert_eq!(
            failure_kind(&EngineError::Workload {
                label: "x".into(),
                message: "domain".into()
            }),
            "workload"
        );
    }
}
