//! Typed protocol messages and their JSON encodings.
//!
//! One [`Request`] per client line, one [`Event`] per server line. The
//! protocol is versioned by the `hello` event the server sends on connect;
//! a client should check [`PROTOCOL_VERSION`] before submitting.
//!
//! # Verbs (client → server)
//!
//! ```json
//! {"verb":"submit","label":"sweep/h2","job":{"kind":"sweep","hamiltonian":"0.9 ZZ + 0.5 XX","strategy":{"kind":"gate-cancellation","qdrift_weight":0.4},"config":{"time":0.5,"epsilons":[0.1,0.05],"repeats":3,"base_seed":1,"evaluate_fidelity":false}}}
//! {"verb":"status","job":1}
//! {"verb":"cancel","job":1}
//! {"verb":"stats"}
//! ```
//!
//! # Events (server → client)
//!
//! ```json
//! {"event":"hello","protocol":1,"threads":4}
//! {"event":"submitted","job":1,"label":"sweep/h2"}
//! {"event":"progress","job":1,"completed":3,"total":6}
//! {"event":"done","job":1,"outcome":{"kind":"sweep",...},"cache_delta":{...}}
//! {"event":"failed","job":1,"kind":"cancelled","message":"..."}
//! {"event":"status","job":1,"known":true,"finished":false,"cancelled":false,"completed":3,"total":6}
//! {"event":"stats","threads":4,"cache":{...}}
//! {"event":"error","message":"..."}
//! ```
//!
//! Numbers follow the [`wire`](crate::wire) conventions: `u64` ids/seeds
//! are exact integers, floats use shortest-round-trip encoding, so a sweep
//! result decoded from the wire is bit-identical to the in-process result.

use marqsim_core::experiment::{ExperimentPoint, SweepConfig, SweepResult};
use marqsim_core::metrics::SequenceStats;
use marqsim_core::perturb::PerturbationConfig;
use marqsim_core::TransitionStrategy;
use marqsim_engine::{CacheStats, EngineError};

use crate::wire::{Json, WireError};

/// Version of the wire protocol; bumped on breaking changes.
pub const PROTOCOL_VERSION: u64 = 1;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one job; the server answers with `submitted` carrying the
    /// job id, then streams `progress` and finally `done` / `failed`.
    Submit {
        /// Client-chosen label echoed in every event about this job.
        label: String,
        /// The work itself.
        job: SubmitJob,
    },
    /// Query one job's state.
    Status {
        /// Job id from `submitted`.
        job: u64,
    },
    /// Request cooperative cancellation of one job.
    Cancel {
        /// Job id from `submitted`.
        job: u64,
    },
    /// Query engine-wide statistics.
    Stats,
}

/// The payload of a `submit` request. The Hamiltonian travels in the
/// `marqsim_pauli::Hamiltonian::parse` textual format (coefficients use
/// shortest-round-trip float formatting, so the parse is exact).
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitJob {
    /// A full sweep (the engine's `SweepRequest`).
    Sweep {
        /// Textual Hamiltonian.
        hamiltonian: String,
        /// Transition strategy for every point.
        strategy: TransitionStrategy,
        /// Sweep configuration.
        config: SweepConfig,
    },
    /// A single compile (the engine's `CompileRequest`), reported back as a
    /// summary (sample count + sequence-level gate statistics + optional
    /// fidelity).
    Compile {
        /// Textual Hamiltonian.
        hamiltonian: String,
        /// Transition strategy.
        strategy: TransitionStrategy,
        /// Evolution time `t`.
        time: f64,
        /// Target precision `ε`.
        epsilon: f64,
        /// RNG seed.
        seed: u64,
        /// Whether to also evaluate unitary fidelity (exponential in qubit
        /// count).
        evaluate_fidelity: bool,
    },
}

/// A server event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// First line of every connection.
    Hello {
        /// [`PROTOCOL_VERSION`] of the server.
        protocol: u64,
        /// Engine worker-thread count.
        threads: usize,
    },
    /// Acknowledges a `submit`; all later events about this job carry `job`.
    Submitted {
        /// Engine-unique job id.
        job: u64,
        /// The label from the request.
        label: String,
    },
    /// One point-level task of the job finished.
    Progress {
        /// Job id.
        job: u64,
        /// Tasks finished so far.
        completed: usize,
        /// Total tasks of the job.
        total: usize,
    },
    /// The job finished successfully.
    Done {
        /// Job id.
        job: u64,
        /// The result.
        outcome: Outcome,
        /// Cache-counter delta attributed to this job (snapshot difference
        /// between submission and completion; concurrent jobs' activity can
        /// bleed into each other's windows).
        cache_delta: CacheStats,
    },
    /// The job failed or was cancelled.
    Failed {
        /// Job id.
        job: u64,
        /// `"compile"`, `"panic"`, `"cancelled"`, or `"invalid-config"`.
        kind: String,
        /// Human-readable description.
        message: String,
    },
    /// Answer to `status`.
    Status {
        /// Job id queried.
        job: u64,
        /// Whether the server knows this job (ids are per connection).
        known: bool,
        /// Whether the outcome has been produced.
        finished: bool,
        /// Whether cancellation has been requested.
        cancelled: bool,
        /// Tasks finished so far.
        completed: usize,
        /// Total tasks (0 until expansion).
        total: usize,
    },
    /// Answer to `stats`.
    Stats {
        /// Engine worker-thread count.
        threads: usize,
        /// Engine-wide cache counters.
        cache: CacheStats,
    },
    /// A request could not be understood or carried invalid data. The
    /// connection stays open.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// A finished job's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Result of a sweep job.
    Sweep(SweepResult),
    /// Summary of a compile job.
    Compile(CompileSummary),
}

/// The wire summary of a compile job (the full `CompileResult` holds the
/// sampled sequence and circuit, which are orders of magnitude larger than
/// what remote evaluation consumers need).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileSummary {
    /// Number of sampling steps `N`.
    pub num_samples: usize,
    /// `λ = Σ_j |h_j|`.
    pub lambda: f64,
    /// Sequence-level gate statistics.
    pub stats: SequenceStats,
    /// Unitary fidelity, when requested.
    pub fidelity: Option<f64>,
}

// ---------------------------------------------------------------------------
// Field-access helpers
// ---------------------------------------------------------------------------

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    obj.get(key)
        .ok_or_else(|| WireError::shape(format!("missing field '{key}'")))
}

fn str_field(obj: &Json, key: &str) -> Result<String, WireError> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be a string")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, WireError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be an unsigned integer")))
}

fn usize_field(obj: &Json, key: &str) -> Result<usize, WireError> {
    field(obj, key)?
        .as_usize()
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be an unsigned integer")))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, WireError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be a number")))
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, WireError> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| WireError::shape(format!("field '{key}' must be a boolean")))
}

fn opt_f64_field(obj: &Json, key: &str) -> Result<Option<f64>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(value) if value.is_null() => Ok(None),
        Some(value) => value
            .as_f64()
            .map(Some)
            .ok_or_else(|| WireError::shape(format!("field '{key}' must be a number or null"))),
    }
}

// ---------------------------------------------------------------------------
// Strategy / config codecs
// ---------------------------------------------------------------------------

fn perturbation_to_json(p: &PerturbationConfig) -> Json {
    Json::obj([
        ("samples", p.samples.into()),
        ("magnitude", p.magnitude.into()),
        ("probability", p.probability.into()),
        ("seed", p.seed.into()),
    ])
}

fn perturbation_from_json(json: &Json) -> Result<PerturbationConfig, WireError> {
    Ok(PerturbationConfig {
        samples: usize_field(json, "samples")?,
        magnitude: f64_field(json, "magnitude")?,
        probability: f64_field(json, "probability")?,
        seed: u64_field(json, "seed")?,
    })
}

/// Encodes a strategy (public: the client builds submit requests from it).
pub fn strategy_to_json(strategy: &TransitionStrategy) -> Json {
    match strategy {
        TransitionStrategy::QDrift => Json::obj([("kind", "qdrift".into())]),
        TransitionStrategy::GateCancellation { qdrift_weight } => Json::obj([
            ("kind", "gate-cancellation".into()),
            ("qdrift_weight", (*qdrift_weight).into()),
        ]),
        TransitionStrategy::GateCancellationRandomPerturbation {
            qdrift_weight,
            gc_weight,
            perturbation,
        } => Json::obj([
            ("kind", "gc-rp".into()),
            ("qdrift_weight", (*qdrift_weight).into()),
            ("gc_weight", (*gc_weight).into()),
            ("perturbation", perturbation_to_json(perturbation)),
        ]),
        TransitionStrategy::Combined {
            qdrift_weight,
            gc_weight,
            rp_weight,
            perturbation,
        } => Json::obj([
            ("kind", "combined".into()),
            ("qdrift_weight", (*qdrift_weight).into()),
            ("gc_weight", (*gc_weight).into()),
            ("rp_weight", (*rp_weight).into()),
            ("perturbation", perturbation_to_json(perturbation)),
        ]),
    }
}

/// Decodes a strategy.
///
/// # Errors
///
/// Returns a shape [`WireError`] for unknown kinds or missing fields.
pub fn strategy_from_json(json: &Json) -> Result<TransitionStrategy, WireError> {
    let kind = str_field(json, "kind")?;
    match kind.as_str() {
        "qdrift" => Ok(TransitionStrategy::QDrift),
        "gate-cancellation" => Ok(TransitionStrategy::GateCancellation {
            qdrift_weight: f64_field(json, "qdrift_weight")?,
        }),
        "gc-rp" => Ok(TransitionStrategy::GateCancellationRandomPerturbation {
            qdrift_weight: f64_field(json, "qdrift_weight")?,
            gc_weight: f64_field(json, "gc_weight")?,
            perturbation: perturbation_from_json(field(json, "perturbation")?)?,
        }),
        "combined" => Ok(TransitionStrategy::Combined {
            qdrift_weight: f64_field(json, "qdrift_weight")?,
            gc_weight: f64_field(json, "gc_weight")?,
            rp_weight: f64_field(json, "rp_weight")?,
            perturbation: perturbation_from_json(field(json, "perturbation")?)?,
        }),
        other => Err(WireError::shape(format!("unknown strategy kind '{other}'"))),
    }
}

fn sweep_config_to_json(config: &SweepConfig) -> Json {
    Json::obj([
        ("time", config.time.into()),
        (
            "epsilons",
            Json::Arr(config.epsilons.iter().map(|&e| e.into()).collect()),
        ),
        ("repeats", config.repeats.into()),
        ("base_seed", config.base_seed.into()),
        ("evaluate_fidelity", config.evaluate_fidelity.into()),
    ])
}

fn sweep_config_from_json(json: &Json) -> Result<SweepConfig, WireError> {
    let epsilons = field(json, "epsilons")?
        .as_arr()
        .ok_or_else(|| WireError::shape("field 'epsilons' must be an array"))?
        .iter()
        .map(|e| {
            e.as_f64()
                .ok_or_else(|| WireError::shape("epsilons must be numbers"))
        })
        .collect::<Result<Vec<f64>, WireError>>()?;
    Ok(SweepConfig {
        time: f64_field(json, "time")?,
        epsilons,
        repeats: usize_field(json, "repeats")?,
        base_seed: u64_field(json, "base_seed")?,
        evaluate_fidelity: bool_field(json, "evaluate_fidelity")?,
    })
}

// ---------------------------------------------------------------------------
// Result codecs
// ---------------------------------------------------------------------------

fn stats_to_json(stats: &SequenceStats) -> Json {
    Json::obj([
        ("cnot", stats.cnot.into()),
        ("single_qubit", stats.single_qubit.into()),
        ("rz", stats.rz.into()),
        ("total", stats.total.into()),
        ("segments", stats.segments.into()),
    ])
}

fn stats_from_json(json: &Json) -> Result<SequenceStats, WireError> {
    Ok(SequenceStats {
        cnot: usize_field(json, "cnot")?,
        single_qubit: usize_field(json, "single_qubit")?,
        rz: usize_field(json, "rz")?,
        total: usize_field(json, "total")?,
        segments: usize_field(json, "segments")?,
    })
}

fn point_to_json(point: &ExperimentPoint) -> Json {
    Json::obj([
        ("epsilon", point.epsilon.into()),
        ("seed", point.seed.into()),
        ("num_samples", point.num_samples.into()),
        ("stats", stats_to_json(&point.stats)),
        ("fidelity", point.fidelity.into()),
    ])
}

fn point_from_json(json: &Json) -> Result<ExperimentPoint, WireError> {
    Ok(ExperimentPoint {
        epsilon: f64_field(json, "epsilon")?,
        seed: u64_field(json, "seed")?,
        num_samples: usize_field(json, "num_samples")?,
        stats: stats_from_json(field(json, "stats")?)?,
        fidelity: opt_f64_field(json, "fidelity")?,
    })
}

/// Encodes a sweep result.
pub fn sweep_result_to_json(result: &SweepResult) -> Json {
    Json::obj([
        ("kind", "sweep".into()),
        ("label", result.label.as_str().into()),
        (
            "points",
            Json::Arr(result.points.iter().map(point_to_json).collect()),
        ),
    ])
}

/// Decodes a sweep result.
///
/// # Errors
///
/// Returns a shape [`WireError`] on malformed input.
pub fn sweep_result_from_json(json: &Json) -> Result<SweepResult, WireError> {
    let points = field(json, "points")?
        .as_arr()
        .ok_or_else(|| WireError::shape("field 'points' must be an array"))?
        .iter()
        .map(point_from_json)
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(SweepResult {
        label: str_field(json, "label")?,
        points,
    })
}

fn cache_stats_to_json(stats: &CacheStats) -> Json {
    Json::obj([
        ("hits", stats.hits.into()),
        ("misses", stats.misses.into()),
        ("component_hits", stats.component_hits.into()),
        ("flow_solves", stats.flow_solves.into()),
        ("disk_hits", stats.disk_hits.into()),
        ("disk_writes", stats.disk_writes.into()),
        ("disk_errors", stats.disk_errors.into()),
        ("evictions", stats.evictions.into()),
        ("graphs", stats.graphs.into()),
        ("components", stats.components.into()),
    ])
}

fn cache_stats_from_json(json: &Json) -> Result<CacheStats, WireError> {
    Ok(CacheStats {
        hits: u64_field(json, "hits")?,
        misses: u64_field(json, "misses")?,
        component_hits: u64_field(json, "component_hits")?,
        flow_solves: u64_field(json, "flow_solves")?,
        disk_hits: u64_field(json, "disk_hits")?,
        disk_writes: u64_field(json, "disk_writes")?,
        disk_errors: u64_field(json, "disk_errors")?,
        evictions: u64_field(json, "evictions")?,
        graphs: usize_field(json, "graphs")?,
        components: usize_field(json, "components")?,
    })
}

fn outcome_to_json(outcome: &Outcome) -> Json {
    match outcome {
        Outcome::Sweep(result) => sweep_result_to_json(result),
        Outcome::Compile(summary) => Json::obj([
            ("kind", "compile".into()),
            ("num_samples", summary.num_samples.into()),
            ("lambda", summary.lambda.into()),
            ("stats", stats_to_json(&summary.stats)),
            ("fidelity", summary.fidelity.into()),
        ]),
    }
}

fn outcome_from_json(json: &Json) -> Result<Outcome, WireError> {
    match str_field(json, "kind")?.as_str() {
        "sweep" => Ok(Outcome::Sweep(sweep_result_from_json(json)?)),
        "compile" => Ok(Outcome::Compile(CompileSummary {
            num_samples: usize_field(json, "num_samples")?,
            lambda: f64_field(json, "lambda")?,
            stats: stats_from_json(field(json, "stats")?)?,
            fidelity: opt_f64_field(json, "fidelity")?,
        })),
        other => Err(WireError::shape(format!("unknown outcome kind '{other}'"))),
    }
}

/// The failure-kind string for an [`EngineError`] (the `kind` field of
/// `failed` events).
pub fn failure_kind(error: &EngineError) -> &'static str {
    match error {
        EngineError::Compile { .. } => "compile",
        EngineError::WorkerPanic { .. } => "panic",
        EngineError::InvalidConfig { .. } => "invalid-config",
        EngineError::Cancelled { .. } => "cancelled",
    }
}

// ---------------------------------------------------------------------------
// Top-level message codecs
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes the request as one wire line (without the trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    fn to_json(&self) -> Json {
        match self {
            Request::Submit { label, job } => {
                let job_json = match job {
                    SubmitJob::Sweep {
                        hamiltonian,
                        strategy,
                        config,
                    } => Json::obj([
                        ("kind", "sweep".into()),
                        ("hamiltonian", hamiltonian.as_str().into()),
                        ("strategy", strategy_to_json(strategy)),
                        ("config", sweep_config_to_json(config)),
                    ]),
                    SubmitJob::Compile {
                        hamiltonian,
                        strategy,
                        time,
                        epsilon,
                        seed,
                        evaluate_fidelity,
                    } => Json::obj([
                        ("kind", "compile".into()),
                        ("hamiltonian", hamiltonian.as_str().into()),
                        ("strategy", strategy_to_json(strategy)),
                        ("time", (*time).into()),
                        ("epsilon", (*epsilon).into()),
                        ("seed", (*seed).into()),
                        ("evaluate_fidelity", (*evaluate_fidelity).into()),
                    ]),
                };
                Json::obj([
                    ("verb", "submit".into()),
                    ("label", label.as_str().into()),
                    ("job", job_json),
                ])
            }
            Request::Status { job } => {
                Json::obj([("verb", "status".into()), ("job", (*job).into())])
            }
            Request::Cancel { job } => {
                Json::obj([("verb", "cancel".into()), ("job", (*job).into())])
            }
            Request::Stats => Json::obj([("verb", "stats".into())]),
        }
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed JSON or an unknown shape.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let json = Json::parse(line)?;
        match str_field(&json, "verb")?.as_str() {
            "submit" => {
                let label = str_field(&json, "label")?;
                let job_json = field(&json, "job")?;
                let job = match str_field(job_json, "kind")?.as_str() {
                    "sweep" => SubmitJob::Sweep {
                        hamiltonian: str_field(job_json, "hamiltonian")?,
                        strategy: strategy_from_json(field(job_json, "strategy")?)?,
                        config: sweep_config_from_json(field(job_json, "config")?)?,
                    },
                    "compile" => SubmitJob::Compile {
                        hamiltonian: str_field(job_json, "hamiltonian")?,
                        strategy: strategy_from_json(field(job_json, "strategy")?)?,
                        time: f64_field(job_json, "time")?,
                        epsilon: f64_field(job_json, "epsilon")?,
                        seed: u64_field(job_json, "seed")?,
                        evaluate_fidelity: bool_field(job_json, "evaluate_fidelity")?,
                    },
                    other => return Err(WireError::shape(format!("unknown job kind '{other}'"))),
                };
                Ok(Request::Submit { label, job })
            }
            "status" => Ok(Request::Status {
                job: u64_field(&json, "job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: u64_field(&json, "job")?,
            }),
            "stats" => Ok(Request::Stats),
            other => Err(WireError::shape(format!("unknown verb '{other}'"))),
        }
    }
}

impl Event {
    /// Encodes the event as one wire line (without the trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    fn to_json(&self) -> Json {
        match self {
            Event::Hello { protocol, threads } => Json::obj([
                ("event", "hello".into()),
                ("protocol", (*protocol).into()),
                ("threads", (*threads).into()),
            ]),
            Event::Submitted { job, label } => Json::obj([
                ("event", "submitted".into()),
                ("job", (*job).into()),
                ("label", label.as_str().into()),
            ]),
            Event::Progress {
                job,
                completed,
                total,
            } => Json::obj([
                ("event", "progress".into()),
                ("job", (*job).into()),
                ("completed", (*completed).into()),
                ("total", (*total).into()),
            ]),
            Event::Done {
                job,
                outcome,
                cache_delta,
            } => Json::obj([
                ("event", "done".into()),
                ("job", (*job).into()),
                ("outcome", outcome_to_json(outcome)),
                ("cache_delta", cache_stats_to_json(cache_delta)),
            ]),
            Event::Failed { job, kind, message } => Json::obj([
                ("event", "failed".into()),
                ("job", (*job).into()),
                ("kind", kind.as_str().into()),
                ("message", message.as_str().into()),
            ]),
            Event::Status {
                job,
                known,
                finished,
                cancelled,
                completed,
                total,
            } => Json::obj([
                ("event", "status".into()),
                ("job", (*job).into()),
                ("known", (*known).into()),
                ("finished", (*finished).into()),
                ("cancelled", (*cancelled).into()),
                ("completed", (*completed).into()),
                ("total", (*total).into()),
            ]),
            Event::Stats { threads, cache } => Json::obj([
                ("event", "stats".into()),
                ("threads", (*threads).into()),
                ("cache", cache_stats_to_json(cache)),
            ]),
            Event::Error { message } => Json::obj([
                ("event", "error".into()),
                ("message", message.as_str().into()),
            ]),
        }
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed JSON or an unknown shape.
    pub fn decode(line: &str) -> Result<Event, WireError> {
        let json = Json::parse(line)?;
        match str_field(&json, "event")?.as_str() {
            "hello" => Ok(Event::Hello {
                protocol: u64_field(&json, "protocol")?,
                threads: usize_field(&json, "threads")?,
            }),
            "submitted" => Ok(Event::Submitted {
                job: u64_field(&json, "job")?,
                label: str_field(&json, "label")?,
            }),
            "progress" => Ok(Event::Progress {
                job: u64_field(&json, "job")?,
                completed: usize_field(&json, "completed")?,
                total: usize_field(&json, "total")?,
            }),
            "done" => Ok(Event::Done {
                job: u64_field(&json, "job")?,
                outcome: outcome_from_json(field(&json, "outcome")?)?,
                cache_delta: cache_stats_from_json(field(&json, "cache_delta")?)?,
            }),
            "failed" => Ok(Event::Failed {
                job: u64_field(&json, "job")?,
                kind: str_field(&json, "kind")?,
                message: str_field(&json, "message")?,
            }),
            "status" => Ok(Event::Status {
                job: u64_field(&json, "job")?,
                known: bool_field(&json, "known")?,
                finished: bool_field(&json, "finished")?,
                cancelled: bool_field(&json, "cancelled")?,
                completed: usize_field(&json, "completed")?,
                total: usize_field(&json, "total")?,
            }),
            "stats" => Ok(Event::Stats {
                threads: usize_field(&json, "threads")?,
                cache: cache_stats_from_json(field(&json, "cache")?)?,
            }),
            "error" => Ok(Event::Error {
                message: str_field(&json, "message")?,
            }),
            other => Err(WireError::shape(format!("unknown event '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_round_trip(request: Request) {
        let line = request.encode();
        assert!(!line.contains('\n'));
        assert_eq!(Request::decode(&line).unwrap(), request);
    }

    fn event_round_trip(event: Event) {
        let line = event.encode();
        assert!(!line.contains('\n'));
        assert_eq!(Event::decode(&line).unwrap(), event);
    }

    #[test]
    fn submit_sweep_round_trips() {
        request_round_trip(Request::Submit {
            label: "sweep/beh2 \"quoted\"".to_string(),
            job: SubmitJob::Sweep {
                hamiltonian: "0.9 ZZZZ + 0.7 XXII".to_string(),
                strategy: TransitionStrategy::marqsim_gc_rp(),
                config: SweepConfig {
                    time: 0.5,
                    epsilons: vec![0.1, 0.05, 1.0 / 30.0],
                    repeats: 3,
                    base_seed: (1 << 53) + 1,
                    evaluate_fidelity: true,
                },
            },
        });
    }

    #[test]
    fn submit_compile_round_trips() {
        request_round_trip(Request::Submit {
            label: "compile/x".to_string(),
            job: SubmitJob::Compile {
                hamiltonian: "0.6 XZ + 0.4 ZY".to_string(),
                strategy: TransitionStrategy::QDrift,
                time: 0.4,
                epsilon: 0.05,
                seed: 7,
                evaluate_fidelity: true,
            },
        });
    }

    #[test]
    fn control_verbs_round_trip() {
        request_round_trip(Request::Status { job: 3 });
        request_round_trip(Request::Cancel { job: u64::MAX });
        request_round_trip(Request::Stats);
    }

    #[test]
    fn all_strategies_round_trip() {
        for strategy in [
            TransitionStrategy::QDrift,
            TransitionStrategy::marqsim_gc(),
            TransitionStrategy::marqsim_gc_rp(),
            TransitionStrategy::Combined {
                qdrift_weight: 0.25,
                gc_weight: 0.35,
                rp_weight: 0.4,
                perturbation: PerturbationConfig {
                    samples: 9,
                    magnitude: 1.25,
                    probability: 0.75,
                    seed: 11,
                },
            },
        ] {
            let json = strategy_to_json(&strategy);
            assert_eq!(
                strategy_from_json(&Json::parse(&json.encode()).unwrap()).unwrap(),
                strategy
            );
        }
    }

    #[test]
    fn sweep_results_round_trip_bit_exactly() {
        let result = SweepResult {
            label: "MarQSim-GC (0.4 Pqd + 0.6 Pgc)".to_string(),
            points: vec![
                ExperimentPoint {
                    epsilon: 0.1,
                    seed: 9,
                    num_samples: 123,
                    stats: SequenceStats {
                        cnot: 10,
                        single_qubit: 20,
                        rz: 5,
                        total: 30,
                        segments: 5,
                    },
                    fidelity: Some(0.9931726618235891),
                },
                ExperimentPoint {
                    epsilon: 1.0 / 30.0,
                    seed: 7928,
                    num_samples: 4567,
                    stats: SequenceStats {
                        cnot: 0,
                        single_qubit: 0,
                        rz: 0,
                        total: 0,
                        segments: 0,
                    },
                    fidelity: None,
                },
            ],
        };
        let event = Event::Done {
            job: 42,
            outcome: Outcome::Sweep(result.clone()),
            cache_delta: CacheStats {
                flow_solves: 1,
                ..CacheStats::default()
            },
        };
        let decoded = Event::decode(&event.encode()).unwrap();
        match decoded {
            Event::Done {
                outcome: Outcome::Sweep(back),
                ..
            } => {
                for (a, b) in back.points.iter().zip(&result.points) {
                    assert_eq!(a.epsilon.to_bits(), b.epsilon.to_bits());
                    assert_eq!(a.seed, b.seed);
                    assert_eq!(a.stats, b.stats);
                    assert_eq!(a.fidelity.map(f64::to_bits), b.fidelity.map(f64::to_bits));
                }
            }
            other => panic!("unexpected decode {other:?}"),
        }
    }

    #[test]
    fn events_round_trip() {
        event_round_trip(Event::Hello {
            protocol: PROTOCOL_VERSION,
            threads: 8,
        });
        event_round_trip(Event::Submitted {
            job: 1,
            label: "x".to_string(),
        });
        event_round_trip(Event::Progress {
            job: 1,
            completed: 3,
            total: 6,
        });
        event_round_trip(Event::Failed {
            job: 2,
            kind: "cancelled".to_string(),
            message: "job 'x' was cancelled".to_string(),
        });
        event_round_trip(Event::Status {
            job: 9,
            known: false,
            finished: false,
            cancelled: false,
            completed: 0,
            total: 0,
        });
        event_round_trip(Event::Stats {
            threads: 4,
            cache: CacheStats::default(),
        });
        event_round_trip(Event::Error {
            message: "unknown verb 'frobnicate'".to_string(),
        });
        event_round_trip(Event::Done {
            job: 5,
            outcome: Outcome::Compile(CompileSummary {
                num_samples: 100,
                lambda: 2.5,
                stats: SequenceStats {
                    cnot: 1,
                    single_qubit: 2,
                    rz: 3,
                    total: 3,
                    segments: 4,
                },
                fidelity: Some(0.99),
            }),
            cache_delta: CacheStats::default(),
        });
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        for (line, needle) in [
            ("{}", "verb"),
            (r#"{"verb":"frobnicate"}"#, "frobnicate"),
            (r#"{"verb":"status"}"#, "job"),
            (
                r#"{"verb":"submit","label":"x","job":{"kind":"teleport"}}"#,
                "teleport",
            ),
            ("not json", "expected"),
        ] {
            let err = Request::decode(line).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{line}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn failure_kinds_name_every_engine_error() {
        assert_eq!(
            failure_kind(&EngineError::Cancelled { label: "x".into() }),
            "cancelled"
        );
        assert_eq!(
            failure_kind(&EngineError::WorkerPanic {
                label: "x".into(),
                message: "boom".into()
            }),
            "panic"
        );
        assert_eq!(
            failure_kind(&EngineError::InvalidConfig {
                reason: "bad".into()
            }),
            "invalid-config"
        );
    }
}
