//! `marqsim-served` — the compilation-service daemon.
//!
//! Binds `MARQSIM_SERVE_ADDR` (default `127.0.0.1:7878`) and serves the
//! line-delimited JSON protocol until killed, in one of two roles:
//!
//! * **node** (the default): builds one shared engine (worker count from
//!   `MARQSIM_SERVE_THREADS`, falling back to `MARQSIM_THREADS`, then all
//!   cores; cache/solver settings from the usual `MARQSIM_CACHE*` /
//!   `MARQSIM_FLOW_SOLVER` variables) and runs jobs itself. Admission
//!   bounds: `MARQSIM_SERVE_MAX_IN_FLIGHT` per connection,
//!   `MARQSIM_MAX_ACTIVE_JOBS` engine-wide across all connections.
//!   `MARQSIM_SERVE_IDLE_TIMEOUT_MS` (unset = never) reaps connections
//!   that send no request bytes for that long, cancelling whatever they
//!   left running.
//! * **router**: `--route node1:port,node2:port,...` (or `MARQSIM_ROUTE`)
//!   runs no engine at all — it forwards every `submit` to the fleet node
//!   owning the workload's Hamiltonian fingerprint on a consistent-hash
//!   ring, relays events back with job ids translated, aggregates `stats`
//!   across the fleet, and fails jobs on dead nodes with the structured
//!   `node_lost` kind. See `docs/cluster.md`.
//!
//! `MARQSIM_SERVE_TOKEN` sets a shared secret: clients (and a router's
//! upstream connections) must present it via the `auth` verb before any
//! other request. Binding a non-loopback address *without* a token is
//! refused (exit 2) — an open listener on a real interface is a
//! misconfiguration, not a default.
//!
//! See the `marqsim-serve` crate docs for the protocol.

use std::sync::Arc;

use marqsim_engine::{Engine, EngineConfig};
use marqsim_obs::error;
use marqsim_serve::{Router, Server};

/// A non-empty environment override, trimmed.
fn env_value(name: &str) -> Option<String> {
    std::env::var(name)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

/// Strictly parses a positive-count override: `0` or garbage is a hard
/// exit-2 diagnostic naming the variable (`what` describes the unit), never
/// a silent fallback — the shared rule of every `MARQSIM_*` count.
fn positive_env(name: &str, what: &str) -> Option<usize> {
    let raw = env_value(name)?;
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            error!(
                "served",
                "invalid engine configuration: \
                 {name}={raw:?} is not a positive {what} (unset it for the default)"
            );
            std::process::exit(2);
        }
    }
}

/// The fleet node list from `--route`/`--route=` (first) or
/// `MARQSIM_ROUTE`: comma-separated `host:port` entries. `None` means node
/// mode; an explicitly empty list is a hard exit-2 diagnostic.
fn route_nodes() -> Option<Vec<String>> {
    let mut args = std::env::args().skip(1);
    let raw = loop {
        match args.next() {
            Some(arg) if arg == "--route" => match args.next() {
                Some(value) => break Some(value),
                None => {
                    error!("served", "--route needs a comma-separated node list");
                    std::process::exit(2);
                }
            },
            Some(arg) => {
                if let Some(value) = arg.strip_prefix("--route=") {
                    break Some(value.to_string());
                }
            }
            None => break None,
        }
    };
    let raw = raw.or_else(|| env_value("MARQSIM_ROUTE"))?;
    let nodes: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if nodes.is_empty() {
        error!(
            "served",
            "router mode needs at least one node ('host:port,host:port,...'), got {raw:?}"
        );
        std::process::exit(2);
    }
    Some(nodes)
}

/// Whether `addr` binds only the loopback interface. Anything that is not
/// provably loopback (including `0.0.0.0` and hostnames) counts as
/// exposed and requires a token.
fn is_loopback(addr: &str) -> bool {
    let host = match addr.rsplit_once(':') {
        Some((host, _port)) => host.trim_start_matches('[').trim_end_matches(']'),
        None => addr,
    };
    if host.eq_ignore_ascii_case("localhost") {
        return true;
    }
    host.parse::<std::net::IpAddr>()
        .is_ok_and(|ip| ip.is_loopback())
}

fn main() {
    let addr = env_value("MARQSIM_SERVE_ADDR").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let token = env_value("MARQSIM_SERVE_TOKEN");
    if token.is_none() && !is_loopback(&addr) {
        error!(
            "served",
            "refusing to bind non-loopback address {addr} without a token: \
             set MARQSIM_SERVE_TOKEN (or bind 127.0.0.1)"
        );
        std::process::exit(2);
    }

    if let Some(nodes) = route_nodes() {
        let mut router = match Router::bind(&addr, &nodes) {
            Ok(router) => router,
            Err(cause) => {
                error!("served", "failed to bind {addr}: {cause}");
                std::process::exit(1);
            }
        };
        if let Some(token) = token {
            router = router.with_token(token);
        }
        match router.local_addr() {
            Ok(bound) => println!(
                "[marqsim-served] routing on {bound} across {} nodes ({})",
                nodes.len(),
                nodes.join(", ")
            ),
            Err(_) => println!("[marqsim-served] routing on {addr}"),
        }
        if let Err(cause) = router.run() {
            error!("served", "router event loop failed: {cause}");
            std::process::exit(1);
        }
        return;
    }

    let mut config = match EngineConfig::from_env() {
        Ok(config) => config,
        Err(cause) => {
            error!("served", "{cause}");
            std::process::exit(2);
        }
    };
    if let Some(threads) = env_value("MARQSIM_SERVE_THREADS") {
        // Same strict rule (and diagnostic shape) as MARQSIM_THREADS.
        match EngineConfig::parse_threads("MARQSIM_SERVE_THREADS", &threads) {
            Ok(n) => config.threads = n,
            Err(cause) => {
                error!("served", "{cause}");
                std::process::exit(2);
            }
        }
    }

    let max_in_flight = positive_env("MARQSIM_SERVE_MAX_IN_FLIGHT", "in-flight job bound");
    let max_active_jobs = positive_env("MARQSIM_MAX_ACTIVE_JOBS", "engine-wide job bound");
    let idle_timeout_ms = positive_env("MARQSIM_SERVE_IDLE_TIMEOUT_MS", "millisecond timeout");

    let engine = Arc::new(Engine::new(config));
    let mut server = match Server::bind(&addr, engine) {
        Ok(server) => server,
        Err(cause) => {
            error!("served", "failed to bind {addr}: {cause}");
            std::process::exit(1);
        }
    };
    if let Some(token) = token {
        server = server.with_token(token);
    }
    if let Some(limit) = max_in_flight {
        server = server.with_max_in_flight(limit);
    }
    if let Some(limit) = max_active_jobs {
        server = server.with_max_active_jobs(limit);
    }
    if let Some(ms) = idle_timeout_ms {
        server = server.with_idle_timeout(std::time::Duration::from_millis(ms as u64));
    }
    match server.local_addr() {
        Ok(bound) => println!(
            "[marqsim-served] listening on {bound} with {} worker threads (workloads: {})",
            server.engine().threads(),
            server.workload_kinds().join(", ")
        ),
        Err(_) => println!("[marqsim-served] listening on {addr}"),
    }
    if let Err(cause) = server.run() {
        error!("served", "event loop failed: {cause}");
        std::process::exit(1);
    }
}
