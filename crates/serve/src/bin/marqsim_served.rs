//! `marqsim-served` — the compilation-service daemon.
//!
//! Binds `MARQSIM_SERVE_ADDR` (default `127.0.0.1:7878`), builds one shared
//! engine (worker count from `MARQSIM_SERVE_THREADS`, falling back to
//! `MARQSIM_THREADS`, then all cores; cache/solver settings from the usual
//! `MARQSIM_CACHE*` / `MARQSIM_FLOW_SOLVER` variables), and serves the
//! line-delimited JSON protocol until killed. Admission bounds:
//! `MARQSIM_SERVE_MAX_IN_FLIGHT` per connection, `MARQSIM_MAX_ACTIVE_JOBS`
//! engine-wide across all connections. `MARQSIM_SERVE_IDLE_TIMEOUT_MS`
//! (unset = never) reaps connections that send no request bytes for that
//! long, cancelling whatever they left running. See the `marqsim-serve`
//! crate docs for the protocol.

use std::sync::Arc;

use marqsim_engine::{Engine, EngineConfig};
use marqsim_obs::error;
use marqsim_serve::Server;

/// A non-empty environment override, trimmed.
fn env_value(name: &str) -> Option<String> {
    std::env::var(name)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

/// Strictly parses a positive-count override: `0` or garbage is a hard
/// exit-2 diagnostic naming the variable (`what` describes the unit), never
/// a silent fallback — the shared rule of every `MARQSIM_*` count.
fn positive_env(name: &str, what: &str) -> Option<usize> {
    let raw = env_value(name)?;
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            error!(
                "served",
                "invalid engine configuration: \
                 {name}={raw:?} is not a positive {what} (unset it for the default)"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let addr = env_value("MARQSIM_SERVE_ADDR").unwrap_or_else(|| "127.0.0.1:7878".to_string());

    let mut config = match EngineConfig::from_env() {
        Ok(config) => config,
        Err(cause) => {
            error!("served", "{cause}");
            std::process::exit(2);
        }
    };
    if let Some(threads) = env_value("MARQSIM_SERVE_THREADS") {
        // Same strict rule (and diagnostic shape) as MARQSIM_THREADS.
        match EngineConfig::parse_threads("MARQSIM_SERVE_THREADS", &threads) {
            Ok(n) => config.threads = n,
            Err(cause) => {
                error!("served", "{cause}");
                std::process::exit(2);
            }
        }
    }

    let max_in_flight = positive_env("MARQSIM_SERVE_MAX_IN_FLIGHT", "in-flight job bound");
    let max_active_jobs = positive_env("MARQSIM_MAX_ACTIVE_JOBS", "engine-wide job bound");
    let idle_timeout_ms = positive_env("MARQSIM_SERVE_IDLE_TIMEOUT_MS", "millisecond timeout");

    let engine = Arc::new(Engine::new(config));
    let mut server = match Server::bind(&addr, engine) {
        Ok(server) => server,
        Err(cause) => {
            error!("served", "failed to bind {addr}: {cause}");
            std::process::exit(1);
        }
    };
    if let Some(limit) = max_in_flight {
        server = server.with_max_in_flight(limit);
    }
    if let Some(limit) = max_active_jobs {
        server = server.with_max_active_jobs(limit);
    }
    if let Some(ms) = idle_timeout_ms {
        server = server.with_idle_timeout(std::time::Duration::from_millis(ms as u64));
    }
    match server.local_addr() {
        Ok(bound) => println!(
            "[marqsim-served] listening on {bound} with {} worker threads (workloads: {})",
            server.engine().threads(),
            server.workload_kinds().join(", ")
        ),
        Err(_) => println!("[marqsim-served] listening on {addr}"),
    }
    if let Err(cause) = server.run() {
        error!("served", "event loop failed: {cause}");
        std::process::exit(1);
    }
}
