//! `marqsim-served` — the compilation-service daemon.
//!
//! Binds `MARQSIM_SERVE_ADDR` (default `127.0.0.1:7878`), builds one shared
//! engine (worker count from `MARQSIM_SERVE_THREADS`, falling back to
//! `MARQSIM_THREADS`, then all cores; cache settings from the usual
//! `MARQSIM_CACHE*` variables), and serves the line-delimited JSON protocol
//! until killed. See the `marqsim-serve` crate docs for the protocol.

use std::sync::Arc;

use marqsim_engine::{Engine, EngineConfig};
use marqsim_serve::Server;

fn main() {
    let addr = std::env::var("MARQSIM_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());

    let mut config = match EngineConfig::from_env() {
        Ok(config) => config,
        Err(error) => {
            eprintln!("marqsim-served: {error}");
            std::process::exit(2);
        }
    };
    if let Some(threads) = std::env::var("MARQSIM_SERVE_THREADS")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
    {
        // Same strict rule (and diagnostic shape) as MARQSIM_THREADS.
        match EngineConfig::parse_threads("MARQSIM_SERVE_THREADS", &threads) {
            Ok(n) => config.threads = n,
            Err(error) => {
                eprintln!("marqsim-served: {error}");
                std::process::exit(2);
            }
        }
    }

    let max_in_flight = match std::env::var("MARQSIM_SERVE_MAX_IN_FLIGHT")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
    {
        // Same strictness as the thread counts: 0 or garbage is a hard
        // exit-2 diagnostic, never a silent fallback.
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!(
                    "marqsim-served: invalid engine configuration: \
                     MARQSIM_SERVE_MAX_IN_FLIGHT={raw:?} is not a positive in-flight job bound"
                );
                std::process::exit(2);
            }
        },
        None => None,
    };

    let engine = Arc::new(Engine::new(config));
    let mut server = match Server::bind(&addr, engine) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("marqsim-served: failed to bind {addr}: {error}");
            std::process::exit(1);
        }
    };
    if let Some(limit) = max_in_flight {
        server = server.with_max_in_flight(limit);
    }
    match server.local_addr() {
        Ok(bound) => println!(
            "[marqsim-served] listening on {bound} with {} worker threads (workloads: {})",
            server.engine().threads(),
            server.workload_kinds().join(", ")
        ),
        Err(_) => println!("[marqsim-served] listening on {addr}"),
    }
    if let Err(error) = server.run() {
        eprintln!("marqsim-served: accept loop failed: {error}");
        std::process::exit(1);
    }
}
