//! The successive-shortest-path backend (Johnson potentials, Dijkstra
//! inner loop) — the default solver.
//!
//! Working state is a per-solve [`Csr`] residual network, whose per-node
//! arc ordering preserves the historical solver's tie-breaking. When every
//! edge cost is non-negative — always true for the gate-cancellation
//! CNOT-count model — the Bellman–Ford potential bootstrap is skipped
//! entirely (zero initial potentials make Dijkstra's reduced costs the raw
//! costs, which is valid exactly when no cost is negative); the skip is
//! recorded in [`FlowResult::bellman_ford_skipped`] so bench output can
//! show it. Note the skip's one observable consequence: on instances where
//! the *first* shortest path is non-unique, the zero-potential first
//! Dijkstra may tie-break onto a different (equally optimal) augmenting
//! path than the Bellman–Ford-bootstrapped run would — the committed
//! golden outputs pin the fast path's choices, and the engine's persisted
//! `P_gc` format version was bumped so caches solved by the pre-redesign
//! code are re-solved rather than mixed with fresh results.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::csr::{Csr, NO_EDGE};
use crate::graph::{FlowError, FlowNetwork, FlowResult, MinCostFlowSolver, SolveProfile, CAP_EPS};

/// The successive-shortest-path solver (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct SuccessiveShortestPath;

/// Binary-heap entry for Dijkstra (min-heap via reversed ordering).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap becomes a min-heap on dist.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl MinCostFlowSolver for SuccessiveShortestPath {
    fn name(&self) -> &'static str {
        "ssp"
    }

    fn solve(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<FlowResult, FlowError> {
        network.validate_endpoints(source, sink)?;
        let init_started = Instant::now();
        let n = network.num_nodes();
        let mut csr = Csr::build(network);
        let mut potentials = vec![0.0f64; n];
        // Initial potentials via Bellman–Ford so that negative edge costs
        // are supported; with non-negative costs the all-zero potentials are
        // already valid (reduced cost == raw cost ≥ 0), so the pass is
        // skipped — the fast path of the gate-cancellation model.
        let bellman_ford_skipped = network.costs_are_non_negative();
        if !bellman_ford_skipped {
            bellman_ford_potentials(&csr, source, &mut potentials);
        }
        let optimize_started = Instant::now();
        let init_seconds = optimize_started
            .saturating_duration_since(init_started)
            .as_secs_f64();

        let mut remaining = amount;
        let mut total_cost = 0.0;
        let mut edge_flows = vec![0.0f64; network.num_edges()];
        let mut iterations = 0u64;

        while remaining > CAP_EPS {
            iterations += 1;
            // Dijkstra on reduced costs.
            let (dist, prev) = dijkstra(&csr, source, &potentials);
            if dist[sink].is_infinite() {
                return Err(FlowError::Infeasible {
                    routed: amount - remaining,
                    requested: amount,
                });
            }
            // Update potentials.
            for v in 0..n {
                if dist[v].is_finite() {
                    potentials[v] += dist[v];
                }
            }
            // Find bottleneck along the path.
            let mut bottleneck = remaining;
            let mut v = sink;
            while v != source {
                let (u, arc) = prev[v].expect("path exists since dist is finite");
                bottleneck = bottleneck.min(csr.cap[arc]);
                v = u;
            }
            // Augment.
            let mut v = sink;
            while v != source {
                let (u, arc) = prev[v].expect("path exists since dist is finite");
                let rev = csr.rev[arc];
                csr.cap[arc] -= bottleneck;
                csr.cap[rev] += bottleneck;
                total_cost += bottleneck * csr.cost[arc];
                let id = csr.edge_id[arc];
                if id != NO_EDGE {
                    edge_flows[id] += bottleneck;
                } else {
                    // Residual arc of an original edge: cancel flow on it.
                    let id = csr.edge_id[rev];
                    debug_assert_ne!(id, NO_EDGE, "one arc of every pair is an original edge");
                    edge_flows[id] -= bottleneck;
                }
                v = u;
            }
            remaining -= bottleneck;
        }

        Ok(FlowResult {
            amount,
            cost: total_cost,
            edge_flows,
            solver: self.name(),
            bellman_ford_skipped,
            warm_start: false,
            profile: SolveProfile {
                pivots: iterations,
                init_seconds,
                optimize_seconds: optimize_started.elapsed().as_secs_f64(),
            },
        })
    }
}

/// Bellman–Ford pass to initialize potentials (handles negative costs).
fn bellman_ford_potentials(csr: &Csr, source: usize, potentials: &mut [f64]) {
    let n = csr.num_nodes();
    for p in potentials.iter_mut() {
        *p = f64::INFINITY;
    }
    potentials[source] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if potentials[u].is_infinite() {
                continue;
            }
            for arc in csr.arcs(u) {
                if csr.cap[arc] > CAP_EPS
                    && potentials[u] + csr.cost[arc] < potentials[csr.to[arc]] - 1e-15
                {
                    potentials[csr.to[arc]] = potentials[u] + csr.cost[arc];
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Unreachable nodes keep potential 0 so reduced costs stay finite.
    for p in potentials.iter_mut() {
        if p.is_infinite() {
            *p = 0.0;
        }
    }
}

/// Dijkstra over residual arcs with reduced costs; returns distances and
/// the predecessor `(node, arc)` of each node.
#[allow(clippy::type_complexity)]
fn dijkstra(
    csr: &Csr,
    source: usize,
    potentials: &[f64],
) -> (Vec<f64>, Vec<Option<(usize, usize)>>) {
    let n = csr.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] + 1e-15 {
            continue;
        }
        for arc in csr.arcs(u) {
            if csr.cap[arc] <= CAP_EPS {
                continue;
            }
            let to = csr.to[arc];
            let reduced = csr.cost[arc] + potentials[u] - potentials[to];
            // Clamp tiny negative values caused by floating-point noise.
            let reduced = reduced.max(0.0);
            let nd = d + reduced;
            if nd + 1e-15 < dist[to] {
                dist[to] = nd;
                prev[to] = Some((u, arc));
                heap.push(HeapEntry { dist: nd, node: to });
            }
        }
    }
    (dist, prev)
}
