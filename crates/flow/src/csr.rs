//! The CSR residual network shared by the solver backends.
//!
//! Earlier revisions stored the residual graph as a `Vec<Vec<Arc>>` and
//! cloned it per solve; this module flattens it into compressed sparse row
//! arrays built directly from the immutable [`FlowNetwork`] edge list. Per
//! solve that is one allocation pass instead of `n` nested clones, and the
//! inner loops index flat arrays instead of chasing `Vec` headers.
//!
//! Arc order within a node is the **insertion order** of the legacy
//! adjacency lists (forward and residual arcs interleaved exactly as
//! `add_edge` used to push them), which preserves the
//! successive-shortest-path backend's per-node tie-breaking order from the
//! historical solver.

use crate::graph::FlowNetwork;

/// Marker for residual arcs in [`Csr::edge_id`].
pub(crate) const NO_EDGE: usize = usize::MAX;

/// A mutable CSR residual network: for every original edge a forward arc
/// (capacity, cost, edge id) and a residual arc (zero capacity, negated
/// cost, no edge id), grouped by tail node.
#[derive(Debug)]
pub(crate) struct Csr {
    /// Arc range of node `u` is `start[u]..start[u + 1]`.
    pub start: Vec<usize>,
    /// Head node per arc.
    pub to: Vec<usize>,
    /// Residual capacity per arc (mutated during the solve).
    pub cap: Vec<f64>,
    /// Cost per arc (negated on residual arcs).
    pub cost: Vec<f64>,
    /// Flat index of the paired reverse arc.
    pub rev: Vec<usize>,
    /// Original edge id for forward arcs, [`NO_EDGE`] for residual arcs.
    pub edge_id: Vec<usize>,
}

impl Csr {
    /// Builds the residual network for one solve.
    pub fn build(network: &FlowNetwork) -> Csr {
        let n = network.num_nodes();
        let num_arcs = 2 * network.num_edges();
        let mut degree = vec![0usize; n];
        for edge in network.edges() {
            degree[edge.from] += 1;
            degree[edge.to] += 1;
        }
        let mut start = Vec::with_capacity(n + 1);
        start.push(0usize);
        for u in 0..n {
            start.push(start[u] + degree[u]);
        }

        let mut to = vec![0usize; num_arcs];
        let mut cap = vec![0.0f64; num_arcs];
        let mut cost = vec![0.0f64; num_arcs];
        let mut rev = vec![0usize; num_arcs];
        let mut edge_id = vec![NO_EDGE; num_arcs];
        // Fill in add_edge order so each node's arcs keep the legacy
        // adjacency-list interleaving.
        let mut cursor = start[..n].to_vec();
        for (id, edge) in network.edges().iter().enumerate() {
            let fwd = cursor[edge.from];
            cursor[edge.from] += 1;
            let bwd = cursor[edge.to];
            cursor[edge.to] += 1;
            to[fwd] = edge.to;
            cap[fwd] = edge.capacity;
            cost[fwd] = edge.cost;
            rev[fwd] = bwd;
            edge_id[fwd] = id;
            to[bwd] = edge.from;
            cap[bwd] = 0.0;
            cost[bwd] = -edge.cost;
            rev[bwd] = fwd;
        }

        Csr {
            start,
            to,
            cap,
            cost,
            rev,
            edge_id,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.start.len() - 1
    }

    /// The arc index range of node `u`.
    pub fn arcs(&self, u: usize) -> std::ops::Range<usize> {
        self.start[u]..self.start[u + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_preserves_per_node_insertion_order() {
        // 0→1, 1→2, 0→2: node 1 sees the residual arc of 0→1 before the
        // forward arc of 1→2, exactly like the legacy adjacency lists.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0, 1.0);
        net.add_edge(1, 2, 2.0, 3.0);
        net.add_edge(0, 2, 4.0, 5.0);
        let csr = Csr::build(&net);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.start, vec![0, 2, 4, 6]);
        // Node 0: forward 0→1, forward 0→2.
        assert_eq!(&csr.to[csr.arcs(0)], &[1, 2]);
        assert_eq!(&csr.edge_id[csr.arcs(0)], &[0, 2]);
        // Node 1: residual of 0→1, then forward 1→2.
        assert_eq!(&csr.to[csr.arcs(1)], &[0, 2]);
        assert_eq!(&csr.edge_id[csr.arcs(1)], &[NO_EDGE, 1]);
        assert_eq!(&csr.cost[csr.arcs(1)], &[-1.0, 3.0]);
        // Node 2: residual of 1→2, residual of 0→2.
        assert_eq!(&csr.to[csr.arcs(2)], &[1, 0]);
        assert_eq!(&csr.cap[csr.arcs(2)], &[0.0, 0.0]);
        // rev links pair up.
        for arc in 0..csr.to.len() {
            assert_eq!(csr.rev[csr.rev[arc]], arc);
        }
    }
}
