//! Flow network representation and the pluggable solver API.
//!
//! The network itself is a plain edge list ([`FlowNetwork`]); solving is
//! delegated to a [`MinCostFlowSolver`] implementation selected by
//! [`SolverKind`]. Solvers build their own working state (a CSR residual
//! network, a spanning-tree structure, …) per solve, so the network stays
//! immutable and cheap to share.

use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use marqsim_obs::{metrics, trace};

use crate::basis::SpanningBasis;
use crate::simplex::NetworkSimplex;
use crate::ssp::SuccessiveShortestPath;

/// Numerical tolerance for treating residual capacities as zero.
pub(crate) const CAP_EPS: f64 = 1e-12;

/// Errors produced by the min-cost flow solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The requested amount of flow cannot be routed from source to sink.
    Infeasible {
        /// Flow that could be routed before the network saturated.
        routed: f64,
        /// Flow that was requested.
        requested: f64,
    },
    /// Source or sink index is out of range.
    InvalidNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the network.
        num_nodes: usize,
    },
    /// The network-simplex anti-cycling watchdog hit its hard pivot cap
    /// without reaching optimality. Never returned by a correct solve on
    /// well-formed inputs; it exists so the backstop can *never* be a
    /// silent break returning a suboptimal flow.
    PivotLimit {
        /// Pivots performed when the cap was hit.
        pivots: u64,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Infeasible { routed, requested } => {
                write!(
                    f,
                    "only {routed} of {requested} units of flow can be routed"
                )
            }
            FlowError::InvalidNode { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for a network with {num_nodes} nodes"
                )
            }
            FlowError::PivotLimit { pivots } => {
                write!(
                    f,
                    "network simplex hit the anti-cycling pivot cap after {pivots} pivots"
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// The result of a min-cost flow computation.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Total flow routed (equals the requested amount on success).
    pub amount: f64,
    /// Total cost `Σ f(e) · w(e)`.
    pub cost: f64,
    /// Flow on each edge, indexed by the [`FlowNetwork::add_edge`] return
    /// value.
    pub edge_flows: Vec<f64>,
    /// [`MinCostFlowSolver::name`] of the backend that produced this result.
    pub solver: &'static str,
    /// Whether the successive-shortest-path backend skipped its Bellman–Ford
    /// potential initialization because every edge cost was non-negative
    /// (always `false` for other backends).
    pub bellman_ford_skipped: bool,
    /// Whether this solve actually reused a saved [`SpanningBasis`]
    /// (`false` on cold solves and whenever a warm request fell back —
    /// backend without warm support, fingerprint mismatch, corrupt basis).
    pub warm_start: bool,
    /// Per-solve profiling filled in by the backend (pivot/iteration count
    /// and phase timings); published to the metrics registry by
    /// [`FlowNetwork::min_cost_flow_with`].
    pub profile: SolveProfile,
}

/// Backend-reported profiling for one solve. Phase semantics per backend:
/// for `ssp`, `init` is the CSR build plus the (possibly skipped)
/// Bellman–Ford potential bootstrap and `pivots` counts augmenting-path
/// iterations; for `network_simplex`, `init` is arc-list and initial-basis
/// construction and `pivots` counts basis exchanges. `optimize` is the
/// main solve loop for both.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveProfile {
    /// Basis exchanges (simplex) or augmenting iterations (ssp).
    pub pivots: u64,
    /// Seconds spent building per-solve working state.
    pub init_seconds: f64,
    /// Seconds spent in the optimization loop.
    pub optimize_seconds: f64,
}

/// One directed edge of a [`FlowNetwork`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEdge {
    /// Tail node.
    pub from: usize,
    /// Head node.
    pub to: usize,
    /// Capacity (non-negative).
    pub capacity: f64,
    /// Cost per unit of flow (finite; may be negative).
    pub cost: f64,
}

/// A directed flow network with real-valued capacities and costs
/// (Definition 2.7 of the paper).
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    num_nodes: usize,
    edges: Vec<FlowEdge>,
}

impl FlowNetwork {
    /// Creates a network with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> Self {
        FlowNetwork {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added via [`Self::add_edge`].
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, in insertion order (the index of an edge in this slice is
    /// its edge id).
    pub fn edges(&self) -> &[FlowEdge] {
        &self.edges
    }

    /// Whether every edge cost is non-negative (the successive-shortest-path
    /// fast path: Dijkstra needs no Bellman–Ford potential bootstrap).
    pub fn costs_are_non_negative(&self) -> bool {
        self.edges.iter().all(|e| e.cost >= 0.0)
    }

    /// Adds a directed edge with the given capacity and cost and returns its
    /// edge id (used to look up the flow in [`FlowResult::edge_flows`]).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, the capacity is negative or the
    /// cost is not finite.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: f64, cost: f64) -> usize {
        let n = self.num_nodes;
        assert!(from < n && to < n, "edge endpoints must be existing nodes");
        assert!(capacity >= 0.0, "capacity must be non-negative");
        assert!(cost.is_finite(), "cost must be finite");
        let edge_id = self.edges.len();
        self.edges.push(FlowEdge {
            from,
            to,
            capacity,
            cost,
        });
        edge_id
    }

    /// Computes a minimum-cost flow of `amount` units from `source` to
    /// `sink` with the default backend
    /// ([`SolverKind::SuccessiveShortestPath`]).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Infeasible`] if the network cannot carry the
    /// requested amount, or [`FlowError::InvalidNode`] for bad endpoints.
    pub fn min_cost_flow(
        &self,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<FlowResult, FlowError> {
        self.min_cost_flow_with(SolverKind::default(), source, sink, amount)
    }

    /// Like [`min_cost_flow`](Self::min_cost_flow) with an explicit backend.
    ///
    /// Every solve through this entry point is telemetered: one
    /// `flow_solve` trace span, plus per-backend registry instruments
    /// (solve counters, latency/phase histograms, pivot and
    /// Bellman–Ford-skip counters — see `docs/observability.md`).
    ///
    /// # Errors
    ///
    /// Same contract as [`min_cost_flow`](Self::min_cost_flow).
    pub fn min_cost_flow_with(
        &self,
        solver: SolverKind,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<FlowResult, FlowError> {
        self.solve_telemetered(solver, source, sink, amount, None)
            .map(|(result, _)| result)
    }

    /// Like [`min_cost_flow_with`](Self::min_cost_flow_with), additionally
    /// returning the solver's optimal [`SpanningBasis`] when the backend
    /// supports warm starts (`None` for `ssp`). Telemetered identically.
    ///
    /// # Errors
    ///
    /// Same contract as [`min_cost_flow`](Self::min_cost_flow).
    pub fn min_cost_flow_with_basis(
        &self,
        solver: SolverKind,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        self.solve_telemetered(solver, source, sink, amount, None)
    }

    /// Warm-start re-solve from a saved basis (see
    /// [`MinCostFlowSolver::solve_warm`]): a matching basis is re-priced
    /// under this network's costs and re-pivoted to optimality; a
    /// mismatched basis or a backend without warm support degrades to a
    /// cold solve. On an actual warm start the solve additionally bumps
    /// `marqsim_flow_warm_starts_total` and records the re-pivot time in
    /// `marqsim_flow_repivot_seconds`.
    ///
    /// # Errors
    ///
    /// Same classification as [`min_cost_flow`](Self::min_cost_flow) —
    /// infeasibility reports identically warm or cold.
    pub fn min_cost_flow_warm(
        &self,
        solver: SolverKind,
        source: usize,
        sink: usize,
        amount: f64,
        basis: &SpanningBasis,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        self.solve_telemetered(solver, source, sink, amount, Some(basis))
    }

    fn solve_telemetered(
        &self,
        solver: SolverKind,
        source: usize,
        sink: usize,
        amount: f64,
        warm: Option<&SpanningBasis>,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        // Resolve the `auto` policy once, up front: the trace span, the
        // per-backend instruments, and the result's `solver` field all name
        // the concrete backend that actually ran.
        let solver = solver.resolve_for_nodes(self.num_nodes);
        // The span's `warm` field reports whether a usable (matching)
        // basis was offered; `FlowResult::warm_start` is the ground truth
        // for whether it was reused.
        let warm_requested = warm.is_some_and(|b| b.matches(self, source, sink, amount));
        let span = trace::Span::enter("flow_solve")
            .field("backend", solver.as_str())
            .field("nodes", self.num_nodes)
            .field("edges", self.edges.len())
            .field("warm", warm_requested);
        let started = Instant::now();
        let backend = solver.solver();
        let result = match warm {
            Some(basis) => backend.solve_warm(self, source, sink, amount, basis),
            None => backend.solve_with_basis(self, source, sink, amount),
        };
        let elapsed = started.elapsed().as_secs_f64();
        let instruments = backend_metrics(solver);
        instruments.solve_seconds.record(elapsed);
        match &result {
            Ok((flow, _)) => {
                instruments.solves.inc();
                instruments.pivots.add(flow.profile.pivots);
                if flow.bellman_ford_skipped {
                    instruments.bf_skips.inc();
                }
                if flow.warm_start {
                    instruments.warm_starts.inc();
                    instruments
                        .repivot_seconds
                        .record(flow.profile.optimize_seconds);
                }
                instruments.init_seconds.record(flow.profile.init_seconds);
                instruments
                    .optimize_seconds
                    .record(flow.profile.optimize_seconds);
            }
            Err(_) => instruments.solve_errors.inc(),
        }
        drop(span);
        result
    }

    /// Shared endpoint validation for every backend.
    pub(crate) fn validate_endpoints(&self, source: usize, sink: usize) -> Result<(), FlowError> {
        let n = self.num_nodes;
        if source >= n || sink >= n {
            return Err(FlowError::InvalidNode {
                node: source.max(sink),
                num_nodes: n,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The solver API
// ---------------------------------------------------------------------------

/// A min-cost-flow backend. Implementations are stateless (per-solve working
/// state is local), so one `&'static` instance serves every thread.
pub trait MinCostFlowSolver: Send + Sync {
    /// Stable backend name — the spelling used by `MARQSIM_FLOW_SOLVER`,
    /// the serve wire protocol, and bench/stat lines.
    fn name(&self) -> &'static str;

    /// Computes a minimum-cost flow of `amount` units from `source` to
    /// `sink`.
    ///
    /// On networks without negative-cost cycles every backend returns the
    /// same optimal cost. With such a cycle present, backends legitimately
    /// differ (see the [crate docs](crate)): SSP solves the pure s→t
    /// problem while the simplex also cancels the cycle.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Infeasible`] (carrying how much flow *could* be
    /// routed) if the network cannot carry the requested amount, or
    /// [`FlowError::InvalidNode`] for out-of-range endpoints — the same
    /// classification for every backend.
    fn solve(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<FlowResult, FlowError>;

    /// Like [`solve`](Self::solve), additionally returning the solver's
    /// optimal basis when the backend supports warm starts (`None`
    /// otherwise — the default implementation). The basis can seed
    /// [`solve_warm`](Self::solve_warm) on later same-topology instances.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Self::solve).
    fn solve_with_basis(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        self.solve(network, source, sink, amount)
            .map(|result| (result, None))
    }

    /// Re-solves from a saved basis: re-prices the basis under this
    /// network's costs and re-pivots to optimality instead of starting
    /// from scratch. The default implementation ignores the basis and
    /// solves cold (the `ssp` fallback), so every backend accepts a warm
    /// request; [`FlowResult::warm_start`] reports whether the basis was
    /// actually reused. A basis whose topology fingerprint does not match
    /// the instance is never applied.
    ///
    /// # Errors
    ///
    /// Identical classification to [`solve`](Self::solve) — in particular
    /// an infeasible instance reports the same
    /// [`FlowError::Infeasible`] whether solved warm or cold.
    fn solve_warm(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
        basis: &SpanningBasis,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        let _ = basis;
        self.solve_with_basis(network, source, sink, amount)
    }
}

/// The registered backends, selectable end to end (engine `CacheConfig`,
/// `SubmitOptions`, the serve wire protocol, `MARQSIM_FLOW_SOLVER`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// Successive shortest paths with Johnson potentials (Dijkstra inner
    /// loop). The default; preserves the historical solver's per-node
    /// arc-order tie-breaking (see `ssp` module docs for the one
    /// observable fast-path caveat on degenerate instances).
    #[default]
    SuccessiveShortestPath,
    /// Primal network simplex over a spanning-tree structure with a
    /// block-search pivot rule.
    NetworkSimplex,
    /// Per-instance backend selection from the measured crossover
    /// (`BENCH.md`): `ssp` for small instances (≤ [`Self::AUTO_SSP_MAX_STRINGS`]
    /// Hamiltonian strings, where absolute solve cost is negligible and the
    /// historical default's tie-breaking is preserved), `network_simplex`
    /// above it (decisively faster at 500+ strings: 0.79 s vs 2.03 s cold).
    /// `Auto` always resolves to one of the concrete backends before any
    /// solve, metric, or cache attribution — it never appears in
    /// [`Self::ALL`] or on a `FlowResult`.
    Auto,
}

static SSP: SuccessiveShortestPath = SuccessiveShortestPath;
static SIMPLEX: NetworkSimplex = NetworkSimplex;
static AUTO: AutoSolver = AutoSolver;

/// [`MinCostFlowSolver`] adapter for [`SolverKind::Auto`]: delegates each
/// solve to the backend [`SolverKind::resolve_for_nodes`] picks for the
/// network at hand, so `SolverKind::solver()` stays total. The returned
/// [`FlowResult::solver`] names the *resolved* backend, never `"auto"`.
struct AutoSolver;

impl AutoSolver {
    fn resolved(network: &FlowNetwork) -> &'static dyn MinCostFlowSolver {
        SolverKind::Auto
            .resolve_for_nodes(network.num_nodes())
            .solver()
    }
}

impl MinCostFlowSolver for AutoSolver {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn solve(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<FlowResult, FlowError> {
        Self::resolved(network).solve(network, source, sink, amount)
    }

    fn solve_with_basis(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        Self::resolved(network).solve_with_basis(network, source, sink, amount)
    }

    fn solve_warm(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
        basis: &SpanningBasis,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        Self::resolved(network).solve_warm(network, source, sink, amount, basis)
    }
}

/// Cached global-registry handles for one backend — registered once, so
/// the per-solve record path is atomics only.
struct BackendMetrics {
    solves: Arc<metrics::Counter>,
    solve_errors: Arc<metrics::Counter>,
    solve_seconds: Arc<metrics::Histogram>,
    pivots: Arc<metrics::Counter>,
    bf_skips: Arc<metrics::Counter>,
    warm_starts: Arc<metrics::Counter>,
    repivot_seconds: Arc<metrics::Histogram>,
    init_seconds: Arc<metrics::Histogram>,
    optimize_seconds: Arc<metrics::Histogram>,
}

fn backend_metrics(kind: SolverKind) -> &'static BackendMetrics {
    static METRICS: OnceLock<Vec<BackendMetrics>> = OnceLock::new();
    let all = METRICS.get_or_init(|| {
        let registry = metrics::global();
        SolverKind::ALL
            .iter()
            .map(|kind| {
                let backend: &[(&str, &str)] = &[("backend", kind.as_str())];
                BackendMetrics {
                    solves: registry.counter_with("marqsim_flow_solves_total", backend),
                    solve_errors: registry.counter_with("marqsim_flow_solve_errors_total", backend),
                    solve_seconds: registry.histogram_with("marqsim_flow_solve_seconds", backend),
                    pivots: registry.counter_with("marqsim_flow_pivots_total", backend),
                    bf_skips: registry.counter_with("marqsim_flow_bf_skips_total", backend),
                    warm_starts: registry.counter_with("marqsim_flow_warm_starts_total", backend),
                    repivot_seconds: registry
                        .histogram_with("marqsim_flow_repivot_seconds", backend),
                    init_seconds: registry.histogram_with(
                        "marqsim_flow_phase_seconds",
                        &[("backend", kind.as_str()), ("phase", "init")],
                    ),
                    optimize_seconds: registry.histogram_with(
                        "marqsim_flow_phase_seconds",
                        &[("backend", kind.as_str()), ("phase", "optimize")],
                    ),
                }
            })
            .collect()
    });
    let index = SolverKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every SolverKind appears in ALL");
    &all[index]
}

impl SolverKind {
    /// Every concrete backend, default first. `Auto` is deliberately absent:
    /// it is a selection *policy*, and everything indexed per backend
    /// (registry instruments, cache-key attribution, bench tables) only
    /// deals in resolved kinds. Use [`Self::SELECTABLE`] for the spellings a
    /// user may request.
    pub const ALL: [SolverKind; 2] = [
        SolverKind::SuccessiveShortestPath,
        SolverKind::NetworkSimplex,
    ];

    /// Everything a user may select end to end (`MARQSIM_FLOW_SOLVER`,
    /// `SubmitOptions::flow_solver`, the serve wire protocol): the concrete
    /// backends plus the `auto` policy.
    pub const SELECTABLE: [SolverKind; 3] = [
        SolverKind::SuccessiveShortestPath,
        SolverKind::NetworkSimplex,
        SolverKind::Auto,
    ];

    /// Largest instance (in Hamiltonian strings) `Auto` still hands to
    /// `ssp`; anything larger resolves to `network_simplex`. Sits between
    /// the 100-string and 500-string rows of the `BENCH.md` backend table.
    pub const AUTO_SSP_MAX_STRINGS: usize = 100;

    /// The stable name ([`MinCostFlowSolver::name`] of the backend).
    pub const fn as_str(self) -> &'static str {
        match self {
            SolverKind::SuccessiveShortestPath => "ssp",
            SolverKind::NetworkSimplex => "network_simplex",
            SolverKind::Auto => "auto",
        }
    }

    /// Parses a backend name (the `as_str` spellings plus common aliases).
    pub fn parse(spelling: &str) -> Option<SolverKind> {
        match spelling.trim().to_ascii_lowercase().as_str() {
            "ssp" | "successive_shortest_path" | "successive-shortest-path" => {
                Some(SolverKind::SuccessiveShortestPath)
            }
            "network_simplex" | "network-simplex" | "simplex" => Some(SolverKind::NetworkSimplex),
            "auto" => Some(SolverKind::Auto),
            _ => None,
        }
    }

    /// Resolves the `Auto` policy for an instance of `strings` Hamiltonian
    /// terms; concrete kinds return themselves. The crossover is the
    /// measured one from `BENCH.md`: small instances keep the historical
    /// `ssp` default (negligible absolute cost, bit-compatible
    /// tie-breaking), larger ones get the decisively faster simplex.
    pub const fn resolve_for_strings(self, strings: usize) -> SolverKind {
        match self {
            SolverKind::Auto => {
                if strings <= Self::AUTO_SSP_MAX_STRINGS {
                    SolverKind::SuccessiveShortestPath
                } else {
                    SolverKind::NetworkSimplex
                }
            }
            concrete => concrete,
        }
    }

    /// [`Self::resolve_for_strings`] via the node count of the bipartite
    /// transition network (`nodes = 2·strings + 2`: one in-layer and one
    /// out-layer node per Hamiltonian string plus source and sink).
    pub const fn resolve_for_nodes(self, num_nodes: usize) -> SolverKind {
        self.resolve_for_strings(num_nodes.saturating_sub(2) / 2)
    }

    /// The backend implementation. Total over every kind: `Auto` returns an
    /// adapter that resolves per network, though the telemetered solve
    /// entry points resolve *before* reaching it so instruments and spans
    /// always name a concrete backend.
    pub fn solver(self) -> &'static dyn MinCostFlowSolver {
        match self {
            SolverKind::SuccessiveShortestPath => &SSP,
            SolverKind::NetworkSimplex => &SIMPLEX,
            SolverKind::Auto => &AUTO,
        }
    }
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SolverKind::parse(s).ok_or_else(|| {
            format!(
                "unknown flow solver '{s}' (registered backends: {})",
                SolverKind::SELECTABLE.map(SolverKind::as_str).join(", ")
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [SolverKind; 2] {
        SolverKind::ALL
    }

    #[test]
    fn solver_kind_round_trips_names() {
        for kind in both() {
            assert_eq!(SolverKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.solver().name(), kind.as_str());
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert_eq!(
            SolverKind::parse("simplex"),
            Some(SolverKind::NetworkSimplex)
        );
        assert_eq!(SolverKind::parse("nope"), None);
        assert!("nope".parse::<SolverKind>().unwrap_err().contains("ssp"));
        assert_eq!(SolverKind::default(), SolverKind::SuccessiveShortestPath);
    }

    #[test]
    fn auto_resolves_by_instance_size() {
        // The policy: ssp up to the crossover, simplex above it.
        assert_eq!(
            SolverKind::Auto.resolve_for_strings(1),
            SolverKind::SuccessiveShortestPath
        );
        assert_eq!(
            SolverKind::Auto.resolve_for_strings(SolverKind::AUTO_SSP_MAX_STRINGS),
            SolverKind::SuccessiveShortestPath
        );
        assert_eq!(
            SolverKind::Auto.resolve_for_strings(SolverKind::AUTO_SSP_MAX_STRINGS + 1),
            SolverKind::NetworkSimplex
        );
        // Node form: the bipartite transition network has 2n + 2 nodes.
        assert_eq!(
            SolverKind::Auto.resolve_for_nodes(2 * SolverKind::AUTO_SSP_MAX_STRINGS + 2),
            SolverKind::SuccessiveShortestPath
        );
        assert_eq!(
            SolverKind::Auto.resolve_for_nodes(2 * (SolverKind::AUTO_SSP_MAX_STRINGS + 1) + 2),
            SolverKind::NetworkSimplex
        );
        // Concrete kinds are fixed points of resolution.
        for kind in SolverKind::ALL {
            assert_eq!(kind.resolve_for_strings(1_000_000), kind);
            assert_eq!(kind.resolve_for_nodes(0), kind);
        }
        // Spellings: parseable and selectable, but not a registered backend.
        assert_eq!(SolverKind::parse("auto"), Some(SolverKind::Auto));
        assert_eq!(SolverKind::Auto.as_str(), "auto");
        assert!(!SolverKind::ALL.contains(&SolverKind::Auto));
        assert!(SolverKind::SELECTABLE.contains(&SolverKind::Auto));
        assert!("nope".parse::<SolverKind>().unwrap_err().contains("auto"));
        // `solver()` is total, and a solve through the auto policy reports
        // the *resolved* backend, never "auto".
        assert_eq!(SolverKind::Auto.solver().name(), "auto");
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0, 1.0);
        let r = net.min_cost_flow_with(SolverKind::Auto, 0, 1, 1.0).unwrap();
        assert_eq!(r.solver, "ssp");
        assert!((r.cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auto_solves_match_the_resolved_backend_exactly() {
        // Same seed-free deterministic instance solved via Auto and via the
        // backend Auto resolves to: identical results, bit for bit.
        let mut net = FlowNetwork::new(6);
        for &(u, v, c, w) in &[
            (0usize, 1usize, 2.0, 4.0),
            (0, 2, 2.0, 1.0),
            (1, 2, 1.0, 1.0),
            (1, 3, 1.5, 3.0),
            (2, 3, 1.0, 6.0),
            (2, 4, 2.0, 2.0),
            (3, 5, 2.0, 1.0),
            (4, 3, 1.0, 0.5),
            (4, 5, 1.0, 7.0),
        ] {
            net.add_edge(u, v, c, w);
        }
        let resolved = SolverKind::Auto.resolve_for_nodes(net.num_nodes());
        let auto = net.min_cost_flow_with(SolverKind::Auto, 0, 5, 2.5).unwrap();
        let direct = net.min_cost_flow_with(resolved, 0, 5, 2.5).unwrap();
        assert_eq!(auto.solver, direct.solver);
        assert_eq!(auto.cost.to_bits(), direct.cost.to_bits());
        assert_eq!(auto.edge_flows.len(), direct.edge_flows.len());
        for (a, d) in auto.edge_flows.iter().zip(direct.edge_flows.iter()) {
            assert_eq!(a.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn single_edge_network() {
        for kind in both() {
            let mut net = FlowNetwork::new(2);
            let e = net.add_edge(0, 1, 2.0, 3.0);
            let r = net.min_cost_flow_with(kind, 0, 1, 1.5).unwrap();
            assert!((r.cost - 4.5).abs() < 1e-9, "{kind}");
            assert!((r.edge_flows[e] - 1.5).abs() < 1e-9, "{kind}");
            assert_eq!(r.solver, kind.as_str());
        }
    }

    #[test]
    fn prefers_the_cheaper_route() {
        for kind in both() {
            let mut net = FlowNetwork::new(4);
            let cheap_a = net.add_edge(0, 1, 1.0, 1.0);
            let cheap_b = net.add_edge(1, 3, 1.0, 1.0);
            let pricey_a = net.add_edge(0, 2, 1.0, 5.0);
            let pricey_b = net.add_edge(2, 3, 1.0, 5.0);
            let r = net.min_cost_flow_with(kind, 0, 3, 1.0).unwrap();
            assert!((r.cost - 2.0).abs() < 1e-9, "{kind}");
            assert!((r.edge_flows[cheap_a] - 1.0).abs() < 1e-9, "{kind}");
            assert!((r.edge_flows[cheap_b] - 1.0).abs() < 1e-9, "{kind}");
            assert!(r.edge_flows[pricey_a].abs() < 1e-9, "{kind}");
            assert!(r.edge_flows[pricey_b].abs() < 1e-9, "{kind}");
        }
    }

    #[test]
    fn spills_over_to_the_expensive_route_when_needed() {
        for kind in both() {
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, 1.0, 1.0);
            net.add_edge(1, 3, 1.0, 1.0);
            net.add_edge(0, 2, 1.0, 5.0);
            net.add_edge(2, 3, 1.0, 5.0);
            let r = net.min_cost_flow_with(kind, 0, 3, 2.0).unwrap();
            assert!((r.cost - 12.0).abs() < 1e-9, "{kind}");
        }
    }

    #[test]
    fn infeasible_demand_is_reported_identically_by_every_backend() {
        for kind in both() {
            let mut net = FlowNetwork::new(2);
            net.add_edge(0, 1, 1.0, 1.0);
            let err = net.min_cost_flow_with(kind, 0, 1, 2.0).unwrap_err();
            match err {
                FlowError::Infeasible { routed, requested } => {
                    assert!((routed - 1.0).abs() < 1e-9, "{kind}: routed {routed}");
                    assert!((requested - 2.0).abs() < 1e-9, "{kind}");
                }
                other => panic!("{kind}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_node_is_reported_identically_by_every_backend() {
        for kind in both() {
            let net = FlowNetwork::new(2);
            assert_eq!(
                net.min_cost_flow_with(kind, 0, 5, 1.0).unwrap_err(),
                FlowError::InvalidNode {
                    node: 5,
                    num_nodes: 2
                },
                "{kind}"
            );
        }
    }

    #[test]
    fn flow_conservation_holds_at_interior_nodes() {
        for kind in both() {
            // Diamond with an extra middle edge; route 1.5 units.
            let mut net = FlowNetwork::new(5);
            let edges = [
                (0, 1, 1.0, 2.0),
                (0, 2, 1.0, 1.0),
                (1, 2, 0.5, 0.1),
                (1, 3, 1.0, 3.0),
                (2, 3, 1.2, 2.0),
                (3, 4, 2.0, 0.0),
            ];
            let ids: Vec<usize> = edges
                .iter()
                .map(|&(u, v, c, w)| net.add_edge(u, v, c, w))
                .collect();
            let r = net.min_cost_flow_with(kind, 0, 4, 1.5).unwrap();
            // Net flow into each interior node equals net flow out.
            for node in 1..=3 {
                let mut balance = 0.0;
                for (&(u, v, _, _), &id) in edges.iter().zip(ids.iter()) {
                    if v == node {
                        balance += r.edge_flows[id];
                    }
                    if u == node {
                        balance -= r.edge_flows[id];
                    }
                }
                assert!(
                    balance.abs() < 1e-9,
                    "{kind}: node {node} imbalance {balance}"
                );
            }
            // Capacities respected.
            for (&(_, _, cap, _), &id) in edges.iter().zip(ids.iter()) {
                assert!(r.edge_flows[id] <= cap + 1e-9, "{kind}");
                assert!(r.edge_flows[id] >= -1e-9, "{kind}");
            }
        }
    }

    #[test]
    fn residual_rerouting_finds_the_global_optimum() {
        for kind in both() {
            // Classic example where the greedy path must later be partially
            // undone through residual arcs to reach the optimum.
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, 1.0, 1.0);
            net.add_edge(0, 2, 1.0, 10.0);
            net.add_edge(1, 2, 1.0, -8.0);
            net.add_edge(1, 3, 1.0, 10.0);
            net.add_edge(2, 3, 1.0, 1.0);
            let r = net.min_cost_flow_with(kind, 0, 3, 2.0).unwrap();
            assert!((r.cost - 22.0).abs() < 1e-9, "{kind}: cost {}", r.cost);
            assert!((r.amount - 2.0).abs() < 1e-12, "{kind}");
        }
    }

    #[test]
    fn fractional_capacities_route_exactly() {
        for kind in both() {
            let mut net = FlowNetwork::new(3);
            let a = net.add_edge(0, 1, 0.3, 1.0);
            let b = net.add_edge(0, 1, 0.7, 2.0);
            let c = net.add_edge(1, 2, 1.0, 0.0);
            let r = net.min_cost_flow_with(kind, 0, 2, 1.0).unwrap();
            assert!((r.edge_flows[a] - 0.3).abs() < 1e-9, "{kind}");
            assert!((r.edge_flows[b] - 0.7).abs() < 1e-9, "{kind}");
            assert!((r.edge_flows[c] - 1.0).abs() < 1e-9, "{kind}");
            assert!((r.cost - (0.3 + 1.4)).abs() < 1e-9, "{kind}");
        }
    }

    #[test]
    fn zero_amount_flow_costs_nothing() {
        for kind in both() {
            let mut net = FlowNetwork::new(2);
            net.add_edge(0, 1, 1.0, 7.0);
            let r = net.min_cost_flow_with(kind, 0, 1, 0.0).unwrap();
            assert_eq!(r.cost, 0.0, "{kind}");
            assert!(r.edge_flows.iter().all(|&f| f == 0.0), "{kind}");
        }
    }

    #[test]
    fn ssp_records_the_bellman_ford_skip() {
        // Non-negative costs: the default backend skips the Bellman–Ford
        // bootstrap and says so; a negative cost forces the full init.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0, 1.0);
        net.add_edge(1, 2, 1.0, 0.0);
        let r = net.min_cost_flow(0, 2, 1.0).unwrap();
        assert!(r.bellman_ford_skipped);

        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0, -1.0);
        net.add_edge(1, 2, 1.0, 2.0);
        let r = net.min_cost_flow(0, 2, 1.0).unwrap();
        assert!(!r.bellman_ford_skipped);
        assert!((r.cost - 1.0).abs() < 1e-9);

        // The simplex backend never reports a skip.
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0, 1.0);
        let r = net
            .min_cost_flow_with(SolverKind::NetworkSimplex, 0, 1, 1.0)
            .unwrap();
        assert!(!r.bellman_ford_skipped);
    }

    #[test]
    fn solves_fill_profiles_and_registry_instruments() {
        let registry = metrics::global();
        for kind in both() {
            let backend: &[(&str, &str)] = &[("backend", kind.as_str())];
            let solves = registry.counter_with("marqsim_flow_solves_total", backend);
            let pivots = registry.counter_with("marqsim_flow_pivots_total", backend);
            let seconds = registry.histogram_with("marqsim_flow_solve_seconds", backend);
            let (solves_before, pivots_before, count_before) =
                (solves.get(), pivots.get(), seconds.count());

            let mut net = FlowNetwork::new(3);
            net.add_edge(0, 1, 2.0, 1.0);
            net.add_edge(1, 2, 2.0, 1.0);
            let r = net.min_cost_flow_with(kind, 0, 2, 1.0).unwrap();
            assert!(r.profile.pivots >= 1, "{kind}: at least one iteration");
            assert!(r.profile.init_seconds >= 0.0, "{kind}");
            assert!(r.profile.optimize_seconds >= 0.0, "{kind}");

            assert_eq!(solves.get(), solves_before + 1, "{kind}");
            assert_eq!(pivots.get(), pivots_before + r.profile.pivots, "{kind}");
            assert_eq!(seconds.count(), count_before + 1, "{kind}");
        }

        // Errors land in the error counter, not the solve counter.
        let errors =
            registry.counter_with("marqsim_flow_solve_errors_total", &[("backend", "ssp")]);
        let errors_before = errors.get();
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0, 1.0);
        let _ = net.min_cost_flow(0, 1, 5.0).unwrap_err();
        assert_eq!(errors.get(), errors_before + 1);
    }

    #[test]
    fn backends_agree_on_cost_for_a_dense_network() {
        // A denser network with parallel routes: both backends must land on
        // the same optimal cost (the cross-backend headline guarantee).
        let mut net = FlowNetwork::new(6);
        let arcs = [
            (0usize, 1usize, 2.0, 4.0),
            (0, 2, 2.0, 1.0),
            (1, 2, 1.0, 1.0),
            (1, 3, 1.5, 3.0),
            (2, 3, 1.0, 6.0),
            (2, 4, 2.0, 2.0),
            (3, 5, 2.0, 1.0),
            (4, 3, 1.0, 0.5),
            (4, 5, 1.0, 7.0),
        ];
        for &(u, v, c, w) in &arcs {
            net.add_edge(u, v, c, w);
        }
        let a = net
            .min_cost_flow_with(SolverKind::SuccessiveShortestPath, 0, 5, 2.5)
            .unwrap();
        let b = net
            .min_cost_flow_with(SolverKind::NetworkSimplex, 0, 5, 2.5)
            .unwrap();
        assert!(
            (a.cost - b.cost).abs() < 1e-9,
            "ssp {} vs simplex {}",
            a.cost,
            b.cost
        );
    }
}
