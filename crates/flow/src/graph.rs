//! Flow network representation and the successive-shortest-path solver.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Numerical tolerance for treating residual capacities as zero.
const CAP_EPS: f64 = 1e-12;

/// Errors produced by the min-cost flow solver.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The requested amount of flow cannot be routed from source to sink.
    Infeasible {
        /// Flow that could be routed before the network saturated.
        routed: f64,
        /// Flow that was requested.
        requested: f64,
    },
    /// Source or sink index is out of range.
    InvalidNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the network.
        num_nodes: usize,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Infeasible { routed, requested } => {
                write!(
                    f,
                    "only {routed} of {requested} units of flow can be routed"
                )
            }
            FlowError::InvalidNode { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for a network with {num_nodes} nodes"
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// The result of a min-cost flow computation.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Total flow routed (equals the requested amount on success).
    pub amount: f64,
    /// Total cost `Σ f(e) · w(e)`.
    pub cost: f64,
    /// Flow on each edge, indexed by the [`FlowNetwork::add_edge`] return
    /// value.
    pub edge_flows: Vec<f64>,
}

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: f64,
    cost: f64,
    /// Index of the reverse arc in the adjacency list of `to`.
    rev: usize,
    /// `Some(edge_id)` for forward arcs created by `add_edge`.
    edge_id: Option<usize>,
}

/// A directed flow network with real-valued capacities and costs
/// (Definition 2.7 of the paper).
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    adjacency: Vec<Vec<Arc>>,
    num_edges: usize,
}

/// Binary-heap entry for Dijkstra (min-heap via reversed ordering).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap becomes a min-heap on dist.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl FlowNetwork {
    /// Creates a network with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> Self {
        FlowNetwork {
            adjacency: vec![Vec::new(); num_nodes],
            num_edges: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges added via [`Self::add_edge`].
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds a directed edge with the given capacity and cost and returns its
    /// edge id (used to look up the flow in [`FlowResult::edge_flows`]).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, the capacity is negative or the
    /// cost is not finite.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: f64, cost: f64) -> usize {
        let n = self.num_nodes();
        assert!(from < n && to < n, "edge endpoints must be existing nodes");
        assert!(capacity >= 0.0, "capacity must be non-negative");
        assert!(cost.is_finite(), "cost must be finite");
        let edge_id = self.num_edges;
        self.num_edges += 1;
        let rev_from = self.adjacency[to].len();
        let rev_to = self.adjacency[from].len();
        self.adjacency[from].push(Arc {
            to,
            cap: capacity,
            cost,
            rev: rev_from,
            edge_id: Some(edge_id),
        });
        self.adjacency[to].push(Arc {
            to: from,
            cap: 0.0,
            cost: -cost,
            rev: rev_to,
            edge_id: None,
        });
        edge_id
    }

    /// Computes a minimum-cost flow of `amount` units from `source` to
    /// `sink` using successive shortest paths with Johnson potentials.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Infeasible`] if the network cannot carry the
    /// requested amount, or [`FlowError::InvalidNode`] for bad endpoints.
    pub fn min_cost_flow(
        &self,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<FlowResult, FlowError> {
        let n = self.num_nodes();
        if source >= n || sink >= n {
            return Err(FlowError::InvalidNode {
                node: source.max(sink),
                num_nodes: n,
            });
        }
        let mut graph = self.adjacency.clone();
        let mut potentials = vec![0.0f64; n];
        // Initial potentials via Bellman–Ford so that negative edge costs are
        // supported (the random-perturbation variant keeps costs non-negative,
        // but the solver does not rely on that).
        bellman_ford_potentials(&graph, source, &mut potentials);

        let mut remaining = amount;
        let mut total_cost = 0.0;
        let mut edge_flows = vec![0.0f64; self.num_edges];

        while remaining > CAP_EPS {
            // Dijkstra on reduced costs.
            let (dist, prev) = dijkstra(&graph, source, &potentials);
            if dist[sink].is_infinite() {
                return Err(FlowError::Infeasible {
                    routed: amount - remaining,
                    requested: amount,
                });
            }
            // Update potentials.
            for v in 0..n {
                if dist[v].is_finite() {
                    potentials[v] += dist[v];
                }
            }
            // Find bottleneck along the path.
            let mut bottleneck = remaining;
            let mut v = sink;
            while v != source {
                let (u, arc_idx) = prev[v].expect("path exists since dist is finite");
                bottleneck = bottleneck.min(graph[u][arc_idx].cap);
                v = u;
            }
            // Augment.
            let mut v = sink;
            while v != source {
                let (u, arc_idx) = prev[v].expect("path exists since dist is finite");
                let rev = graph[u][arc_idx].rev;
                graph[u][arc_idx].cap -= bottleneck;
                graph[v][rev].cap += bottleneck;
                total_cost += bottleneck * graph[u][arc_idx].cost;
                if let Some(id) = graph[u][arc_idx].edge_id {
                    edge_flows[id] += bottleneck;
                } else {
                    // Residual arc of an original edge: cancel flow on it.
                    let id = graph[v][rev]
                        .edge_id
                        .expect("one direction of every pair is an original edge");
                    edge_flows[id] -= bottleneck;
                }
                v = u;
            }
            remaining -= bottleneck;
        }

        Ok(FlowResult {
            amount,
            cost: total_cost,
            edge_flows,
        })
    }
}

/// Bellman–Ford pass to initialize potentials (handles negative costs).
fn bellman_ford_potentials(graph: &[Vec<Arc>], source: usize, potentials: &mut [f64]) {
    let n = graph.len();
    for p in potentials.iter_mut() {
        *p = f64::INFINITY;
    }
    potentials[source] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if potentials[u].is_infinite() {
                continue;
            }
            for arc in &graph[u] {
                if arc.cap > CAP_EPS && potentials[u] + arc.cost < potentials[arc.to] - 1e-15 {
                    potentials[arc.to] = potentials[u] + arc.cost;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Unreachable nodes keep potential 0 so reduced costs stay finite.
    for p in potentials.iter_mut() {
        if p.is_infinite() {
            *p = 0.0;
        }
    }
}

/// Dijkstra over residual arcs with reduced costs; returns distances and the
/// predecessor arc of each node.
#[allow(clippy::type_complexity)]
fn dijkstra(
    graph: &[Vec<Arc>],
    source: usize,
    potentials: &[f64],
) -> (Vec<f64>, Vec<Option<(usize, usize)>>) {
    let n = graph.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] + 1e-15 {
            continue;
        }
        for (idx, arc) in graph[u].iter().enumerate() {
            if arc.cap <= CAP_EPS {
                continue;
            }
            let reduced = arc.cost + potentials[u] - potentials[arc.to];
            // Clamp tiny negative values caused by floating-point noise.
            let reduced = reduced.max(0.0);
            let nd = d + reduced;
            if nd + 1e-15 < dist[arc.to] {
                dist[arc.to] = nd;
                prev[arc.to] = Some((u, idx));
                heap.push(HeapEntry {
                    dist: nd,
                    node: arc.to,
                });
            }
        }
    }
    (dist, prev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_network() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 2.0, 3.0);
        let r = net.min_cost_flow(0, 1, 1.5).unwrap();
        assert!((r.cost - 4.5).abs() < 1e-9);
        assert!((r.edge_flows[e] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn prefers_the_cheaper_route() {
        let mut net = FlowNetwork::new(4);
        let cheap_a = net.add_edge(0, 1, 1.0, 1.0);
        let cheap_b = net.add_edge(1, 3, 1.0, 1.0);
        let pricey_a = net.add_edge(0, 2, 1.0, 5.0);
        let pricey_b = net.add_edge(2, 3, 1.0, 5.0);
        let r = net.min_cost_flow(0, 3, 1.0).unwrap();
        assert!((r.cost - 2.0).abs() < 1e-9);
        assert!((r.edge_flows[cheap_a] - 1.0).abs() < 1e-9);
        assert!((r.edge_flows[cheap_b] - 1.0).abs() < 1e-9);
        assert!(r.edge_flows[pricey_a].abs() < 1e-9);
        assert!(r.edge_flows[pricey_b].abs() < 1e-9);
    }

    #[test]
    fn spills_over_to_the_expensive_route_when_needed() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0, 1.0);
        net.add_edge(1, 3, 1.0, 1.0);
        net.add_edge(0, 2, 1.0, 5.0);
        net.add_edge(2, 3, 1.0, 5.0);
        let r = net.min_cost_flow(0, 3, 2.0).unwrap();
        assert!((r.cost - 12.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_demand_is_reported() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0, 1.0);
        let err = net.min_cost_flow(0, 1, 2.0).unwrap_err();
        match err {
            FlowError::Infeasible { routed, requested } => {
                assert!((routed - 1.0).abs() < 1e-9);
                assert!((requested - 2.0).abs() < 1e-9);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_node_is_reported() {
        let net = FlowNetwork::new(2);
        assert!(matches!(
            net.min_cost_flow(0, 5, 1.0).unwrap_err(),
            FlowError::InvalidNode { .. }
        ));
    }

    #[test]
    fn flow_conservation_holds_at_interior_nodes() {
        // Diamond with an extra middle edge; route 1.5 units.
        let mut net = FlowNetwork::new(5);
        let edges = [
            (0, 1, 1.0, 2.0),
            (0, 2, 1.0, 1.0),
            (1, 2, 0.5, 0.1),
            (1, 3, 1.0, 3.0),
            (2, 3, 1.2, 2.0),
            (3, 4, 2.0, 0.0),
        ];
        let ids: Vec<usize> = edges
            .iter()
            .map(|&(u, v, c, w)| net.add_edge(u, v, c, w))
            .collect();
        let r = net.min_cost_flow(0, 4, 1.5).unwrap();
        // Net flow into each interior node equals net flow out.
        for node in 1..=3 {
            let mut balance = 0.0;
            for (&(u, v, _, _), &id) in edges.iter().zip(ids.iter()) {
                if v == node {
                    balance += r.edge_flows[id];
                }
                if u == node {
                    balance -= r.edge_flows[id];
                }
            }
            assert!(balance.abs() < 1e-9, "node {node} imbalance {balance}");
        }
        // Capacities respected.
        for (&(_, _, cap, _), &id) in edges.iter().zip(ids.iter()) {
            assert!(r.edge_flows[id] <= cap + 1e-9);
            assert!(r.edge_flows[id] >= -1e-9);
        }
    }

    #[test]
    fn residual_rerouting_finds_the_global_optimum() {
        // Classic example where the greedy path must later be partially
        // undone through residual arcs to reach the optimum.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0, 1.0);
        net.add_edge(0, 2, 1.0, 10.0);
        net.add_edge(1, 2, 1.0, -8.0);
        net.add_edge(1, 3, 1.0, 10.0);
        net.add_edge(2, 3, 1.0, 1.0);
        let r = net.min_cost_flow(0, 3, 2.0).unwrap();
        // Optimum is 22: either {0-1-3, 0-2-3} (11 + 11) or, equivalently,
        // {0-1-2-3 at -6, then 0-2, residual 2->1, 1-3 at 28}. A greedy solver
        // that never revisits the negative edge through residuals would pay
        // more.
        assert!((r.cost - 22.0).abs() < 1e-9);
        assert!((r.amount - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_capacities_route_exactly() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_edge(0, 1, 0.3, 1.0);
        let b = net.add_edge(0, 1, 0.7, 2.0);
        let c = net.add_edge(1, 2, 1.0, 0.0);
        let r = net.min_cost_flow(0, 2, 1.0).unwrap();
        assert!((r.edge_flows[a] - 0.3).abs() < 1e-9);
        assert!((r.edge_flows[b] - 0.7).abs() < 1e-9);
        assert!((r.edge_flows[c] - 1.0).abs() < 1e-9);
        assert!((r.cost - (0.3 + 1.4)).abs() < 1e-9);
    }

    #[test]
    fn zero_amount_flow_costs_nothing() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0, 7.0);
        let r = net.min_cost_flow(0, 1, 0.0).unwrap();
        assert_eq!(r.cost, 0.0);
        assert!(r.edge_flows.iter().all(|&f| f == 0.0));
    }
}
