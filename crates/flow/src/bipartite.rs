//! The MarQSim-shaped bipartite transportation network (§5.1).
//!
//! Given a marginal distribution `π` over `n` states and an `n × n` cost
//! matrix, this module builds the flow network
//!
//! ```text
//! S → Prev_i   (capacity π_i, cost 0)
//! Prev_i → Next_j  (capacity ∞, cost w_ij)   for allowed (i, j)
//! Next_j → T   (capacity π_j, cost 0)
//! ```
//!
//! routes one unit of flow, and reports the optimal flow `f_ij` between the
//! two layers. Dividing row `i` of the flow by `π_i` yields the transition
//! matrix (§5.1.2); that conversion lives in `marqsim-core`.

use crate::{FlowError, FlowNetwork, SolverKind, SpanningBasis};

/// Result of solving the bipartite transportation problem.
#[derive(Debug, Clone)]
pub struct BipartiteFlow {
    /// Optimal flow `f_ij` from `Prev_i` to `Next_j`.
    pub flows: Vec<Vec<f64>>,
    /// Total cost `Σ f_ij · w_ij` — by Proposition 5.1 this equals the
    /// expected CNOT count per transition when the flow is turned into a
    /// transition matrix.
    pub cost: f64,
    /// Name of the backend that solved the underlying network.
    pub solver: &'static str,
    /// Whether the backend skipped its Bellman–Ford potential bootstrap
    /// (the successive-shortest-path fast path — always taken here when the
    /// cost matrix is non-negative, e.g. for CNOT counts).
    pub bellman_ford_skipped: bool,
    /// Whether the solve re-pivoted from a caller-supplied
    /// [`SpanningBasis`] instead of building its basis from scratch.
    /// Always `false` on cold solves and on backends without warm
    /// support (`ssp`).
    pub warm_start: bool,
}

/// Errors produced by [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum BipartiteError {
    /// The marginal distribution is empty, has negative entries, or does not
    /// sum to one.
    InvalidMarginal {
        /// The sum of the provided marginal.
        sum: f64,
    },
    /// The cost matrix is not `n × n`.
    CostShapeMismatch {
        /// Number of states implied by the marginal.
        expected: usize,
    },
    /// The underlying min-cost-flow problem is infeasible (for example, every
    /// inner edge of some row excluded).
    Infeasible(FlowError),
}

impl std::fmt::Display for BipartiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BipartiteError::InvalidMarginal { sum } => {
                write!(
                    f,
                    "marginal distribution must be a probability vector (sum = {sum})"
                )
            }
            BipartiteError::CostShapeMismatch { expected } => {
                write!(f, "cost matrix must be {expected} x {expected}")
            }
            BipartiteError::Infeasible(e) => write!(f, "transportation problem infeasible: {e}"),
        }
    }
}

impl std::error::Error for BipartiteError {}

/// A very large capacity standing in for the paper's `∞` on inner edges.
const INF_CAPACITY: f64 = 1e18;

/// Solves the bipartite transportation problem with the default backend
/// ([`SolverKind::SuccessiveShortestPath`]).
///
/// `allow(i, j)` controls which inner edges exist; MarQSim's gate-cancellation
/// model excludes the diagonal (`i == j`) to rule out the trivial identity
/// transition matrix.
///
/// # Errors
///
/// Returns a [`BipartiteError`] if the inputs are malformed or the problem is
/// infeasible (e.g. a single state with its self-edge excluded).
pub fn solve<F>(
    marginal: &[f64],
    costs: &[Vec<f64>],
    allow: F,
) -> Result<BipartiteFlow, BipartiteError>
where
    F: FnMut(usize, usize) -> bool,
{
    solve_with(SolverKind::default(), marginal, costs, allow)
}

/// Like [`solve`] with an explicit min-cost-flow backend.
///
/// Every backend produces the same optimal cost and the same
/// [`BipartiteError`] classification; the flows themselves may differ
/// between backends when the optimum is not unique.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with<F>(
    solver: SolverKind,
    marginal: &[f64],
    costs: &[Vec<f64>],
    allow: F,
) -> Result<BipartiteFlow, BipartiteError>
where
    F: FnMut(usize, usize) -> bool,
{
    solve_inner(solver, marginal, costs, allow, None).map(|(flow, _)| flow)
}

/// Like [`solve_with`], additionally returning the backend's optimal
/// [`SpanningBasis`] (`None` for backends without warm support). The
/// basis can warm-start a later [`solve_warm_with`] over the *same*
/// marginal and `allow` relation — the network topology, and hence the
/// basis fingerprint, depends only on those two inputs, so solves that
/// differ only in their cost matrix (the `P_rp` perturbation-sampling
/// shape) reuse each other's bases.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with_basis<F>(
    solver: SolverKind,
    marginal: &[f64],
    costs: &[Vec<f64>],
    allow: F,
) -> Result<(BipartiteFlow, Option<SpanningBasis>), BipartiteError>
where
    F: FnMut(usize, usize) -> bool,
{
    solve_inner(solver, marginal, costs, allow, None)
}

/// Warm-start re-solve of the transportation problem from a basis saved
/// by an earlier [`solve_with_basis`] / [`solve_warm_with`] call. A
/// basis whose fingerprint does not match this network (different
/// marginal or `allow` relation), or a backend without warm support,
/// silently degrades to a cold solve — check
/// [`BipartiteFlow::warm_start`] for what actually happened.
///
/// # Errors
///
/// Same classification as [`solve`] — warm and cold solves report
/// identical errors.
pub fn solve_warm_with<F>(
    solver: SolverKind,
    marginal: &[f64],
    costs: &[Vec<f64>],
    allow: F,
    basis: &SpanningBasis,
) -> Result<(BipartiteFlow, Option<SpanningBasis>), BipartiteError>
where
    F: FnMut(usize, usize) -> bool,
{
    solve_inner(solver, marginal, costs, allow, Some(basis))
}

fn solve_inner<F>(
    solver: SolverKind,
    marginal: &[f64],
    costs: &[Vec<f64>],
    mut allow: F,
    warm: Option<&SpanningBasis>,
) -> Result<(BipartiteFlow, Option<SpanningBasis>), BipartiteError>
where
    F: FnMut(usize, usize) -> bool,
{
    let n = marginal.len();
    let sum: f64 = marginal.iter().sum();
    if n == 0 || marginal.iter().any(|&p| p < 0.0) || (sum - 1.0).abs() > 1e-9 {
        return Err(BipartiteError::InvalidMarginal { sum });
    }
    if costs.len() != n || costs.iter().any(|row| row.len() != n) {
        return Err(BipartiteError::CostShapeMismatch { expected: n });
    }

    // Node layout: 0 = S, 1..=n = Prev, n+1..=2n = Next, 2n+1 = T.
    let source = 0usize;
    let sink = 2 * n + 1;
    let prev = |i: usize| 1 + i;
    let next = |j: usize| 1 + n + j;

    let mut net = FlowNetwork::new(2 * n + 2);
    for (i, &pi) in marginal.iter().enumerate() {
        net.add_edge(source, prev(i), pi, 0.0);
        net.add_edge(next(i), sink, pi, 0.0);
    }
    let mut inner_ids = vec![vec![usize::MAX; n]; n];
    for i in 0..n {
        for j in 0..n {
            if allow(i, j) {
                inner_ids[i][j] = net.add_edge(prev(i), next(j), INF_CAPACITY, costs[i][j]);
            }
        }
    }

    let (result, basis) = match warm {
        Some(basis) => net.min_cost_flow_warm(solver, source, sink, 1.0, basis),
        None => net.min_cost_flow_with_basis(solver, source, sink, 1.0),
    }
    .map_err(BipartiteError::Infeasible)?;

    let mut flows = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            let id = inner_ids[i][j];
            if id != usize::MAX {
                flows[i][j] = result.edge_flows[id].max(0.0);
            }
        }
    }
    Ok((
        BipartiteFlow {
            flows,
            cost: result.cost,
            solver: result.solver,
            bellman_ford_skipped: result.bellman_ford_skipped,
            warm_start: result.warm_start,
        },
        basis,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Example 4.1 / Example 5.1 setup from the paper: π from the
    /// Hamiltonian `1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY`, with the CNOT
    /// costs between the Pauli strings as the cost matrix and the diagonal
    /// excluded.
    fn example_5_1() -> (Vec<f64>, Vec<Vec<f64>>) {
        let pi = vec![0.5, 0.25, 0.2, 0.05];
        // A CNOT-cost-style matrix for the strings IIIZ, IIZZ, XXYY, ZXZY.
        let costs = vec![
            vec![0.0, 1.0, 3.0, 3.0],
            vec![1.0, 0.0, 4.0, 3.0],
            vec![3.0, 4.0, 0.0, 4.0],
            vec![3.0, 3.0, 4.0, 0.0],
        ];
        (pi, costs)
    }

    #[test]
    fn marginals_are_matched_on_both_sides() {
        let (pi, costs) = example_5_1();
        let sol = solve(&pi, &costs, |i, j| i != j).unwrap();
        for i in 0..4 {
            let row_sum: f64 = sol.flows[i].iter().sum();
            let col_sum: f64 = (0..4).map(|k| sol.flows[k][i]).sum();
            assert!(
                (row_sum - pi[i]).abs() < 1e-9,
                "row {i}: {row_sum} vs {}",
                pi[i]
            );
            assert!(
                (col_sum - pi[i]).abs() < 1e-9,
                "col {i}: {col_sum} vs {}",
                pi[i]
            );
        }
    }

    #[test]
    fn diagonal_exclusion_is_respected() {
        let (pi, costs) = example_5_1();
        let sol = solve(&pi, &costs, |i, j| i != j).unwrap();
        for i in 0..4 {
            assert!(sol.flows[i][i].abs() < 1e-12);
        }
    }

    #[test]
    fn paper_example_5_1_flow_structure() {
        // Equation (13): the dominant term exchanges flow with the three
        // small terms; small terms route all their mass to the dominant term.
        let (pi, costs) = example_5_1();
        let sol = solve(&pi, &costs, |i, j| i != j).unwrap();
        for j in 1..4 {
            assert!(
                (sol.flows[j][0] - pi[j]).abs() < 1e-9,
                "term {j} should send all its mass to term 0, got {}",
                sol.flows[j][0]
            );
            assert!((sol.flows[0][j] - pi[j]).abs() < 1e-9);
        }
        // Expected optimal cost: every transition crosses the cheap edges
        // (cost 1, 3, 3) twice: 2*(0.25*1 + 0.2*3 + 0.05*3) = 2*1.0.
        assert!((sol.cost - 2.0 * (0.25 + 0.6 + 0.15)).abs() < 1e-9);
    }

    #[test]
    fn allowing_the_diagonal_yields_the_trivial_zero_cost_solution() {
        let (pi, costs) = example_5_1();
        let sol = solve(&pi, &costs, |_, _| true).unwrap();
        assert!(sol.cost.abs() < 1e-9);
        for i in 0..4 {
            assert!((sol.flows[i][i] - pi[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_marginal_rejected() {
        let costs = vec![vec![0.0; 2]; 2];
        assert!(matches!(
            solve(&[0.5, 0.6], &costs, |_, _| true).unwrap_err(),
            BipartiteError::InvalidMarginal { .. }
        ));
        assert!(matches!(
            solve(&[], &[], |_, _| true).unwrap_err(),
            BipartiteError::InvalidMarginal { .. }
        ));
    }

    #[test]
    fn cost_shape_mismatch_rejected() {
        let costs = vec![vec![0.0; 3]; 2];
        assert!(matches!(
            solve(&[0.5, 0.5], &costs, |_, _| true).unwrap_err(),
            BipartiteError::CostShapeMismatch { .. }
        ));
    }

    #[test]
    fn single_state_without_self_edge_is_infeasible() {
        let costs = vec![vec![0.0]];
        assert!(matches!(
            solve(&[1.0], &costs, |i, j| i != j).unwrap_err(),
            BipartiteError::Infeasible(_)
        ));
    }

    #[test]
    fn error_classification_is_backend_agnostic() {
        // Malformed inputs and infeasible networks map to the same
        // BipartiteError variant whichever backend solves them.
        for kind in SolverKind::ALL {
            let costs = vec![vec![0.0; 2]; 2];
            assert!(
                matches!(
                    solve_with(kind, &[0.5, 0.6], &costs, |_, _| true).unwrap_err(),
                    BipartiteError::InvalidMarginal { .. }
                ),
                "{kind}"
            );
            let ragged = vec![vec![0.0; 3]; 2];
            assert!(
                matches!(
                    solve_with(kind, &[0.5, 0.5], &ragged, |_, _| true).unwrap_err(),
                    BipartiteError::CostShapeMismatch { .. }
                ),
                "{kind}"
            );
            let single = vec![vec![0.0]];
            assert!(
                matches!(
                    solve_with(kind, &[1.0], &single, |i, j| i != j).unwrap_err(),
                    BipartiteError::Infeasible(_)
                ),
                "{kind}"
            );
        }
    }

    #[test]
    fn both_backends_find_the_paper_example_optimum() {
        let (pi, costs) = example_5_1();
        let ssp = solve(&pi, &costs, |i, j| i != j).unwrap();
        let simplex = solve_with(SolverKind::NetworkSimplex, &pi, &costs, |i, j| i != j).unwrap();
        assert!(
            (ssp.cost - simplex.cost).abs() < 1e-9,
            "ssp {} vs simplex {}",
            ssp.cost,
            simplex.cost
        );
        // Marginals are matched by both solutions.
        for i in 0..pi.len() {
            let row: f64 = simplex.flows[i].iter().sum();
            assert!((row - pi[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn uniform_marginal_with_uniform_costs_is_feasible() {
        let n = 6;
        let pi = vec![1.0 / n as f64; n];
        let costs = vec![vec![1.0; n]; n];
        let sol = solve(&pi, &costs, |i, j| i != j).unwrap();
        assert!((sol.cost - 1.0).abs() < 1e-9);
        let total: f64 = sol.flows.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_restarts_match_cold_solves_under_recosted_instances() {
        // Property (both backends): solving a re-costed instance warm from
        // the original instance's basis reaches the same optimal cost as a
        // cold solve of the re-costed instance (≤ 1e-9 relative), with the
        // marginals still conserved. For ssp the warm entry point is a
        // documented cold fallback, so the property is trivially its own
        // regression test there; for the network simplex it exercises the
        // re-price + re-pivot path.
        quickprop::check(
            "bipartite warm == cold",
            quickprop::Config::default().with_cases(30),
            |g| {
                // n ≥ 3 with raw weights in [0.5, 1.0] keeps every π_i below
                // half the total mass, so the diagonal-excluded problem is
                // always feasible (Hall's condition).
                let n = g.usize_in(3..8);
                let raw: Vec<f64> = (0..n).map(|_| g.f64_in(0.5, 1.0)).collect();
                let costs_a: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| g.f64_in(0.0, 20.0).round()).collect())
                    .collect();
                let costs_b: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| g.f64_in(0.0, 20.0).round()).collect())
                    .collect();
                (raw, costs_a, costs_b)
            },
            |(raw, costs_a, costs_b)| {
                let total: f64 = raw.iter().sum();
                let pi: Vec<f64> = raw.iter().map(|x| x / total).collect();
                let n = pi.len();
                for kind in SolverKind::ALL {
                    let (_, basis) = solve_with_basis(kind, &pi, costs_a, |i, j| i != j)
                        .map_err(|e| format!("{kind}: seed solve failed: {e}"))?;
                    let cold = solve_with(kind, &pi, costs_b, |i, j| i != j)
                        .map_err(|e| format!("{kind}: cold solve failed: {e}"))?;
                    let warm = match basis {
                        Some(basis) => {
                            let (warm, _) =
                                solve_warm_with(kind, &pi, costs_b, |i, j| i != j, &basis)
                                    .map_err(|e| format!("{kind}: warm solve failed: {e}"))?;
                            if !warm.warm_start {
                                return Err(format!(
                                    "{kind}: matching basis was not reused for the warm solve"
                                ));
                            }
                            warm
                        }
                        // ssp exports no basis; its warm path is the cold
                        // fallback by contract.
                        None => cold.clone(),
                    };
                    let scale = cold.cost.abs().max(1.0);
                    if (warm.cost - cold.cost).abs() > 1e-9 * scale {
                        return Err(format!(
                            "{kind}: warm cost {} != cold cost {}",
                            warm.cost, cold.cost
                        ));
                    }
                    for i in 0..n {
                        let row: f64 = warm.flows[i].iter().sum();
                        let col: f64 = (0..n).map(|k| warm.flows[k][i]).sum();
                        if (row - pi[i]).abs() > 1e-7 || (col - pi[i]).abs() > 1e-7 {
                            return Err(format!(
                                "{kind}: warm solve broke marginal {i}: row {row} col {col} vs {}",
                                pi[i]
                            ));
                        }
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn larger_random_instance_satisfies_marginals() {
        // Deterministic pseudo-random instance with 25 states.
        let n = 25;
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 + 0.01
        };
        let raw: Vec<f64> = (0..n).map(|_| next()).collect();
        let total: f64 = raw.iter().sum();
        let pi: Vec<f64> = raw.iter().map(|x| x / total).collect();
        let costs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| (next() * 10.0).round()).collect())
            .collect();
        let sol = solve(&pi, &costs, |i, j| i != j).unwrap();
        for i in 0..n {
            let row_sum: f64 = sol.flows[i].iter().sum();
            assert!((row_sum - pi[i]).abs() < 1e-7);
        }
        assert!(sol.cost >= 0.0);
    }
}
